"""Abstract coherence fabric.

Both the MESI directory (Section 5) and the broadcast-snooping alternative
(Section 7) implement this interface. A *fabric* owns the global view of who
caches what, routes conflict checks to cores, and reports grant/NACK
outcomes; cores own their L1 arrays and signatures.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.cache.block import MESI
from repro.coherence.msgs import CoherenceResult, ConflictPort, Timestamp


class CoherenceFabric(abc.ABC):
    """Global coherence state + request processing."""

    def __init__(self) -> None:
        self._ports: Dict[int, ConflictPort] = {}

    def attach(self, port: ConflictPort) -> None:
        """Register a core's conflict/invalidaton port."""
        self._ports[port.core_id] = port

    def port(self, core_id: int) -> ConflictPort:
        return self._ports[core_id]

    @property
    def ports(self) -> List[ConflictPort]:
        return [self._ports[cid] for cid in sorted(self._ports)]

    @abc.abstractmethod
    def request(self, requester_core: int, requester_thread: int,
                requester_ts: Optional[Timestamp], block_addr: int,
                is_write: bool, asid: int):
        """Process one GETS/GETM as a simulation sub-generator.

        Yields latency; returns a :class:`CoherenceResult`. On a grant the
        fabric has already updated global state (sharers/owner) and performed
        remote invalidations/downgrades; the caller installs
        ``result.grant_state`` in its L1.
        """

    def note_relocated_block(self, block_addr: int) -> None:
        """OS hook: a transactional block now lives at this (new) physical
        address after a page relocation (Section 4.2).

        A directory has no pointers for the fresh frame, so without help it
        would grant requests to it *without* any signature check, silently
        breaking isolation. Marking the block "check all signatures until a
        request succeeds" (the same state used after L2 victimization)
        closes that hole. Broadcast fabrics need no action — every request
        already reaches every signature — so the default is a no-op.
        """

    def scrub_block(self, block_addr: int) -> None:
        """OS hook: the physical frame holding this block is being freed or
        reallocated (page relocation, Section 4.2).

        Any cached copy is a leftover of the frame's *previous* tenancy.
        A stale MODIFIED line is the dangerous case: when the frame is
        reused, the holding core hits locally and reads or writes the new
        tenant's data with no coherence request — and therefore no
        signature check — silently breaking isolation. Drops the block
        from every L1; fabrics with directory state also forget their
        pointers for it.
        """
        for port in self.ports:
            port.invalidate_block(block_addr)

    @abc.abstractmethod
    def l1_evicted(self, core_id: int, block_addr: int, state: MESI,
                   transactional: bool) -> None:
        """Notification that a core's L1 replaced a block.

        ``transactional`` is the evicting core's *conservative* signature
        test (sticky decision). Writeback data movement is functional (values
        live in PhysicalMemory), so only directory state changes here.
        """
