"""MESI directory protocol with LogTM sticky states (Section 5).

The directory lives logically beside the (inclusive) shared L2: each entry
records an exclusive-owner pointer, a sharer bit-vector, and the LogTM-SE
extensions — a *sticky* set of cores that replaced the block while it was
(possibly) in a local transaction's signature, and the lost-directory-info /
check-all flags used after L2 victimization.

Protocol simplification (see DESIGN.md §5): each coherence transaction holds
a per-entry lock from request arrival to completion, so there are no
transient-state races. NACKed requesters release the entry and retry later,
exactly like LogTM's stall-and-retry.

Request walkthrough (GETM from core R):

1. R -> home bank (grid hops), directory access latency.
2. L2 tag lookup; on a miss, memory latency and an L2 refill whose victim may
   lose directory info (Section 5's broadcast-rebuild case).
3. If the entry lost info or is in check-all state: broadcast, every core
   checks its signatures; otherwise forward only to the owner, sharers, and
   sticky cores.
4. Any signature hit with a matching ASID -> NACK (the result names the
   blockers so the requester can run LogTM's deadlock-avoidance policy).
5. Otherwise invalidate sharers/owner, clean satisfied sticky state, record
   R as owner, and grant M (E/S for GETS as appropriate).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.cache.array import CacheArray
from repro.cache.block import MESI
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.msgs import Blocker, CoherenceResult, Timestamp
from repro.interconnect.network import Network
from repro.mem.address import AddressMap
from repro.sim.resources import SimLock


class DirectoryEntry:
    """Directory state for one block."""

    __slots__ = ("owner", "sharers", "sticky", "lost_info", "must_check_all",
                 "lock")

    def __init__(self, block_addr: int) -> None:
        self.owner: Optional[int] = None
        self.sharers: Set[int] = set()
        self.sticky: Set[int] = set()
        self.lost_info = False
        self.must_check_all = False
        self.lock = SimLock(f"dir[{block_addr:#x}]")

    @property
    def present_anywhere(self) -> bool:
        return self.owner is not None or bool(self.sharers) or bool(self.sticky)

    def forward_targets(self, is_write: bool) -> Set[int]:
        """Cores whose signatures must be checked for this request."""
        targets = set(self.sticky)
        if self.owner is not None:
            targets.add(self.owner)
        if is_write:
            # Invalidations reach every sharer; each checks read+write sets.
            targets |= self.sharers
        return targets


class DirectoryFabric(CoherenceFabric):
    """Banked L2 + MESI directory + sticky states."""

    def __init__(self, cfg: SystemConfig, network: Network,
                 stats: StatsRegistry) -> None:
        super().__init__()
        self.cfg = cfg
        self.network = network
        self.stats = stats
        self.amap = AddressMap(block_bytes=cfg.block_bytes,
                               page_bytes=cfg.page_bytes,
                               num_banks=cfg.l2_banks)
        self.l2 = CacheArray(cfg.l2, name="L2")
        self._entries: Dict[int, DirectoryEntry] = {}
        self._use_sticky = cfg.tm.use_sticky_states
        # Counters surfaced in the tables.
        self._c_requests = stats.counter("coherence.requests")
        self._c_nacks = stats.counter("coherence.nacks")
        self._c_fwd = stats.counter("coherence.forwards")
        self._c_bcast = stats.counter("coherence.broadcast_rebuilds")
        self._c_sticky_set = stats.counter("coherence.sticky_created")
        self._c_sticky_clean = stats.counter("coherence.sticky_cleaned")
        self._c_l2_evict_tx = stats.counter("victimization.l2_tx")
        self._c_l1_evict_tx = stats.counter("victimization.l1_tx")
        self._c_mem = stats.counter("coherence.memory_fetches")
        # Fixed latencies, hoisted off the per-request path (SystemConfig
        # is immutable for the lifetime of the fabric).
        self._dir_latency = cfg.directory_latency
        self._l2_latency = cfg.l2.latency
        self._mem_latency = cfg.memory_latency

    def _entry(self, block_addr: int) -> DirectoryEntry:
        entry = self._entries.get(block_addr)
        if entry is None:
            entry = DirectoryEntry(block_addr)
            self._entries[block_addr] = entry
        return entry

    def entry_view(self, block_addr: int) -> DirectoryEntry:
        """Inspection hook for tests (creates the entry if absent)."""
        return self._entry(block_addr)

    # ------------------------------------------------------------------
    # L2 / memory access
    # ------------------------------------------------------------------

    def _l2_victimized(self, victim_addr: int) -> None:
        """An L2 replacement dropped this block's directory information.

        Inclusion forces L1 copies out; if the block was covered by any
        signature the information loss matters and subsequent requests must
        broadcast (Section 5). Sticky cores also become invisible, which the
        lost-info broadcast compensates for.
        """
        entry = self._entries.get(victim_addr)
        if entry is None or not entry.present_anywhere:
            return
        transactional = bool(entry.sticky)
        holders = set(entry.sharers)
        if entry.owner is not None:
            holders.add(entry.owner)
        for core_id in holders:
            port = self._ports.get(core_id)
            if port is None:
                continue
            if port.holds_transactional(victim_addr):
                transactional = True
            port.invalidate_block(victim_addr)
        entry.owner = None
        entry.sharers.clear()
        entry.sticky.clear()
        entry.lost_info = True
        if transactional:
            self._c_l2_evict_tx.add()
        self.stats.emit("coh.l2_victim", block=victim_addr,
                        transactional=transactional)

    # ------------------------------------------------------------------
    # Conflict checks
    # ------------------------------------------------------------------

    def _check(self, cores: Iterable[int], requester_core: int,
               requester_thread: int, block_addr: int, is_write: bool,
               asid: int, requester_ts: Optional[Timestamp],
               owner: Optional[int] = None,
               sticky_cores: Iterable[int] = (),
               broadcast: bool = False) -> List[Blocker]:
        """Forward the request to each target core.

        The signature check and the coherence action (invalidation for a
        GETM, downgrade of the owner for a GETS) are applied *atomically
        per target*, exactly as the forwarded message does in hardware. A
        deferred invalidation would open a window where a sharer's L1 hit
        reads a doomed copy after its signature was found clean — a missed
        conflict (this bug is real: it loses linked-list inserts).

        A target that NACKs keeps its copy; targets already processed may
        have lost theirs, which is harmless — they simply re-fetch, and
        the re-fetch serializes behind this entry's lock.

        Each blocker is tagged with how the check reached it —
        ``sticky_cores`` were forwarded to only because of a sticky state,
        ``broadcast`` marks the lost-info rebuild path — so abort
        attribution can separate decoupling artifacts from true conflicts.
        """
        sticky_set = set(sticky_cores)
        blockers: List[Blocker] = []
        ports = self._ports
        c_fwd = self._c_fwd
        for core_id in sorted(set(cores)):
            if core_id == requester_core:
                # Same-core (SMT sibling) conflicts are detected at access
                # time by the core itself, before the miss is issued.
                continue
            port = ports.get(core_id)
            if port is None:
                continue
            c_fwd.value += 1
            found = port.check_conflicts(
                block_addr, is_write, exclude_thread=requester_thread,
                asid=asid, requester_ts=requester_ts)
            if found:
                via = ("broadcast" if broadcast
                       else "sticky" if core_id in sticky_set
                       else "targeted")
                if via != "targeted":
                    found = [Blocker(b.core_id, b.thread_id,
                                     b.timestamp, b.false_positive, via)
                             for b in found]
                blockers.extend(found)
            elif is_write:
                port.invalidate_block(block_addr)
            elif core_id == owner:
                port.downgrade_block(block_addr)
        return blockers

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def request(self, requester_core: int, requester_thread: int,
                requester_ts: Optional[Timestamp], block_addr: int,
                is_write: bool, asid: int):
        # The locked request body is inlined here rather than delegated to a
        # helper generator: this frame is resumed for every yield of every
        # coherence transaction, and each extra frame in the ``yield from``
        # chain is traversed on every resume.
        entry = self._entry(block_addr)
        yield from entry.lock.acquire()
        try:
            self._c_requests.value += 1
            if self.stats.recorder is not None:
                self.stats.emit("coh.request", block=block_addr,
                                core=requester_core, thread=requester_thread,
                                write=is_write)
            bank = self.amap.bank_of(block_addr)
            msg = "GETM" if is_write else "GETS"
            yield self.network.core_to_bank(requester_core, bank, msg)
            yield self._dir_latency

            if entry.lost_info or entry.must_check_all:
                blockers = yield from self._broadcast_check(
                    requester_core, requester_thread, requester_ts,
                    block_addr, is_write, asid, entry, bank)
            else:
                blockers = yield from self._targeted_check(
                    requester_core, requester_thread, requester_ts,
                    block_addr, is_write, asid, entry, bank)

            if blockers:
                # NACK determination needs only directory state and remote
                # signature checks — no L2 data-array or DRAM access — so a
                # NACKed request occupies the directory entry only briefly.
                self._c_nacks.value += 1
                if self.stats.recorder is not None:
                    self.stats.emit(
                        "coh.nack", block=block_addr, core=requester_core,
                        thread=requester_thread,
                        blockers=tuple((b.thread_id, b.false_positive, b.via)
                                       for b in blockers))
                yield self.network.bank_to_core(bank, requester_core, "NACK")
                return CoherenceResult(granted=False, blockers=blockers)

            # L2 / memory access, inlined from ``_l2_access`` for the same
            # frame-depth reason.
            if self.l2.lookup(block_addr) is not None:
                yield self._l2_latency
            else:
                self._c_mem.value += 1
                yield self._mem_latency
                _block, victim = self.l2.insert(block_addr, MESI.SHARED)
                if victim is not None:
                    self._l2_victimized(victim.addr)
            yield self.network.bank_to_core(bank, requester_core, "DATA")
            # Apply the grant *after* the final yield: the requester resumes
            # in the same simulation event, so its L1 install is atomic with
            # this directory-state update (no window for a competing
            # request).
            grant_state = self._apply_grant(requester_core, block_addr,
                                            is_write, entry)
            if self.stats.recorder is not None:
                self.stats.emit("coh.grant", block=block_addr,
                                core=requester_core, thread=requester_thread,
                                write=is_write, state=grant_state.name)
            return CoherenceResult(granted=True, grant_state=grant_state)
        finally:
            entry.lock.release()

    def _broadcast_check(self, requester_core: int, requester_thread: int,
                         requester_ts: Optional[Timestamp], block_addr: int,
                         is_write: bool, asid: int, entry: DirectoryEntry,
                         bank: int):
        """Rebuild path after L2 victimization: check every L1's signatures."""
        self._c_bcast.add()
        self.stats.emit("coh.broadcast", block=block_addr)
        yield self.network.broadcast_from_bank(bank, "rebuild")
        all_cores = list(self._ports)
        blockers = self._check(all_cores, requester_core, requester_thread,
                               block_addr, is_write, asid, requester_ts,
                               owner=entry.owner, broadcast=True)
        # The broadcast responses rebuild the directory state. After the L2
        # eviction invalidated L1 copies, nobody caches the block; what can
        # remain is signature coverage. An *incompatible* covering
        # signature NACKs above, but a compatible one (a standing read set
        # met by this GETS) stays silent — and must not become invisible:
        # a later write has to keep reaching it. Those cores convert to
        # sticky forwarding obligations, the same rule as a transactional
        # eviction; the model checker found the variant that dropped them
        # (4 steps: tx read, L2 victimization, then any remote read
        # discharged all coverage and even granted E).
        entry.lost_info = False
        entry.must_check_all = bool(blockers)
        if self._use_sticky:
            for port in self.ports:
                if port.core_id != requester_core and \
                        port.holds_transactional(block_addr):
                    entry.sticky.add(port.core_id)
                    self._c_sticky_set.add()
        return blockers

    def _targeted_check(self, requester_core: int, requester_thread: int,
                        requester_ts: Optional[Timestamp], block_addr: int,
                        is_write: bool, asid: int, entry: DirectoryEntry,
                        bank: int):
        """Normal path: forward only where the directory points."""
        targets = entry.forward_targets(is_write)
        targets.discard(requester_core)
        if targets:
            # Forwards fan out in parallel: latency is the worst
            # bank->target->requester path; counters record each message.
            fwd = max(self.network.bank_to_core(bank, t, "fwd")
                      for t in targets)
            yield fwd
        blockers = self._check(targets, requester_core, requester_thread,
                               block_addr, is_write, asid, requester_ts,
                               owner=entry.owner, sticky_cores=entry.sticky)
        if not blockers and targets:
            resp = max(self.network.core_to_core(t, requester_core, "resp")
                       for t in targets)
            yield resp
        return blockers

    def _apply_grant(self, requester_core: int, block_addr: int,
                     is_write: bool, entry: DirectoryEntry) -> MESI:
        """Commit the directory-state transition for a granted request.

        Pure bookkeeping: the L1 invalidations/downgrades were applied
        atomically with each target's signature check in ``_check``.
        """
        if entry.sticky:
            # The request succeeded, so sticky forwarding obligations are
            # discharged ("a block leaves this state when the request
            # finally succeeds") — but only for cores whose signatures no
            # longer cover the block. A core whose *read* set still holds
            # it did not NACK this (compatible) read, yet must keep being
            # checked: a later write has to reach it.
            cleaned = {cid for cid in entry.sticky
                       if cid == requester_core
                       or not self._ports[cid].holds_transactional(
                           block_addr)}
            if cleaned:
                self._c_sticky_clean.add(len(cleaned))
                self.stats.emit("coh.sticky_clean", block=block_addr,
                                cores=tuple(sorted(cleaned)))
                entry.sticky -= cleaned
        entry.must_check_all = False
        if is_write:
            entry.sharers.clear()
            entry.owner = requester_core
            return MESI.MODIFIED
        # GETS
        if entry.owner is not None and entry.owner != requester_core:
            entry.sharers.add(entry.owner)
            entry.owner = None
        if not entry.sharers and not entry.sticky:
            # E needs true exclusivity: a surviving sticky core may hold
            # the block in its read set, and a silent E->M upgrade here
            # would write without that signature ever being checked.
            entry.owner = requester_core
            return MESI.EXCLUSIVE
        entry.sharers.add(requester_core)
        return MESI.SHARED

    def note_relocated_block(self, block_addr: int) -> None:
        """Force signature checks for a block relocated by paging."""
        self._entry(block_addr).must_check_all = True

    def scrub_block(self, block_addr: int) -> None:
        """Frame freed or reallocated: drop every cached copy and every
        directory pointer. A core whose signatures still cover the block
        keeps a sticky forwarding obligation — the same rule as a
        transactional L1 eviction — so conflict checks keep reaching it
        even though it no longer caches the line."""
        entry = self._entry(block_addr)
        for port in self.ports:
            port.invalidate_block(block_addr)
            if self._use_sticky and port.holds_transactional(block_addr):
                entry.sticky.add(port.core_id)
        self.l2.invalidate(block_addr)
        entry.owner = None
        entry.sharers.clear()

    # ------------------------------------------------------------------
    # L1 replacement notifications
    # ------------------------------------------------------------------

    def l1_evicted(self, core_id: int, block_addr: int, state: MESI,
                   transactional: bool) -> None:
        entry = self._entry(block_addr)
        if self.stats.recorder is not None:
            self.stats.emit("coh.l1_victim", block=block_addr, core=core_id,
                            transactional=transactional,
                            sticky=transactional and self._use_sticky)
        if transactional and self._use_sticky:
            # Sticky replacement: leave the directory state unchanged so
            # conflicting requests keep being forwarded to this core, and
            # remember the obligation. (With sticky states disabled — an
            # ablation — the eviction is handled like a non-transactional
            # one, which loses isolation for overflowed data; the ablation
            # benchmark quantifies how often that would bite.)
            entry.sticky.add(core_id)
            self._c_sticky_set.add()
            self._c_l1_evict_tx.add()
            return
        if transactional:
            self._c_l1_evict_tx.add()
        if state is MESI.MODIFIED:
            # Writeback: data is functional, so only directory state moves.
            if entry.owner == core_id:
                entry.owner = None
        elif state is MESI.EXCLUSIVE:
            # E replacements send a control message updating the pointer.
            if entry.owner == core_id:
                entry.owner = None
        else:
            # S replacements are completely silent (Section 5): the
            # directory may retain a stale sharer, and a later invalidation
            # to a non-resident block is harmless.
            pass
