"""Coherence fabrics: MESI directory with sticky states, and snooping."""

from repro.coherence.directory import DirectoryEntry, DirectoryFabric
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.msgs import Blocker, CoherenceResult, ConflictPort
from repro.coherence.invariants import InvariantViolation, check_all
from repro.coherence.multichip import MultiChipFabric
from repro.coherence.snooping import SnoopingFabric

__all__ = ["Blocker", "CoherenceFabric", "CoherenceResult", "ConflictPort",
           "DirectoryEntry", "DirectoryFabric", "InvariantViolation",
           "MultiChipFabric", "check_all",
           "SnoopingFabric"]
