"""Multiple-CMP coherence (Section 7, "Multiple CMPs").

Several CMPs, each with its own shared L2 and intra-chip directory, are
connected by a reliable point-to-point network; inter-chip coherence uses a
full-map directory at memory ("a few state bits and [one] sharer bit per
chip", storable in ECC-freed bits [23]). LogTM-SE extends it with NACKs on
transaction conflicts and sticky states at *both* levels:

* a core that evicts a transactional block leaves a sticky entry in its
  chip's directory (as in the single-CMP system);
* a chip whose L2 victimizes a transactionally-covered block writes it back
  to memory and the memory directory enters **sticky-M** for that chip —
  subsequent remote requests are still forwarded there for signature
  checks.

Protocol hierarchy (two-level MESI):

1. A request first consults its chip's state. If the chip holds sufficient
   *chip-level rights* (M for writes; M or S for reads), the request is
   satisfied entirely on-chip, exactly like the single-CMP directory —
   including intra-chip signature NACKs.
2. Otherwise it travels to the memory directory, which forwards conflict
   checks to the owner/sharer/sticky chips; each chip checks the
   signatures of all its cores (its own wired-OR of per-core results).
   Any hit NACKs the request; otherwise chip-level rights migrate and the
   requester's chip completes the fill.

The same blocking-transaction simplification as the single-CMP directory
applies: one global lock per block serializes same-block transactions, so
no transient-state races exist (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cache.array import CacheArray
from repro.cache.block import MESI
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.msgs import Blocker, CoherenceResult, Timestamp
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.interconnect.network import Network
from repro.mem.address import AddressMap
from repro.sim.resources import SimLock


class ChipEntry:
    """Intra-chip directory state for one block on one chip."""

    __slots__ = ("rights", "owner", "sharers", "sticky")

    def __init__(self) -> None:
        #: Chip-level rights: 'M' (exclusive chip), 'S' (shared), or None.
        self.rights: Optional[str] = None
        self.owner: Optional[int] = None   # global core id with M/E
        self.sharers: Set[int] = set()     # global core ids with S
        self.sticky: Set[int] = set()      # cores with sticky obligations

    @property
    def present(self) -> bool:
        return (self.rights is not None or self.owner is not None
                or bool(self.sharers) or bool(self.sticky))


class MemDirEntry:
    """Full-map memory-directory state for one block."""

    __slots__ = ("owner_chip", "sharer_chips", "sticky_chips", "lock")

    def __init__(self, block_addr: int) -> None:
        self.owner_chip: Optional[int] = None
        self.sharer_chips: Set[int] = set()
        #: Chips whose L2 victimized the block while transactionally
        #: covered: memory holds the data ("sticky M"), but requests are
        #: still forwarded for signature checks.
        self.sticky_chips: Set[int] = set()
        self.lock = SimLock(f"memdir[{block_addr:#x}]")


class MultiChipFabric(CoherenceFabric):
    """Two-level directory coherence for a multiple-CMP system."""

    def __init__(self, cfg: SystemConfig, networks: List[Network],
                 stats: StatsRegistry) -> None:
        super().__init__()
        if cfg.num_chips < 2:
            raise ValueError("MultiChipFabric needs at least two chips")
        self.cfg = cfg
        self.networks = networks  # one intra-chip network per chip
        self.stats = stats
        self.amap = AddressMap(block_bytes=cfg.block_bytes,
                               page_bytes=cfg.page_bytes,
                               num_banks=cfg.l2_banks)
        self.l2s = [CacheArray(cfg.l2, name=f"L2[chip{c}]")
                    for c in range(cfg.num_chips)]
        self._chip_entries: List[Dict[int, ChipEntry]] = [
            {} for _ in range(cfg.num_chips)]
        self._mem_entries: Dict[int, MemDirEntry] = {}
        self._use_sticky = cfg.tm.use_sticky_states
        self._c_requests = stats.counter("coherence.requests")
        self._c_nacks = stats.counter("coherence.nacks")
        self._c_fwd = stats.counter("coherence.forwards")
        self._c_interchip = stats.counter("coherence.interchip_requests")
        self._c_chip_sticky = stats.counter("coherence.chip_sticky_created")
        self._c_sticky_set = stats.counter("coherence.sticky_created")
        self._c_sticky_clean = stats.counter("coherence.sticky_cleaned")
        self._c_l1_evict_tx = stats.counter("victimization.l1_tx")
        self._c_l2_evict_tx = stats.counter("victimization.l2_tx")
        self._c_mem = stats.counter("coherence.memory_fetches")

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------

    def chip_of(self, core_id: int) -> int:
        return core_id // self.cfg.num_cores

    def _local_core(self, core_id: int) -> int:
        """Core index within its chip (for the per-chip network)."""
        return core_id % self.cfg.num_cores

    def _chip_entry(self, chip: int, block_addr: int) -> ChipEntry:
        entry = self._chip_entries[chip].get(block_addr)
        if entry is None:
            entry = ChipEntry()
            self._chip_entries[chip][block_addr] = entry
        return entry

    def _mem_entry(self, block_addr: int) -> MemDirEntry:
        entry = self._mem_entries.get(block_addr)
        if entry is None:
            entry = MemDirEntry(block_addr)
            self._mem_entries[block_addr] = entry
        return entry

    def chip_entry_view(self, chip: int, block_addr: int) -> ChipEntry:
        return self._chip_entry(chip, block_addr)

    def mem_entry_view(self, block_addr: int) -> MemDirEntry:
        return self._mem_entry(block_addr)

    # ------------------------------------------------------------------
    # Conflict checks
    # ------------------------------------------------------------------

    def _check_cores(self, core_ids, requester_core: int,
                     requester_thread: int, block_addr: int, is_write: bool,
                     asid: int, requester_ts: Optional[Timestamp],
                     owner: Optional[int] = None) -> List[Blocker]:
        """Per-core check with the coherence action applied atomically
        (see the single-CMP directory for why deferral is a real bug)."""
        blockers: List[Blocker] = []
        for core_id in sorted(set(core_ids)):
            if core_id == requester_core:
                continue
            port = self._ports.get(core_id)
            if port is None:
                continue
            self._c_fwd.add()
            found = port.check_conflicts(
                block_addr, is_write, exclude_thread=requester_thread,
                asid=asid, requester_ts=requester_ts)
            if found:
                blockers.extend(found)
            elif is_write:
                port.invalidate_block(block_addr)
            elif core_id == owner:
                port.downgrade_block(block_addr)
        return blockers

    def _chip_covers(self, chip: int, block_addr: int,
                     exclude: int) -> bool:
        """May any core on this chip still hold the block in a signature?"""
        first = chip * self.cfg.num_cores
        for core_id in range(first, first + self.cfg.num_cores):
            if core_id == exclude:
                continue
            port = self._ports.get(core_id)
            if port is not None and port.holds_transactional(block_addr):
                return True
        return False

    def _chip_check(self, chip: int, requester_core: int,
                    requester_thread: int, block_addr: int, is_write: bool,
                    asid: int, requester_ts: Optional[Timestamp]
                    ) -> List[Blocker]:
        """A chip's wired-OR signature check across all its cores.

        Inter-chip forwards cannot rely on the remote chip's (possibly
        stale) intra-chip pointers for conflict coverage, so the whole
        chip answers — this is the chip-level NACK of Section 7.
        """
        first = chip * self.cfg.num_cores
        entry = self._chip_entry(chip, block_addr)
        return self._check_cores(range(first, first + self.cfg.num_cores),
                                 requester_core, requester_thread,
                                 block_addr, is_write, asid, requester_ts,
                                 owner=entry.owner)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def request(self, requester_core: int, requester_thread: int,
                requester_ts: Optional[Timestamp], block_addr: int,
                is_write: bool, asid: int):
        mem_entry = self._mem_entry(block_addr)
        yield from mem_entry.lock.acquire()
        try:
            result = yield from self._request_locked(
                requester_core, requester_thread, requester_ts,
                block_addr, is_write, asid, mem_entry)
            return result
        finally:
            mem_entry.lock.release()

    def _request_locked(self, requester_core: int, requester_thread: int,
                        requester_ts: Optional[Timestamp], block_addr: int,
                        is_write: bool, asid: int, mem_entry: MemDirEntry):
        self._c_requests.add()
        if self.stats.recorder is not None:
            self.stats.emit("coh.request", block=block_addr,
                            core=requester_core, thread=requester_thread,
                            write=is_write)
        chip = self.chip_of(requester_core)
        net = self.networks[chip]
        bank = self.amap.bank_of(block_addr)
        entry = self._chip_entry(chip, block_addr)
        yield net.core_to_bank(self._local_core(requester_core), bank,
                               "GETM" if is_write else "GETS")
        yield self.cfg.directory_latency

        sufficient = (entry.rights == "M" if is_write
                      else entry.rights in ("M", "S"))
        if sufficient:
            result = yield from self._intra_chip(
                chip, requester_core, requester_thread, requester_ts,
                block_addr, is_write, asid, entry, bank)
            return result
        result = yield from self._inter_chip(
            chip, requester_core, requester_thread, requester_ts,
            block_addr, is_write, asid, entry, mem_entry, bank)
        return result

    def _intra_chip(self, chip: int, requester_core: int,
                    requester_thread: int,
                    requester_ts: Optional[Timestamp], block_addr: int,
                    is_write: bool, asid: int, entry: ChipEntry, bank: int):
        """The chip already holds sufficient rights: single-CMP behaviour."""
        net = self.networks[chip]
        targets = set(entry.sticky)
        if entry.owner is not None:
            targets.add(entry.owner)
        if is_write:
            targets |= entry.sharers
        targets.discard(requester_core)
        if targets:
            yield max(net.bank_to_core(bank, self._local_core(t), "fwd")
                      for t in targets)
        blockers = self._check_cores(targets, requester_core,
                                     requester_thread, block_addr, is_write,
                                     asid, requester_ts, owner=entry.owner)
        if blockers:
            self._c_nacks.add()
            if self.stats.recorder is not None:
                self.stats.emit(
                    "coh.nack", block=block_addr, core=requester_core,
                    thread=requester_thread,
                    blockers=tuple((b.thread_id, b.false_positive, b.via)
                                   for b in blockers))
            yield net.bank_to_core(bank, self._local_core(requester_core),
                                   "NACK")
            return CoherenceResult(granted=False, blockers=blockers)
        if self.l2s[chip].lookup(block_addr) is not None:
            yield self.cfg.l2.latency
        elif entry.owner is not None:
            yield net.core_to_core(self._local_core(entry.owner),
                                   self._local_core(requester_core), "data")
        else:
            self._c_mem.add()
            yield self.cfg.memory_latency
            self._l2_fill(chip, block_addr)
        yield net.bank_to_core(bank, self._local_core(requester_core),
                               "DATA")
        grant = self._apply_chip_grant(chip, requester_core, block_addr,
                                       is_write, entry)
        if self.stats.recorder is not None:
            self.stats.emit("coh.grant", block=block_addr,
                            core=requester_core, thread=requester_thread,
                            write=is_write, state=grant.name)
        return CoherenceResult(granted=True, grant_state=grant)

    def _inter_chip(self, chip: int, requester_core: int,
                    requester_thread: int,
                    requester_ts: Optional[Timestamp], block_addr: int,
                    is_write: bool, asid: int, entry: ChipEntry,
                    mem_entry: MemDirEntry, bank: int):
        """Escalate to the full-map memory directory."""
        self._c_interchip.add()
        net = self.networks[chip]
        yield self.cfg.interchip_latency
        yield self.cfg.memory_directory_latency

        # Chips to check: the owner chip, sharer chips (for writes), and
        # any sticky chips — but never the requester's own chip's *remote*
        # role (its local conflicts were checked intra-chip or by SMT).
        target_chips = set(mem_entry.sticky_chips)
        if mem_entry.owner_chip is not None:
            target_chips.add(mem_entry.owner_chip)
        if is_write:
            target_chips |= mem_entry.sharer_chips
        target_chips.discard(chip)

        blockers: List[Blocker] = []
        for remote in sorted(target_chips):
            yield self.cfg.interchip_latency
            blockers.extend(self._chip_check(
                remote, requester_core, requester_thread, block_addr,
                is_write, asid, requester_ts))
        # The requester's own chip may still hold intra-chip conflicts
        # (e.g. another local core's signature) even without chip rights.
        local_targets = set(entry.sticky)
        if entry.owner is not None:
            local_targets.add(entry.owner)
        if is_write:
            local_targets |= entry.sharers
        local_targets.discard(requester_core)
        blockers.extend(self._check_cores(
            local_targets, requester_core, requester_thread, block_addr,
            is_write, asid, requester_ts, owner=entry.owner))

        if blockers:
            self._c_nacks.add()
            if self.stats.recorder is not None:
                self.stats.emit(
                    "coh.nack", block=block_addr, core=requester_core,
                    thread=requester_thread,
                    blockers=tuple((b.thread_id, b.false_positive, b.via)
                                   for b in blockers))
            yield self.cfg.interchip_latency
            return CoherenceResult(granted=False, blockers=blockers)

        # Migrate chip-level rights.
        if is_write:
            losers = set(mem_entry.sharer_chips)
            if mem_entry.owner_chip is not None:
                losers.add(mem_entry.owner_chip)
            losers.discard(chip)
            for remote in sorted(losers):
                self._strip_chip(remote, block_addr)
            mem_entry.sharer_chips.clear()
            mem_entry.owner_chip = chip
            entry.rights = "M"
        else:
            if mem_entry.owner_chip is not None and \
                    mem_entry.owner_chip != chip:
                self._demote_chip(mem_entry.owner_chip, block_addr)
                mem_entry.sharer_chips.add(mem_entry.owner_chip)
                mem_entry.owner_chip = None
            if mem_entry.sharer_chips or mem_entry.owner_chip == chip:
                mem_entry.sharer_chips.add(chip)
                entry.rights = "S"
            else:
                mem_entry.owner_chip = chip
                entry.rights = "M"
        if mem_entry.sticky_chips:
            # Discharge sticky chips only when no core there still covers
            # the block with a signature (a read-set entry is compatible
            # with this request but must keep being checked on writes).
            cleaned = {c for c in mem_entry.sticky_chips
                       if not self._chip_covers(c, block_addr,
                                                exclude=requester_core)}
            if cleaned:
                self._c_sticky_clean.add(len(cleaned))
                mem_entry.sticky_chips -= cleaned

        self._c_mem.add()
        yield self.cfg.memory_latency  # data from memory / remote L2
        yield self.cfg.interchip_latency
        self._l2_fill(chip, block_addr)
        grant = self._apply_chip_grant(chip, requester_core, block_addr,
                                       is_write, entry)
        if self.stats.recorder is not None:
            self.stats.emit("coh.grant", block=block_addr,
                            core=requester_core, thread=requester_thread,
                            write=is_write, state=grant.name)
        return CoherenceResult(granted=True, grant_state=grant)

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def _apply_chip_grant(self, chip: int, requester_core: int,
                          block_addr: int, is_write: bool,
                          entry: ChipEntry) -> MESI:
        """Bookkeeping only — port invalidations/downgrades happened
        atomically with the signature checks in ``_check_cores``."""
        if entry.sticky:
            # Only discharge cores whose signatures no longer cover the
            # block; a surviving read-set entry must keep being checked.
            cleaned = {cid for cid in entry.sticky
                       if cid == requester_core
                       or not self._ports[cid].holds_transactional(
                           block_addr)}
            if cleaned:
                self._c_sticky_clean.add(len(cleaned))
                entry.sticky -= cleaned
        if is_write:
            entry.sharers.clear()
            entry.owner = requester_core
            return MESI.MODIFIED
        if entry.owner is not None and entry.owner != requester_core:
            entry.sharers.add(entry.owner)
            entry.owner = None
        if not entry.sharers and not entry.sticky and entry.rights == "M":
            # An E grant needs *chip-level* exclusivity: with only S
            # rights another chip may hold copies, and a silent E->M
            # upgrade here would write without global permission.
            entry.owner = requester_core
            return MESI.EXCLUSIVE
        entry.sharers.add(requester_core)
        return MESI.SHARED

    def _strip_chip(self, chip: Optional[int], block_addr: int) -> None:
        """Remove all of a chip's copies (remote GETM invalidation)."""
        if chip is None:
            return
        entry = self._chip_entry(chip, block_addr)
        for core_id in list(entry.sharers):
            self._ports[core_id].invalidate_block(block_addr)
        if entry.owner is not None:
            self._ports[entry.owner].invalidate_block(block_addr)
        entry.sharers.clear()
        entry.owner = None
        entry.rights = None
        self.l2s[chip].invalidate(block_addr)

    def _demote_chip(self, chip: int, block_addr: int) -> None:
        """Chip-level M -> S (remote GETS)."""
        entry = self._chip_entry(chip, block_addr)
        if entry.owner is not None:
            self._ports[entry.owner].downgrade_block(block_addr)
            entry.sharers.add(entry.owner)
            entry.owner = None
        entry.rights = "S"

    def _l2_fill(self, chip: int, block_addr: int) -> None:
        _blk, victim = self.l2s[chip].insert(block_addr, MESI.SHARED)
        if victim is not None:
            self._chip_l2_victimized(chip, victim.addr)

    def _chip_l2_victimized(self, chip: int, victim_addr: int) -> None:
        """An L2 eviction: transactionally-covered blocks go sticky-M at
        the memory directory (Section 7's writeback-to-sticky-M)."""
        entry = self._chip_entries[chip].get(victim_addr)
        transactional = False
        if entry is not None and entry.present:
            holders = set(entry.sharers)
            if entry.owner is not None:
                holders.add(entry.owner)
            transactional = bool(entry.sticky)
            for core_id in holders:
                port = self._ports.get(core_id)
                if port is None:
                    continue
                if port.holds_transactional(victim_addr):
                    transactional = True
                port.invalidate_block(victim_addr)
            entry.owner = None
            entry.sharers.clear()
            entry.sticky.clear()
            entry.rights = None
            # Memory-level sticky-M routes *remote* chips' requests back
            # here for whole-chip signature checks, but an intra-chip
            # request from a sibling core consults only this entry's
            # pointers — so cores whose signatures still cover the block
            # must keep per-core sticky obligations, exactly as for an
            # L1 eviction. (Model-checker finding: without this, a
            # 3-step trace — tx read, chip-L2 victimization, sibling
            # access — bypasses the surviving read set entirely.)
            if self._use_sticky:
                first = chip * self.cfg.num_cores
                for core_id in range(first, first + self.cfg.num_cores):
                    port = self._ports.get(core_id)
                    if port is not None and \
                            port.holds_transactional(victim_addr):
                        entry.sticky.add(core_id)
                        self._c_sticky_set.add()
        mem_entry = self._mem_entry(victim_addr)
        mem_entry.sharer_chips.discard(chip)
        if mem_entry.owner_chip == chip:
            mem_entry.owner_chip = None
        if transactional:
            self._c_l2_evict_tx.add()
            if self._use_sticky:
                mem_entry.sticky_chips.add(chip)
                self._c_chip_sticky.add()

    # ------------------------------------------------------------------
    # Paging hooks
    # ------------------------------------------------------------------

    def note_relocated_block(self, block_addr: int) -> None:
        """Force signature checks everywhere for a relocated block.

        Neither the memory directory nor any chip directory has pointers
        for the fresh frame, so without help the first request would be
        granted unchecked. Marking every chip sticky at the memory level
        (and every core sticky at the chip level) routes the next request
        through full conflict checks; the stickies clean up on the first
        grant, exactly like victimization stickies.
        """
        self._mem_entry(block_addr).sticky_chips.update(
            range(self.cfg.num_chips))
        for chip in range(self.cfg.num_chips):
            first = chip * self.cfg.num_cores
            self._chip_entry(chip, block_addr).sticky.update(
                range(first, first + self.cfg.num_cores))

    def scrub_block(self, block_addr: int) -> None:
        """Frame freed or reallocated: drop copies and pointers everywhere.

        Cores whose signatures still cover the block keep per-chip sticky
        obligations (and their chips stay sticky at the memory directory),
        mirroring the transactional-eviction rule, so conflict checks
        still reach them.
        """
        mem = self._mem_entry(block_addr)
        mem.owner_chip = None
        mem.sharer_chips.clear()
        for chip in range(self.cfg.num_chips):
            entry = self._chip_entry(chip, block_addr)
            entry.rights = None
            entry.owner = None
            entry.sharers.clear()
            first = chip * self.cfg.num_cores
            for core_id in range(first, first + self.cfg.num_cores):
                port = self._ports.get(core_id)
                if port is None:
                    continue
                port.invalidate_block(block_addr)
                if self._use_sticky and port.holds_transactional(block_addr):
                    entry.sticky.add(core_id)
                    mem.sticky_chips.add(chip)
            self.l2s[chip].invalidate(block_addr)

    # ------------------------------------------------------------------
    # L1 replacement notifications
    # ------------------------------------------------------------------

    def l1_evicted(self, core_id: int, block_addr: int, state: MESI,
                   transactional: bool) -> None:
        chip = self.chip_of(core_id)
        entry = self._chip_entry(chip, block_addr)
        if transactional and self._use_sticky:
            entry.sticky.add(core_id)
            self._c_sticky_set.add()
            self._c_l1_evict_tx.add()
            return
        if transactional:
            self._c_l1_evict_tx.add()
        if state in (MESI.MODIFIED, MESI.EXCLUSIVE):
            if entry.owner == core_id:
                entry.owner = None
        # S replacements stay silent, as in the single-CMP protocol.
