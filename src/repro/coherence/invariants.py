"""Coherence + TM invariant checker.

A whole-system audit that can run at any *quiescent* point (no coherence
transaction in flight — e.g. between simulation runs, or after
``run_until_done``). It validates the invariants the protocol relies on;
the fuzz tests call it after every random operation batch, so a transient
corruption surfaces at its origin rather than as a distant wrong value.

Checked invariants:

1. **Single writer** — at most one L1 in the whole system holds a block in
   M or E state.
2. **Writer excludes readers** — if some L1 holds M/E, no other L1 holds
   the block in any state.
3. **Directory accuracy (one-sided)** — every L1 that holds a block is
   covered by the directory's owner/sharer information for it (stale
   directory *extra* sharers are legal — silent S replacement — but a
   *missing* holder is a protocol bug).
4. **Isolation coverage** — every block in a scheduled transaction's
   write-set signature is either cached by that core or covered by a
   sticky/check-all obligation, so conflicting requests still reach the
   signature (the LogTM-SE victimization invariant).
5. **TM bookkeeping** — a thread not in a transaction has empty
   signatures, an empty log, and no retained escape depth.
"""

from __future__ import annotations

from typing import List

from repro.cache.block import MESI
from repro.coherence.directory import DirectoryFabric
from repro.coherence.multichip import MultiChipFabric
from repro.coherence.snooping import SnoopingFabric
# Re-exported for backwards compatibility: InvariantViolation moved to
# ``repro.common.errors`` so it derives from ReproError (it used to be a
# bare AssertionError subclass, which ``python -O`` semantics made
# misleading). Importing it from here keeps working.
from repro.common.errors import InvariantViolation

__all__ = [
    "InvariantViolation", "check_cache_invariants",
    "check_directory_accuracy", "check_isolation_coverage",
    "check_tm_bookkeeping", "check_all",
]


def _holders(system, block_addr):
    """(exclusive_holders, all_holders) core-id lists for one block."""
    exclusive, holders = [], []
    for core in system.cores:
        block = core.l1.peek(block_addr)
        if block is None:
            continue
        holders.append(core.core_id)
        if block.state.is_exclusive:
            exclusive.append(core.core_id)
    return exclusive, holders


def check_cache_invariants(system) -> int:
    """Invariants 1-2 over every resident block. Returns blocks checked."""
    addrs = set()
    for core in system.cores:
        addrs.update(b.addr for b in core.l1.resident_blocks())
    for addr in addrs:
        exclusive, holders = _holders(system, addr)
        if len(exclusive) > 1:
            raise InvariantViolation(
                f"block {addr:#x}: multiple exclusive holders {exclusive}")
        if exclusive and len(holders) > 1:
            raise InvariantViolation(
                f"block {addr:#x}: exclusive in core {exclusive[0]} but "
                f"also cached by {sorted(set(holders) - set(exclusive))}")
    return len(addrs)


def _directory_covers(system, addr, core_id) -> bool:
    fabric = system.fabric
    if isinstance(fabric, DirectoryFabric):
        entry = fabric.entry_view(addr)
        return (entry.owner == core_id or core_id in entry.sharers
                or core_id in entry.sticky or entry.lost_info
                or entry.must_check_all)
    if isinstance(fabric, SnoopingFabric):
        return True  # broadcasts reach everyone by construction
    if isinstance(fabric, MultiChipFabric):
        chip = fabric.chip_of(core_id)
        entry = fabric.chip_entry_view(chip, addr)
        mem = fabric.mem_entry_view(addr)
        chip_known = (mem.owner_chip == chip or chip in mem.sharer_chips
                      or chip in mem.sticky_chips)
        core_known = (entry.owner == core_id or core_id in entry.sharers
                      or core_id in entry.sticky)
        return chip_known and core_known
    raise InvariantViolation(f"unknown fabric {type(fabric).__name__}")


def check_directory_accuracy(system) -> int:
    """Invariant 3: every L1 holder is known to the directory."""
    checked = 0
    for core in system.cores:
        for block in core.l1.resident_blocks():
            checked += 1
            if not _directory_covers(system, block.addr, core.core_id):
                raise InvariantViolation(
                    f"core {core.core_id} caches {block.addr:#x} "
                    f"({block.state.value}) unknown to the directory")
    return checked


def check_isolation_coverage(system) -> int:
    """Invariant 4: write-set blocks stay reachable for conflict checks.

    Only meaningful under eager conflict detection: lazy (Bulk-style) mode
    has no execution-time isolation by design — commit-time broadcasts
    reach every signature regardless of directory state.
    """
    if system.cfg.tm.lazy:
        return 0
    checked = 0
    for core in system.cores:
        for slot in core.slots:
            thread = slot.thread
            if thread is None or not thread.ctx.in_tx:
                continue
            for addr in thread.ctx.signature.write.exact_set():
                checked += 1
                resident = core.l1.peek(addr) is not None
                if resident or _directory_covers(system, addr,
                                                 core.core_id):
                    continue
                raise InvariantViolation(
                    f"thread {thread.tid}'s write-set block {addr:#x} is "
                    "neither cached nor covered by directory state — a "
                    "conflicting request would miss its signature")
    return checked


def check_tm_bookkeeping(system) -> int:
    """Invariant 5: idle contexts carry no transactional residue."""
    checked = 0
    for core in system.cores:
        for slot in core.slots:
            thread = slot.thread
            if thread is None:
                continue
            ctx = thread.ctx
            checked += 1
            if ctx.in_tx:
                continue
            if not ctx.signature.is_empty:
                raise InvariantViolation(
                    f"idle thread {thread.tid} holds a non-empty signature")
            if ctx.log.depth or ctx.log.total_records:
                raise InvariantViolation(
                    f"idle thread {thread.tid} holds undo-log state")
            if ctx.escape_depth:
                raise InvariantViolation(
                    f"idle thread {thread.tid} has escape depth "
                    f"{ctx.escape_depth}")
    return checked


def check_all(system) -> List[str]:
    """Run every audit; returns a summary of what was checked."""
    return [
        f"cache blocks audited: {check_cache_invariants(system)}",
        f"directory entries audited: {check_directory_accuracy(system)}",
        f"write-set blocks audited: {check_isolation_coverage(system)}",
        f"thread contexts audited: {check_tm_bookkeeping(system)}",
    ]
