"""Broadcast-snooping coherence alternative (Section 7).

Every GETS/GETM is broadcast to all cores; a logically-ORed *nack* signal
(the third wired-OR line the paper adds next to owner/shared) reports
whether any core's signature detected a conflict. Because every request
reaches every signature, sticky states are unnecessary and cache
victimization never loses conflict-detection coverage.

The bus is *split-transaction*: the address/snoop phase serializes on a
single bus lock, but the data phase (L2 or memory fetch) proceeds after the
bus is released — holding the bus for a 500-cycle DRAM access would be a
1990s bus, not the CMP fabric the paper assumes. The requester still owns
the coherence decision atomically: the grant is applied during the address
phase, so a competing request observes consistent state.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cache.array import CacheArray
from repro.cache.block import MESI
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.msgs import CoherenceResult, Timestamp
from repro.interconnect.network import Network
from repro.mem.address import AddressMap
from repro.sim.resources import SimLock


class SnoopingFabric(CoherenceFabric):
    """Single-CMP broadcast snooping with a wired-OR NACK line."""

    def __init__(self, cfg: SystemConfig, network: Network,
                 stats: StatsRegistry) -> None:
        super().__init__()
        self.cfg = cfg
        self.network = network
        self.stats = stats
        self.amap = AddressMap(block_bytes=cfg.block_bytes,
                               page_bytes=cfg.page_bytes,
                               num_banks=cfg.l2_banks)
        self.l2 = CacheArray(cfg.l2, name="L2")
        self._bus = SimLock("snoop-bus")
        #: Per-block transaction locks: the bus only serializes the
        #: address/snoop phase; same-block transactions must also not
        #: overlap their data phases (different blocks may).
        self._block_locks: Dict[int, SimLock] = {}
        # Who holds what, to target invalidations/downgrades. Unlike the
        # directory this is *not* consulted for conflict checks (those are
        # always broadcast); it only tracks cache residency.
        self._owner: Dict[int, Optional[int]] = {}
        self._sharers: Dict[int, Set[int]] = {}
        self._c_requests = stats.counter("coherence.requests")
        self._c_nacks = stats.counter("coherence.nacks")
        self._c_bcast = stats.counter("coherence.snoops")
        self._c_mem = stats.counter("coherence.memory_fetches")
        self._c_l1_evict_tx = stats.counter("victimization.l1_tx")

    def _block_lock(self, block_addr: int) -> SimLock:
        lock = self._block_locks.get(block_addr)
        if lock is None:
            lock = SimLock(f"snoop[{block_addr:#x}]")
            self._block_locks[block_addr] = lock
        return lock

    def request(self, requester_core: int, requester_thread: int,
                requester_ts: Optional[Timestamp], block_addr: int,
                is_write: bool, asid: int):
        block_lock = self._block_lock(block_addr)
        yield from block_lock.acquire()
        try:
            # --- Address/snoop phase: serialized on the bus. ---
            yield from self._bus.acquire()
            try:
                self._c_requests.add()
                self._c_bcast.add()
                if self.stats.recorder is not None:
                    self.stats.emit("coh.snoop", block=block_addr,
                                    core=requester_core, write=is_write)
                bank = self.amap.bank_of(block_addr)
                # Broadcast: reaches all cores and the home L2 bank.
                yield self.network.broadcast_from_bank(bank, "snoop")

                owner = self._owner.get(block_addr)
                blockers = []
                for port in self.ports:
                    if port.core_id == requester_core:
                        continue
                    # The check and the coherence action are atomic per
                    # snooper: a clean core applies its invalidation /
                    # downgrade with the snoop itself. Deferring it to the
                    # grant would let a racing local hit read a doomed
                    # copy after its signature tested clean.
                    found = port.check_conflicts(
                        block_addr, is_write,
                        exclude_thread=requester_thread,
                        asid=asid, requester_ts=requester_ts)
                    if found:
                        blockers.extend(found)
                    elif is_write:
                        port.invalidate_block(block_addr)
                    elif port.core_id == owner:
                        port.downgrade_block(block_addr)
                if blockers:
                    self._c_nacks.add()
                    if self.stats.recorder is not None:
                        self.stats.emit(
                            "coh.nack", block=block_addr,
                            core=requester_core, thread=requester_thread,
                            blockers=tuple(
                                (b.thread_id, b.false_positive, b.via)
                                for b in blockers))
                    return CoherenceResult(granted=False, blockers=blockers)
                l2_hit = self.l2.lookup(block_addr) is not None
            finally:
                self._bus.release()

            # --- Data phase: off the bus (split-transaction). ---
            if owner is not None and owner != requester_core:
                yield self.network.core_to_core(owner, requester_core,
                                                "data")
            elif l2_hit:
                yield self.cfg.l2.latency
            else:
                self._c_mem.add()
                yield self.cfg.memory_latency
                self.l2.insert(block_addr, MESI.SHARED)
            # Apply the grant after the final yield: the requester resumes
            # in the same simulation event, so its L1 install is atomic
            # with this state update.
            grant_state = self._apply_grant(requester_core, block_addr,
                                            is_write)
            if self.stats.recorder is not None:
                self.stats.emit("coh.grant", block=block_addr,
                                core=requester_core,
                                thread=requester_thread,
                                write=is_write, state=grant_state.name)
            return CoherenceResult(granted=True, grant_state=grant_state)
        finally:
            block_lock.release()

    def _apply_grant(self, requester_core: int, block_addr: int,
                     is_write: bool) -> MESI:
        """Residency bookkeeping only: the invalidations/downgrades were
        applied atomically with each core's snoop in the address phase."""
        owner = self._owner.get(block_addr)
        sharers = self._sharers.setdefault(block_addr, set())
        if is_write:
            sharers.clear()
            self._owner[block_addr] = requester_core
            return MESI.MODIFIED
        if owner is not None and owner != requester_core:
            sharers.add(owner)
            self._owner[block_addr] = None
        if not sharers and not any(
                port.holds_transactional(block_addr)
                for port in self.ports
                if port.core_id != requester_core):
            # E needs more than residency exclusivity: a non-resident
            # core may still hold the block in its read signature (e.g.
            # after a page-relocation scrub), and a silent E->M upgrade
            # would write without any snoop reaching that signature.
            self._owner[block_addr] = requester_core
            return MESI.EXCLUSIVE
        sharers.add(requester_core)
        return MESI.SHARED

    def scrub_block(self, block_addr: int) -> None:
        super().scrub_block(block_addr)
        self.l2.invalidate(block_addr)
        self._owner.pop(block_addr, None)
        self._sharers.pop(block_addr, None)

    def l1_evicted(self, core_id: int, block_addr: int, state: MESI,
                   transactional: bool) -> None:
        # No sticky states: broadcasts reach every signature regardless of
        # caching, so replacement just updates residency tracking.
        if self.stats.recorder is not None:
            self.stats.emit("coh.l1_victim", block=block_addr, core=core_id,
                            transactional=transactional, sticky=False)
        if transactional:
            self._c_l1_evict_tx.add()
        if self._owner.get(block_addr) == core_id:
            self._owner[block_addr] = None
        self._sharers.get(block_addr, set()).discard(core_id)
