"""Coherence request/response vocabulary.

The protocol layer talks to cores through the :class:`ConflictPort`
interface: the directory (or snooping bus) forwards a request to a core,
which checks the signatures of its thread contexts and answers with zero or
more :class:`Blocker` records (a non-empty list means NACK). Results carry
enough provenance — blocker timestamps, false-positive flags — for LogTM's
conflict-resolution policy and for Table 3's accounting.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.cache.block import MESI

#: Transaction timestamp: (begin cycle, global thread id). Lower is older.
Timestamp = Tuple[int, int]


class Blocker:
    """One thread context whose signature NACKed a request.

    A slotted value object (constructed once per NACKing context on the
    protocol hot path, hence not a dataclass): treat instances as frozen.
    """

    __slots__ = ("core_id", "thread_id", "timestamp", "false_positive", "via")

    def __init__(self, core_id: int, thread_id: int,
                 timestamp: Optional[Timestamp], false_positive: bool,
                 via: str = "targeted") -> None:
        self.core_id = core_id
        #: Global thread-context id.
        self.thread_id = thread_id
        #: None for a non-transactional blocker.
        self.timestamp = timestamp
        #: The signature hit had no real overlap.
        self.false_positive = false_positive
        #: How the conflict check reached this blocker: a "targeted" forward
        #: from precise directory state, a "sticky" forward from a stale
        #: post-victimization state, or a lost-info "broadcast". Feeds abort
        #: attribution (sticky/capacity categories).
        self.via = via

    def older_than(self, ts: Optional[Timestamp]) -> bool:
        """Whether this blocker's transaction began before ``ts``."""
        if self.timestamp is None:
            return False
        if ts is None:
            return True
        return self.timestamp < ts

    def _key(self):
        return (self.core_id, self.thread_id, self.timestamp,
                self.false_positive, self.via)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Blocker):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"Blocker(core_id={self.core_id}, "
                f"thread_id={self.thread_id}, timestamp={self.timestamp}, "
                f"false_positive={self.false_positive}, via={self.via!r})")


class CoherenceResult:
    """Outcome of one coherence request attempt.

    Slotted plain class: one is built per request attempt, which makes it
    the second-hottest allocation in the machine after Blocker.
    """

    __slots__ = ("granted", "grant_state", "blockers", "latency")

    def __init__(self, granted: bool, grant_state: MESI = MESI.INVALID,
                 blockers: Optional[List[Blocker]] = None,
                 latency: int = 0) -> None:
        self.granted = granted
        #: State the requester may install.
        self.grant_state = grant_state
        self.blockers = [] if blockers is None else blockers
        #: Cycles charged (informational).
        self.latency = latency

    @property
    def nacked(self) -> bool:
        return not self.granted

    @property
    def all_false_positive(self) -> bool:
        """The whole NACK was due to signature aliasing (no real conflict)."""
        return bool(self.blockers) and all(
            b.false_positive for b in self.blockers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoherenceResult):
            return NotImplemented
        return (self.granted == other.granted
                and self.grant_state == other.grant_state
                and self.blockers == other.blockers
                and self.latency == other.latency)

    def __repr__(self) -> str:
        return (f"CoherenceResult(granted={self.granted}, "
                f"grant_state={self.grant_state}, blockers={self.blockers}, "
                f"latency={self.latency})")


class ConflictPort(abc.ABC):
    """What the protocol needs from a core: checks and cache-state updates."""

    @property
    @abc.abstractmethod
    def core_id(self) -> int: ...

    @abc.abstractmethod
    def check_conflicts(self, block_addr: int, is_write: bool,
                        exclude_thread: Optional[int], asid: int,
                        requester_ts: Optional[Timestamp]) -> List[Blocker]:
        """Signature-check an incoming request against local thread contexts.

        ``exclude_thread`` is the requesting context (never conflicts with
        itself). Implementations must honor the ASID filter (Section 2) and,
        per LogTM's policy, set the blocker transaction's ``possible_cycle``
        flag when NACKing an older requester.
        """

    @abc.abstractmethod
    def invalidate_block(self, block_addr: int) -> bool:
        """Drop the block from this core's L1; True if it was resident."""

    @abc.abstractmethod
    def downgrade_block(self, block_addr: int) -> bool:
        """M/E -> S on this core's L1; True if it was resident exclusive."""

    def mark_abort(self, thread_id: int, fp: bool = False) -> bool:
        """Contention-manager hook: doom a local thread's transaction.

        The transaction aborts at its next transactional instruction
        boundary (asynchronous aborts are impossible — a transaction
        mid-escape-action cannot be unrolled). ``fp`` records whether the
        winning requester's conflict was pure signature aliasing, so the
        doomed side's abort attributes correctly. Returns True if the
        thread is here and was in a transaction. Default: not supported.
        """
        return False

    @abc.abstractmethod
    def holds_transactional(self, block_addr: int) -> bool:
        """Conservative test: may this block be in a local signature?

        This is the check the evicting L1 performs to decide whether a
        replacement must leave a *sticky* directory state. It consults the
        (possibly aliasing) signatures, exactly as hardware would.
        """
