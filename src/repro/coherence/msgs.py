"""Coherence request/response vocabulary.

The protocol layer talks to cores through the :class:`ConflictPort`
interface: the directory (or snooping bus) forwards a request to a core,
which checks the signatures of its thread contexts and answers with zero or
more :class:`Blocker` records (a non-empty list means NACK). Results carry
enough provenance — blocker timestamps, false-positive flags — for LogTM's
conflict-resolution policy and for Table 3's accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.block import MESI

#: Transaction timestamp: (begin cycle, global thread id). Lower is older.
Timestamp = Tuple[int, int]


@dataclass(frozen=True)
class Blocker:
    """One thread context whose signature NACKed a request."""

    core_id: int
    thread_id: int                 # global thread-context id
    timestamp: Optional[Timestamp]  # None for a non-transactional blocker
    false_positive: bool            # the signature hit had no real overlap
    #: How the conflict check reached this blocker: a "targeted" forward
    #: from precise directory state, a "sticky" forward from a stale
    #: post-victimization state, or a lost-info "broadcast". Feeds abort
    #: attribution (sticky/capacity categories).
    via: str = "targeted"

    def older_than(self, ts: Optional[Timestamp]) -> bool:
        """Whether this blocker's transaction began before ``ts``."""
        if self.timestamp is None:
            return False
        if ts is None:
            return True
        return self.timestamp < ts


@dataclass
class CoherenceResult:
    """Outcome of one coherence request attempt."""

    granted: bool
    grant_state: MESI = MESI.INVALID   # state the requester may install
    blockers: List[Blocker] = field(default_factory=list)
    latency: int = 0                   # cycles charged (informational)

    @property
    def nacked(self) -> bool:
        return not self.granted

    @property
    def all_false_positive(self) -> bool:
        """The whole NACK was due to signature aliasing (no real conflict)."""
        return bool(self.blockers) and all(
            b.false_positive for b in self.blockers)


class ConflictPort(abc.ABC):
    """What the protocol needs from a core: checks and cache-state updates."""

    @property
    @abc.abstractmethod
    def core_id(self) -> int: ...

    @abc.abstractmethod
    def check_conflicts(self, block_addr: int, is_write: bool,
                        exclude_thread: Optional[int], asid: int,
                        requester_ts: Optional[Timestamp]) -> List[Blocker]:
        """Signature-check an incoming request against local thread contexts.

        ``exclude_thread`` is the requesting context (never conflicts with
        itself). Implementations must honor the ASID filter (Section 2) and,
        per LogTM's policy, set the blocker transaction's ``possible_cycle``
        flag when NACKing an older requester.
        """

    @abc.abstractmethod
    def invalidate_block(self, block_addr: int) -> bool:
        """Drop the block from this core's L1; True if it was resident."""

    @abc.abstractmethod
    def downgrade_block(self, block_addr: int) -> bool:
        """M/E -> S on this core's L1; True if it was resident exclusive."""

    def mark_abort(self, thread_id: int, fp: bool = False) -> bool:
        """Contention-manager hook: doom a local thread's transaction.

        The transaction aborts at its next transactional instruction
        boundary (asynchronous aborts are impossible — a transaction
        mid-escape-action cannot be unrolled). ``fp`` records whether the
        winning requester's conflict was pure signature aliasing, so the
        doomed side's abort attributes correctly. Returns True if the
        thread is here and was in a transaction. Default: not supported.
        """
        return False

    @abc.abstractmethod
    def holds_transactional(self, block_addr: int) -> bool:
        """Conservative test: may this block be in a local signature?

        This is the check the evicting L1 performs to decide whether a
        replacement must leave a *sticky* directory state. It consults the
        (possibly aliasing) signatures, exactly as hardware would.
        """
