"""Per-thread undo log (eager version management).

LogTM-SE writes new values in place and saves old values in a per-thread,
cacheable, virtual-memory log. Following Nested LogTM, the log is segmented
into a stack of *frames* — one per nesting level — each with a fixed-size
header (register checkpoint + signature-save area) and a variable body of
undo records (Section 3.2).

Undo records capture the *virtual* block address and the block's previous
contents; abort restores through the current translation, which is what
makes version management survive paging (Section 4.2). The stored contents
are the real functional values from :class:`PhysicalMemory`, so an abort is
observable, not just accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import TransactionError
from repro.mem.physical import WORD_BYTES, PhysicalMemory
from repro.signatures.rwpair import PairSnapshot


@dataclass
class UndoRecord:
    """Old contents of one block, keyed by virtual address."""

    vblock: int                 # block-aligned virtual address
    old_words: Dict[int, int]   # vaddr -> previous value, one per word


@dataclass
class LogFrame:
    """One nesting level: header (checkpoint + signature save) + records."""

    checkpoint: Any = None                       # opaque register checkpoint
    saved_signature: Optional[PairSnapshot] = None  # parent's signature
    is_open: bool = False                        # open vs. closed nest
    records: List[UndoRecord] = field(default_factory=list)


class UndoLog:
    """Stack of log frames for one thread context.

    ``stats``/``thread_id`` are optional observability wiring: with a
    registry attached, the log emits ``log.append``/``log.unroll`` events
    so trace consumers can see version-management activity (log growth,
    abort walk lengths) alongside the coherence stream.
    """

    def __init__(self, block_bytes: int = 64, stats: Any = None,
                 thread_id: Optional[int] = None) -> None:
        self.block_bytes = block_bytes
        self._frames: List[LogFrame] = []
        self._stats = stats
        self._thread_id = thread_id
        #: Total records ever appended in the current outer transaction —
        #: the "log pointer" that commit resets.
        self.appended = 0

    # -- frame management ----------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def current(self) -> LogFrame:
        if not self._frames:
            raise TransactionError("no active log frame")
        return self._frames[-1]

    def push_frame(self, checkpoint: Any = None,
                   saved_signature: Optional[PairSnapshot] = None,
                   is_open: bool = False) -> LogFrame:
        frame = LogFrame(checkpoint=checkpoint,
                         saved_signature=saved_signature, is_open=is_open)
        self._frames.append(frame)
        return frame

    def pop_frame(self) -> LogFrame:
        if not self._frames:
            raise TransactionError("pop from empty log")
        return self._frames.pop()

    def merge_into_parent(self) -> LogFrame:
        """Closed-nest commit: parent absorbs the child's undo records.

        "LogTM-SE merges the inner transaction with its parent by discarding
        the inner transaction's header and restoring the parent's log frame."
        The parent must still be able to undo the child's writes if *it*
        later aborts, so the records are concatenated.
        """
        if len(self._frames) < 2:
            raise TransactionError("merge requires a parent frame")
        child = self._frames.pop()
        self._frames[-1].records.extend(child.records)
        return child

    def discard_child(self) -> LogFrame:
        """Open-nest commit: the child's writes become permanent.

        Its undo records are dropped — a later abort of the parent must NOT
        roll back an open-committed child (open nesting releases isolation
        and commits globally).
        """
        if len(self._frames) < 2:
            raise TransactionError("open commit requires a parent frame")
        return self._frames.pop()

    def reset(self) -> None:
        """Outer commit: reset the log pointer (frames are gone)."""
        self._frames.clear()
        self.appended = 0

    # -- undo records ----------------------------------------------------------

    def append(self, vblock: int, memory: PhysicalMemory,
               translate: Callable[[int], int]) -> UndoRecord:
        """Log the current contents of the block containing ``vblock``."""
        # Per-word translation is deliberate: a block may straddle a page
        # under relocation, so each word resolves through the page table.
        load = memory.load
        old_words: Dict[int, int] = {
            vaddr: load(translate(vaddr))
            for vaddr in range(vblock, vblock + self.block_bytes, WORD_BYTES)}
        record = UndoRecord(vblock=vblock, old_words=old_words)
        self.current.records.append(record)
        self.appended += 1
        if self._stats is not None and self._stats.recorder is not None:
            self._stats.emit("log.append", thread=self._thread_id,
                             vblock=vblock, depth=self.depth)
        return record

    def unroll_frame(self, memory: PhysicalMemory,
                     translate: Callable[[int], int]) -> int:
        """Abort handler: restore the top frame's blocks in LIFO order.

        Returns the number of records undone. The frame is popped; the
        caller restores the saved signature from its header.
        """
        depth = self.depth
        frame = self.pop_frame()
        for record in reversed(frame.records):
            for vaddr, old in record.old_words.items():
                memory.store(translate(vaddr), old)
        if self._stats is not None and self._stats.recorder is not None:
            self._stats.emit("log.unroll", thread=self._thread_id,
                             records=len(frame.records), depth=depth)
        return len(frame.records)

    @property
    def total_records(self) -> int:
        return sum(len(f.records) for f in self._frames)
