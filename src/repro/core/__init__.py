"""LogTM-SE core: transaction contexts, undo log, conflicts, TM manager."""

from repro.core.conflict import BackoffPolicy, Resolution, resolve_nack
from repro.core.logfilter import LogFilter
from repro.core.policies import (AggressivePolicy, ContentionPolicy,
                                 Decision, PolitePolicy, TimestampPolicy,
                                 make_policy)
from repro.core.manager import TMManager
from repro.core.txcontext import TxContext
from repro.core.undolog import LogFrame, UndoLog, UndoRecord

__all__ = ["AggressivePolicy", "BackoffPolicy", "ContentionPolicy",
           "Decision", "LogFilter", "LogFrame", "PolitePolicy",
           "Resolution", "TMManager", "TimestampPolicy", "TxContext",
           "UndoLog", "UndoRecord", "make_policy", "resolve_nack"]
