"""Lock-based baseline: test-and-test-and-set spinlocks.

The paper's Figure 4 baseline runs the *original lock-based programs*; each
critical section that TM mode executes as a transaction is instead guarded
by a spinlock here. The lock word is ordinary shared memory, so contention,
coherence ping-pong, and serialization all emerge from the same cache and
directory model the transactions use — an apples-to-apples comparison.
"""

from __future__ import annotations

import random

from repro.common.config import TMConfig
from repro.cpu.core import Core
from repro.cpu.thread import HardwareSlot

#: Value stored into a held lock word.
LOCKED = 1
UNLOCKED = 0


def acquire(core: Core, slot: HardwareSlot, lock_vaddr: int,
            rng: random.Random, base_backoff: int = 20,
            max_exponent: int = 3):
    """Test-and-test-and-set acquire with bounded exponential backoff.

    The *test* phase spins on ordinary loads (cache-local once the line is
    in S state); only when the lock reads free does the thread attempt the
    (write-permission-acquiring) test-and-set.
    """
    attempt = 0
    while True:
        value = yield from core.load(slot, lock_vaddr)
        if value == UNLOCKED:
            old = yield from core.swap(slot, lock_vaddr, LOCKED)
            if old == UNLOCKED:
                core.stats.counter("locks.acquires").add()
                return
        attempt += 1
        core.stats.counter("locks.spins").add()
        window = base_backoff << min(attempt, max_exponent)
        yield base_backoff + rng.randrange(window)


def release(core: Core, slot: HardwareSlot, lock_vaddr: int):
    """Release by storing UNLOCKED (a normal coherent store)."""
    yield from core.store(slot, lock_vaddr, UNLOCKED)
    core.stats.counter("locks.releases").add()
