"""TM manager: transaction lifecycle plus the OS-side virtualization ops.

The manager is the software half of LogTM-SE — the runtime/OS code the paper
assumes. It owns:

* begin/commit/abort orchestration (charging the configured handler costs);
* the per-process *summary signature* bookkeeping of Section 4.1:
  descheduling merges a thread's saved signature into its process summary
  and interrupts every context running that process to install the update;
  rescheduling restores the saved signature and installs, on that context
  only, a summary that excludes the thread's own sets; the summary is not
  recomputed until the thread commits (preserving sticky isolation across
  migration), at which point commit traps to the OS;
* the paging fix-up of Section 4.2: after a page relocation, every
  signature that may contain blocks of the old frame gains the same blocks
  at the new frame.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.common.config import SystemConfig
from repro.common.errors import AbortTransaction, TransactionError
from repro.common.stats import StatsRegistry
from repro.obs.analysis import classify_abort
from repro.cpu.thread import HardwareSlot, SoftwareThread
from repro.mem.physical import PhysicalMemory
from repro.mem.vm import PageTable
from repro.sim.engine import Simulator
from repro.sim.resources import SimLock
from repro.signatures.counting import CountingPair
from repro.signatures.rwpair import PairSnapshot, ReadWriteSignature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpu.core import Core


class TMManager:
    """Runtime + OS support for LogTM-SE transactions."""

    def __init__(self, cfg: SystemConfig, sim: Simulator,
                 memory: PhysicalMemory, cores: "List[Core]",
                 stats: StatsRegistry,
                 pair_factory: Callable[[], ReadWriteSignature]) -> None:
        self.cfg = cfg
        self.sim = sim
        self.memory = memory
        self.cores = cores
        self.stats = stats
        self._pair_factory = pair_factory
        #: Saved signatures of threads descheduled mid-transaction:
        #: asid -> tid -> snapshot. Entries persist until the thread's
        #: outer transaction commits (or aborts), even across reschedule.
        self._saved: Dict[int, Dict[int, PairSnapshot]] = {}
        #: Per-process counting signature (the paper's footnote 1 / VTM XF
        #: structure): tracks how many suspended threads set each summary
        #: bit, so summary updates are incremental instead of re-unioning
        #: every saved signature.
        self._counting: Dict[int, CountingPair] = {}
        #: OS mutexes for the lock baseline (LockImpl.MUTEX), keyed by
        #: (asid, lock virtual address). A futex-style blocking mutex:
        #: waiters queue instead of spinning through the memory system.
        self._mutexes: Dict[tuple, SimLock] = {}
        #: Lazy mode's global commit token — Bulk "requires global
        #: synchronization for ordering commit operations" (Section 1);
        #: LogTM-SE's local commit is exactly the absence of this lock.
        self._commit_token = SimLock("commit-token")
        self._c_desched = stats.counter("os.deschedules_in_tx")
        self._c_sched = stats.counter("os.reschedules_in_tx")
        self._c_summary_installs = stats.counter("os.summary_installs")
        self._c_page_moves = stats.counter("os.page_relocations")
        self._c_sig_rehomes = stats.counter("os.signature_rehomes")

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self, slot: HardwareSlot, is_open: bool = False):
        """Begin a transaction on a slot (register checkpoint + log frame)."""
        if is_open and self.cfg.tm.lazy:
            raise TransactionError(
                "open nesting requires eager version management "
                "(a lazy child cannot commit globally before its parent)")
        yield self.cfg.tm.begin_cycles
        ctx = slot.ctx
        ctx.begin(self.sim.now, is_open=is_open)
        self.stats.emit("tm.begin", thread=ctx.thread_id, depth=ctx.depth,
                        open=is_open)

    def commit(self, slot: HardwareSlot):
        """Commit the innermost transaction; returns True when the outer
        transaction finished (the fast local path), trapping to the OS for a
        summary recompute if this thread migrated mid-transaction."""
        ctx = slot.ctx
        self._raise_if_squashed(ctx)
        if ctx.depth == 1:
            ctx.record_commit_footprint()
            if self.cfg.tm.lazy:
                yield from self._lazy_commit(slot)
        yield self.cfg.tm.commit_cycles
        outer = ctx.commit()
        self.stats.emit("tm.commit", thread=ctx.thread_id, outer=outer)
        if outer and ctx.needs_summary_recompute:
            ctx.needs_summary_recompute = False
            thread = slot.thread
            self._drop_saved(thread.asid, thread.tid)
            yield from self._push_summaries(thread.asid)
        return outer

    def abort(self, slot: HardwareSlot, full: bool = True,
              cause: Optional[AbortTransaction] = None):
        """Run the software abort handler; returns records unrolled.

        ``cause`` is the :class:`AbortTransaction` that forced the abort
        (None for an explicit/programmatic abort); its structured
        cause/fp/via provenance drives the attribution category recorded
        both as a ``tm.aborts.<category>`` counter and on the ``tm.abort``
        event.
        """
        ctx = slot.ctx
        thread = slot.thread
        if not ctx.in_tx:
            # Already unrolled (e.g. a classic-LogTM preemption abort ran
            # while the thread was descheduled); nothing left to do.
            return 0
        if full:
            undone = ctx.abort_all(self.memory, thread.translate)
        else:
            undone = ctx.abort_innermost(self.memory, thread.translate)
        yield (self.cfg.tm.abort_handler_cycles
               + undone * self.cfg.tm.abort_cycles_per_entry)
        cause_str = cause.cause if cause is not None else "explicit"
        fp = cause.fp if cause is not None else False
        via = cause.via if cause is not None else "targeted"
        category = classify_abort(cause_str, fp, via)
        outer = not ctx.in_tx
        if outer and full:
            # Category counters mirror the tm.aborts total (bumped in
            # abort_all): only a completed outer abort is attributed.
            self.stats.counter(f"tm.aborts.{category}").add()
        self.stats.emit("tm.abort", thread=ctx.thread_id, undone=undone,
                        full=full, outer=outer, cause=cause_str, fp=fp,
                        via=via, category=category)
        if full and not ctx.in_tx:
            # A completed (fully aborted) transaction also discharges any
            # summary obligation from an earlier migration.
            if ctx.needs_summary_recompute:
                ctx.needs_summary_recompute = False
                self._drop_saved(thread.asid, thread.tid)
                yield from self._push_summaries(thread.asid)
        return undone

    @staticmethod
    def _raise_if_squashed(ctx) -> None:
        """An asynchronous squash already unrolled this transaction; hand
        the thread to its executor's retry loop instead of 'committing'."""
        if ctx.aborted_by_os and not ctx.in_tx:
            ctx.aborted_by_os = False
            raise AbortTransaction("squashed before commit", cause="squash")

    # ------------------------------------------------------------------
    # Lazy (Bulk-style) commit — the Section 8 comparator
    # ------------------------------------------------------------------

    def _lazy_commit(self, slot: HardwareSlot):
        """Commit a lazy transaction: token, broadcast, squash, write back.

        1. Acquire the global commit token (Bulk's commit ordering).
        2. Broadcast the write signature; every concurrent transaction in
           the same address space compares it against its own read/write
           signatures — any (possibly false-positive) intersection squashes
           that transaction. Lazy squash is cheap: discard the buffer and
           clear the signature; no memory restore.
        3. Apply the write buffer to memory, invalidating other caches'
           copies of the written blocks.

        Documented simplifications vs. real Bulk: weak atomicity
        (non-transactional stores do not squash readers) and
        directory-state laziness after the commit writeback (stale *extra*
        pointers only, which this protocol family tolerates by design).
        """
        committer = slot.thread
        ctx = committer.ctx
        yield from self._commit_token.acquire()
        try:
            # We may have been squashed while queueing for the token.
            self._raise_if_squashed(ctx)
            yield self.cfg.tm.commit_token_broadcast_cycles
            write_sig = ctx.signature.write
            squashed = 0
            for core in self.cores:
                for other_slot in core.slots:
                    other = other_slot.thread
                    if other is None or other.tid == committer.tid:
                        continue
                    if other.asid != committer.asid:
                        continue
                    octx = other.ctx
                    if not octx.in_tx:
                        continue
                    hit = any(octx.signature.conflicts_with_write(block)
                              for block in write_sig.exact_set())
                    if hit:
                        octx.abort_all(self.memory, other.translate)
                        octx.aborted_by_os = True
                        squashed += 1
                        self.stats.counter("tm.aborts.other").add()
                        self.stats.emit("tm.abort", thread=octx.thread_id,
                                        undone=0, full=True, outer=True,
                                        cause="squash", fp=False,
                                        via="targeted", category="other")
            if squashed:
                self.stats.counter("tm.lazy_squashes").add(squashed)

            # Write back the buffer (data to memory, copies invalidated).
            blocks = sorted({self.cores[0].amap.block_of(
                committer.translate(word))
                for word in ctx.write_buffer})
            for word, value in sorted(ctx.write_buffer.items()):
                self.memory.store(committer.translate(word), value)
            for block in blocks:
                for core in self.cores:
                    if core.core_id != slot.core.core_id:
                        core.invalidate_block(block)
                # The committer's own stale (pre-transaction) copy must go
                # too: its L1 never held the speculative values.
                slot.core.invalidate_block(block)
            if blocks:
                yield len(blocks) * self.cfg.tm.writeback_cycles_per_block
            self.stats.counter("tm.lazy_writeback_blocks").add(len(blocks))
        finally:
            self._commit_token.release()

    # ------------------------------------------------------------------
    # OS mutexes (the paper's lock-based baseline)
    # ------------------------------------------------------------------

    def _mutex(self, asid: int, lock_vaddr: int) -> SimLock:
        key = (asid, lock_vaddr)
        lock = self._mutexes.get(key)
        if lock is None:
            lock = SimLock(f"mutex[{asid}:{lock_vaddr:#x}]")
            self._mutexes[key] = lock
        return lock

    def mutex_acquire(self, slot: HardwareSlot, lock_vaddr: int):
        """Blocking mutex acquire: queue, don't spin."""
        thread = slot.thread
        lock = self._mutex(thread.asid, lock_vaddr)
        yield self.cfg.tm.mutex_acquire_cycles
        if lock.held:
            self.stats.counter("locks.contended").add()
            waited_from = self.sim.now
            yield from lock.acquire()
            self.stats.counter("locks.wait_cycles").add(
                self.sim.now - waited_from)
            yield self.cfg.tm.mutex_wakeup_cycles
        else:
            yield from lock.acquire()
        self.stats.counter("locks.acquires").add()

    def mutex_release(self, slot: HardwareSlot, lock_vaddr: int):
        thread = slot.thread
        lock = self._mutex(thread.asid, lock_vaddr)
        yield self.cfg.tm.mutex_release_cycles
        lock.release()
        self.stats.counter("locks.releases").add()

    def begin_escape(self, slot: HardwareSlot) -> None:
        slot.ctx.begin_escape()

    def end_escape(self, slot: HardwareSlot) -> None:
        slot.ctx.end_escape()

    # ------------------------------------------------------------------
    # Context switching / migration (Section 4.1)
    # ------------------------------------------------------------------

    def deschedule(self, slot: HardwareSlot):
        """Remove the thread from its context, virtualizing any open tx."""
        thread = slot.thread
        if thread is None:
            raise TransactionError("deschedule of an empty slot")
        ctx = thread.ctx
        yield self.cfg.tm.context_switch_cycles
        if ctx.in_tx and self.cfg.tm.lazy:
            # Lazy mode is not virtualizable here: the write buffer and
            # commit-time detection have no summary-signature equivalent,
            # so preemption squashes (cheaply — just drop the buffer).
            self.stats.counter("tm.lazy_preemption_aborts").add()
            ctx.abort_all(self.memory, thread.translate)
            ctx.aborted_by_os = True
            self.stats.counter("tm.aborts.other").add()
            self.stats.emit("tm.abort", thread=ctx.thread_id, undone=0,
                            full=True, outer=True, cause="preemption",
                            fp=False, via="targeted", category="other")
            yield self.cfg.tm.abort_handler_cycles
            slot.unbind()
            return thread
        if ctx.in_tx and self.cfg.tm.classic_logtm:
            # Original LogTM (Section 8): R/W bits in the L1 cannot be
            # saved, so preemption aborts the transaction — the lost-work
            # cost LogTM-SE's software-visible signatures eliminate.
            self.stats.counter("tm.classic_preemption_aborts").add()
            undone = ctx.abort_all(self.memory, thread.translate)
            ctx.aborted_by_os = True
            self.stats.counter("tm.aborts.other").add()
            self.stats.emit("tm.abort", thread=ctx.thread_id, undone=undone,
                            full=True, outer=True, cause="preemption",
                            fp=False, via="targeted", category="other")
            yield (self.cfg.tm.abort_handler_cycles
                   + undone * self.cfg.tm.abort_cycles_per_entry)
            slot.unbind()
            return thread
        if ctx.in_tx:
            self._c_desched.add()
            # Save the signature into the log header (modeled as the
            # thread-side snapshot), merge into the process summary, and
            # interrupt every context running this process.
            snapshot = ctx.signature.snapshot()
            thread.saved_signature = snapshot
            self._store_saved(thread.asid, thread.tid, snapshot)
            ctx.signature.clear()
            ctx.log_filter.clear()  # advisory state; always safe to drop
            slot.unbind()
            yield from self._push_summaries(thread.asid)
        else:
            slot.unbind()
        self.stats.emit("os.deschedule", thread=thread.tid,
                        in_tx=thread.saved_signature is not None)
        return thread

    def schedule(self, thread: SoftwareThread, slot: HardwareSlot):
        """Place a thread on a (possibly different) hardware context."""
        if slot.occupied:
            raise TransactionError(f"slot {slot.global_id} is occupied")
        yield self.cfg.tm.context_switch_cycles
        slot.bind(thread)
        self.stats.emit("os.schedule", thread=thread.tid,
                        slot=slot.global_id)
        ctx = thread.ctx
        if thread.saved_signature is not None:
            self._c_sched.add()
            ctx.signature.restore(thread.saved_signature)
            thread.saved_signature = None
            # The thread must not conflict with its own saved sets: this
            # context gets a summary that excludes them. Other contexts
            # keep the full summary until the commit trap (so blocks in
            # sticky states remain isolated after migration).
            ctx.needs_summary_recompute = True
            self._install_summary(slot, thread.asid, exclude_tid=thread.tid)
            yield self.cfg.tm.summary_interrupt_cycles
        else:
            self._install_summary(slot, thread.asid, exclude_tid=thread.tid)

    def migrate(self, src_slot: HardwareSlot, dst_slot: HardwareSlot):
        """Deschedule from one context and reschedule on another."""
        thread = yield from self.deschedule(src_slot)
        yield from self.schedule(thread, dst_slot)
        return thread

    def _store_saved(self, asid: int, tid: int,
                     snapshot: PairSnapshot) -> None:
        """Record a descheduled transaction's signature (incrementally)."""
        saved = self._saved.setdefault(asid, {})
        counting = self._counting.get(asid)
        if counting is None:
            counting = CountingPair(self._pair_factory())
            self._counting[asid] = counting
        old = saved.get(tid)
        if old is not None:
            counting.remove(old)
        saved[tid] = snapshot
        counting.add(snapshot)

    def _drop_saved(self, asid: int, tid: int) -> None:
        """Discharge a saved signature (its transaction finished)."""
        snapshot = self._saved.get(asid, {}).pop(tid, None)
        if snapshot is not None:
            self._counting[asid].remove(snapshot)

    def _summary_pair(self, asid: int,
                      exclude_tid: Optional[int]) -> ReadWriteSignature:
        pair = self._pair_factory()
        counting = self._counting.get(asid)
        if counting is None or counting.is_empty:
            return pair
        exclude = self._saved.get(asid, {}).get(exclude_tid)
        counting.summary_into(pair, exclude=exclude)
        return pair

    def _install_summary(self, slot: HardwareSlot, asid: int,
                         exclude_tid: Optional[int]) -> None:
        computed = self._summary_pair(asid, exclude_tid)
        slot.summary.restore(computed.snapshot())
        self._c_summary_installs.add()
        self.stats.emit("os.summary_install", slot=slot.global_id,
                        asid=asid, exclude=exclude_tid)

    def _push_summaries(self, asid: int):
        """Interrupt every context running ``asid`` and install the summary."""
        interrupted = 0
        for core in self.cores:
            for slot in core.slots:
                if slot.thread is not None and slot.thread.asid == asid:
                    self._install_summary(slot, asid,
                                          exclude_tid=slot.thread.tid)
                    interrupted += 1
        if interrupted:
            yield self.cfg.tm.summary_interrupt_cycles
        return interrupted

    def saved_signatures(self, asid: int) -> Dict[int, PairSnapshot]:
        """Inspection hook for tests."""
        return dict(self._saved.get(asid, {}))

    # ------------------------------------------------------------------
    # Paging (Section 4.2)
    # ------------------------------------------------------------------

    def relocate_page(self, page_table: PageTable, vaddr: int):
        """Move a page and rewrite every signature that may reference it.

        For each active thread of the address space (and each saved
        signature of a descheduled one) the handler walks the blocks of the
        relocated page: any block whose *old* physical address may be in a
        read/write set is inserted at its *new* physical address, so the
        sets cover both and no isolation is lost.
        """
        self._c_page_moves.add()
        asid = page_table.asid
        fabric = self.cores[0].fabric
        relocated_blocks = set()

        # Charge the per-context interrupt cost *before* anything moves.
        # The old translation is still live during these yields, so every
        # in-flight access keeps hitting the old frame, where conflict
        # detection still works. Publishing the new mapping first and
        # rewriting signatures slot-by-slot afterwards opens a window in
        # which a thread can touch the new frame while another
        # transaction's signature only covers the old one — a real
        # (verified) isolation hole.
        for core in self.cores:
            for slot in core.slots:
                thread = slot.thread
                if thread is None or thread.asid != asid:
                    continue
                yield self.cfg.tm.summary_interrupt_cycles

        # From here to the summary refresh nothing yields: the copy, the
        # translation switch, the TLB shootdown and every signature
        # rewrite land in one simulation event.
        reloc = page_table.relocate(vaddr, self.memory)
        self.stats.emit("os.page_move", vpage=reloc.vpage,
                        old_frame=reloc.old_frame,
                        new_frame=reloc.new_frame)
        for core in self.cores:
            core.tlb.invalidate(asid, reloc.vpage)

        def rehome(pair: ReadWriteSignature) -> bool:
            touched = False
            for off in range(0, self.cfg.page_bytes, self.cfg.block_bytes):
                old_block = reloc.old_frame + off
                new_block = reloc.new_frame + off
                if pair.read.contains(old_block):
                    pair.read.insert(new_block)
                    relocated_blocks.add(new_block)
                    touched = True
                if pair.write.contains(old_block):
                    pair.write.insert(new_block)
                    relocated_blocks.add(new_block)
                    touched = True
            return touched

        # Active threads: rewrite in place (cost was charged above).
        for core in self.cores:
            for slot in core.slots:
                thread = slot.thread
                if thread is None or thread.asid != asid:
                    continue
                if thread.ctx.in_tx and rehome(thread.ctx.signature):
                    self._c_sig_rehomes.add()

        # Descheduled transactions: rewrite their saved snapshots (the
        # paper queues a signal; we apply it eagerly) and refresh summaries.
        saved = self._saved.get(asid, {})
        for tid, snapshot in list(saved.items()):
            scratch = self._pair_factory()
            scratch.restore(snapshot)
            if rehome(scratch):
                self._c_sig_rehomes.add()
                self._store_saved(asid, tid, scratch.snapshot())
        # Scrub both frames from every cache: copies of the old frame are
        # orphaned by the move, and the new frame may still have stale
        # lines from a previous tenancy. A leftover MODIFIED line would
        # let its core hit locally later — no coherence request, no
        # signature check — so scrubbing is a correctness requirement,
        # not hygiene. Runs *after* the signature rewrites so the fabric
        # sees the rehomed sets and leaves sticky obligations for cores
        # whose signatures cover the blocks at their new addresses.
        for off in range(0, self.cfg.page_bytes, self.cfg.block_bytes):
            fabric.scrub_block(reloc.old_frame + off)
            fabric.scrub_block(reloc.new_frame + off)

        # The fresh frame has no directory pointers, so without help the
        # protocol would grant requests to it unchecked; force signature
        # checks on every block a signature now covers at its new address.
        for block in sorted(relocated_blocks):
            fabric.note_relocated_block(block)
        reloc.release_old_frame()

        if saved:
            yield from self._push_summaries(asid)
        return reloc
