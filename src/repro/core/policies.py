"""Pluggable contention managers.

Section 2: a NACKed requester "stalls, retries its coherence operation, and
aborts on a possible deadlock cycle. More sophisticated future versions
could trap to a contention manager." This module is that trap point. Three
policies:

* **timestamp** (LogTM's policy, the default): stall; abort self when
  NACKed by an older transaction while holding the possible-cycle flag;
  as a starvation fallback, abort self after a configurable retry budget.
* **polite**: never reason about ages — stall with backoff and abort self
  once the retry budget is exhausted. Livelock-free only through
  randomized backoff; cheap and simple.
* **aggressive** (requester wins): ask every blocking transaction to abort
  (delivered as a *pending abort* the blocker honors at its next
  transactional instruction boundary), then stall until the isolation
  clears. Maximizes requester progress; can waste more work under heavy
  conflicts.

All policies are side-effect-free decisions; the core applies them
(raising :class:`AbortTransaction` or marking remote contexts).
"""

from __future__ import annotations

import abc
import enum
from typing import List

from repro.coherence.msgs import Blocker
from repro.common.config import TMConfig
from repro.common.errors import ConfigError
from repro.core.txcontext import TxContext


class Decision(enum.Enum):
    STALL = "stall"               # back off, retry the request
    ABORT_SELF = "abort_self"     # unroll own log, restart
    ABORT_OTHERS = "abort_others"  # doom the blockers, then stall


class ContentionPolicy(abc.ABC):
    """Decides what a NACKed *transactional* requester does."""

    name: str = "abstract"

    def __init__(self, cfg: TMConfig) -> None:
        self.cfg = cfg

    @abc.abstractmethod
    def decide(self, ctx: TxContext, blockers: List[Blocker],
               retries: int) -> Decision:
        """Resolution for one NACK of one access (``retries`` so far)."""

    def _over_budget(self, retries: int) -> bool:
        limit = self.cfg.max_retries_before_abort
        return bool(limit) and retries >= limit


class TimestampPolicy(ContentionPolicy):
    """LogTM's distributed cycle avoidance (the paper's policy)."""

    name = "timestamp"

    def decide(self, ctx: TxContext, blockers: List[Blocker],
               retries: int) -> Decision:
        if ctx.timestamp is not None:
            nacked_by_older = any(b.older_than(ctx.timestamp)
                                  for b in blockers)
            if nacked_by_older and ctx.possible_cycle:
                return Decision.ABORT_SELF
        if self._over_budget(retries):
            return Decision.ABORT_SELF
        return Decision.STALL


class PolitePolicy(ContentionPolicy):
    """Always yield: stall, then abort self past the retry budget."""

    name = "polite"

    def decide(self, ctx: TxContext, blockers: List[Blocker],
               retries: int) -> Decision:
        if self._over_budget(retries):
            return Decision.ABORT_SELF
        return Decision.STALL


class AggressivePolicy(ContentionPolicy):
    """Requester wins: doom the blockers and wait for them to unroll."""

    name = "aggressive"

    def decide(self, ctx: TxContext, blockers: List[Blocker],
               retries: int) -> Decision:
        if self._over_budget(retries):
            # Even an aggressive requester gives up eventually: a doomed
            # blocker stuck in a long escape action cannot unroll yet.
            return Decision.ABORT_SELF
        if retries == 0:
            return Decision.ABORT_OTHERS
        return Decision.STALL


_POLICIES = {
    TimestampPolicy.name: TimestampPolicy,
    PolitePolicy.name: PolitePolicy,
    AggressivePolicy.name: AggressivePolicy,
}


def make_policy(cfg: TMConfig) -> ContentionPolicy:
    cls = _POLICIES.get(cfg.contention_policy)
    if cls is None:
        raise ConfigError(
            f"unknown contention policy {cfg.contention_policy!r}; "
            f"choose from {sorted(_POLICIES)}")
    return cls(cfg)
