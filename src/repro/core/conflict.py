"""Conflict resolution (LogTM's stall/abort policy, adopted by LogTM-SE).

A requester whose coherence request is NACKed *stalls* and retries; it
aborts only when a possible deadlock cycle exists. LogTM detects possible
cycles with transaction timestamps: a transaction sets ``possible_cycle``
when it NACKs an *older* requester, and a requester aborts when it receives
a NACK from an *older* transaction while its own ``possible_cycle`` flag is
set. (More sophisticated versions could trap to a contention manager —
Section 2; this module is the single place such a manager would plug in.)
"""

from __future__ import annotations

import enum
import random
from typing import List

from repro.common.config import TMConfig
from repro.coherence.msgs import Blocker
from repro.core.txcontext import TxContext


class Resolution(enum.Enum):
    STALL = "stall"    # back off and retry the request
    ABORT = "abort"    # unroll the log, release isolation, restart


def resolve_nack(ctx: TxContext, blockers: List[Blocker]) -> Resolution:
    """Decide what a NACKed requester does.

    Non-transactional requesters always stall: they hold no isolation, so
    they cannot be part of a deadlock cycle and the blocking transaction
    will eventually commit or abort.
    """
    if not ctx.transactional or ctx.timestamp is None:
        return Resolution.STALL
    nacked_by_older = any(b.older_than(ctx.timestamp) for b in blockers)
    if nacked_by_older and ctx.possible_cycle:
        return Resolution.ABORT
    return Resolution.STALL


class BackoffPolicy:
    """Retry spacing for stalls and aborted-transaction restarts."""

    def __init__(self, cfg: TMConfig, rng: random.Random) -> None:
        self._cfg = cfg
        self._rng = rng

    def stall_delay(self) -> int:
        """Cycles before retrying a NACKed coherence request."""
        jitter = self._rng.randrange(self._cfg.backoff_jitter + 1)
        return self._cfg.backoff_base + jitter

    def restart_delay(self, attempt: int) -> int:
        """Cycles before restarting an aborted transaction.

        Randomized exponential backoff with a *high* cap: repeated aborts of
        the same transaction must eventually back off far enough for an
        older stalled transaction to find a conflict-free window — this is
        what makes the timestamp policy starvation-free in practice.
        """
        exp = min(max(attempt, 1), 12)
        window = self._cfg.backoff_base << exp
        return self._cfg.backoff_base + self._rng.randrange(window)
