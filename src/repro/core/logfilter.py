"""Log filter: suppressing redundant undo-log writes (Section 2).

LogTM used the in-cache W bit to avoid logging a block twice per
transaction; LogTM-SE cannot (signatures alias), so it adds a small
per-thread array of recently logged block addresses. Like a TLB it may be
fully associative with any replacement policy — this model uses fully
associative LRU. The filter holds *virtual* addresses and is purely a
performance optimization: clearing it at any time (context switch, nested
begin) is always safe, it only causes re-logging.
"""

from __future__ import annotations

from collections import OrderedDict


class LogFilter:
    """Fully associative LRU array of recently logged virtual block addrs."""

    def __init__(self, entries: int = 32) -> None:
        if entries < 0:
            raise ValueError("entries must be >= 0")
        self.entries = entries
        self._slots: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def should_log(self, vblock: int) -> bool:
        """True if the block must be logged (filter miss); updates the array.

        A zero-entry filter (ablation) always says "log it".
        """
        if self.entries == 0:
            self.misses += 1
            return True
        if vblock in self._slots:
            self._slots.move_to_end(vblock)
            self.hits += 1
            return False
        self.misses += 1
        if len(self._slots) >= self.entries:
            self._slots.popitem(last=False)
        self._slots[vblock] = None
        return True

    def clear(self) -> None:
        """Always safe (the filter is advisory): forces re-logging."""
        self._slots.clear()

    @property
    def occupancy(self) -> int:
        return len(self._slots)

    def __contains__(self, vblock: int) -> bool:
        return vblock in self._slots
