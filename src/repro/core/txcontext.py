"""Per-thread-context transactional state (Figure 1's circled additions).

Each hardware thread context carries: a read/write signature pair, a summary
signature, a log pointer + frames (the undo log), a log filter, the nesting
depth, and a register checkpoint — plus LogTM's conflict-resolution
timestamp and ``possible_cycle`` flag. This class is pure state with
zero-latency transitions; all cycle accounting lives in the CPU model.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.common.errors import TransactionError
from repro.common.stats import StatsRegistry
from repro.core.logfilter import LogFilter
from repro.core.undolog import UndoLog
from repro.coherence.msgs import Timestamp
from repro.mem.physical import PhysicalMemory
from repro.signatures.rwpair import ReadWriteSignature


class TxContext:
    """Transactional state of one SMT thread context."""

    __slots__ = ("thread_id", "asid", "signature", "summary", "log",
                 "log_filter", "stats", "timestamp", "possible_cycle",
                 "pending_abort", "pending_abort_fp", "aborted_by_os",
                 "write_buffer", "escape_depth", "needs_summary_recompute",
                 "_commits", "_aborts", "_read_hist", "_write_hist")

    def __init__(self, thread_id: int, signature: ReadWriteSignature,
                 summary: ReadWriteSignature, stats: StatsRegistry,
                 asid: int = 0, block_bytes: int = 64,
                 log_filter_entries: int = 32) -> None:
        self.thread_id = thread_id
        self.asid = asid
        self.signature = signature
        #: Union of descheduled same-process transactions' signatures,
        #: installed by the OS (Section 4.1). Checked on *every* reference.
        self.summary = summary
        self.log = UndoLog(block_bytes=block_bytes, stats=stats,
                           thread_id=thread_id)
        self.log_filter = LogFilter(entries=log_filter_entries)
        self.stats = stats
        self.timestamp: Optional[Timestamp] = None
        self.possible_cycle = False
        #: Set by an aggressive contention manager on a remote core: this
        #: transaction must abort at its next transactional instruction
        #: boundary (it cannot be unrolled mid-escape or asynchronously).
        self.pending_abort = False
        #: Whether the winning requester's conflict with us was pure
        #: signature aliasing — carried alongside ``pending_abort`` so the
        #: doomed transaction's abort attributes correctly.
        self.pending_abort_fp = False
        #: Set when the OS already unrolled this transaction (classic-LogTM
        #: preemption abort, or a lazy-mode commit-time squash); the
        #: executor observes it on resume and restarts the section.
        self.aborted_by_os = False
        #: Lazy version management (Bulk comparator): buffered stores,
        #: keyed by word-aligned virtual address. Empty in eager mode.
        self.write_buffer: dict = {}
        #: >0 while executing a non-transactional escape action [20]:
        #: accesses bypass signatures and logging.
        self.escape_depth = 0
        #: Set when this thread was descheduled mid-transaction and later
        #: rescheduled; its commit must trap to the OS to recompute the
        #: summary signature (Section 4.1).
        self.needs_summary_recompute = False
        self._commits = stats.counter("tm.commits")
        self._aborts = stats.counter("tm.aborts")
        self._read_hist = stats.histogram("tm.read_set_blocks")
        self._write_hist = stats.histogram("tm.write_set_blocks")

    # -- queries -------------------------------------------------------------

    @property
    def in_tx(self) -> bool:
        return self.log.depth > 0

    @property
    def depth(self) -> int:
        return self.log.depth

    @property
    def transactional(self) -> bool:
        """In a transaction and not inside an escape action."""
        return self.in_tx and self.escape_depth == 0

    # -- transaction lifecycle -------------------------------------------------

    def begin(self, now: int, checkpoint=None, is_open: bool = False) -> None:
        """Begin an outer or nested transaction."""
        if self.in_tx:
            # Nested begin: save the current signature into the new frame's
            # header so an open commit / partial abort can restore it; the
            # hardware signature keeps accumulating (Section 3.2).
            self.log.push_frame(checkpoint=checkpoint,
                                saved_signature=self.signature.snapshot(),
                                is_open=is_open)
        else:
            if is_open:
                raise TransactionError(
                    "outermost transaction cannot be open-nested")
            if self.timestamp is None:
                # LogTM retains the timestamp across aborts: a restarted
                # transaction keeps its (old) priority, so the oldest
                # transaction in any conflict eventually wins and the
                # system is free of starvation.
                self.timestamp = (now, self.thread_id)
            self.possible_cycle = False
            self.log.push_frame(checkpoint=checkpoint)
        # Required for correctness of nested logging; cheap at outer begin.
        self.log_filter.clear()

    def commit(self) -> bool:
        """Commit the innermost transaction; True if the outer one finished.

        Outer commit is the fast local operation: clear signatures, reset the
        log pointer. No data movement, no communication.
        """
        if not self.in_tx:
            raise TransactionError("commit outside a transaction")
        if self.escape_depth:
            raise TransactionError("commit inside an escape action")
        if self.log.depth == 1:
            self.log.pop_frame()
            self.log.reset()
            self.signature.clear()
            self.log_filter.clear()
            self.timestamp = None
            self.possible_cycle = False
            # A doom mark that raced with commit is moot: committing
            # resolved the conflict in our favor.
            self.pending_abort = False
            self.pending_abort_fp = False
            self.write_buffer.clear()
            self._commits.add()
            return True
        frame = self.log.current
        if frame.is_open:
            # Open commit: changes are globally committed; release isolation
            # on blocks only the child accessed by restoring the parent's
            # signature from the header.
            saved = frame.saved_signature
            self.log.discard_child()
            self.signature.restore(saved)
        else:
            # Closed commit: merge with the parent (records concatenate, the
            # accumulated hardware signature simply remains).
            self.log.merge_into_parent()
        self.log_filter.clear()
        return False

    def abort_innermost(self, memory: PhysicalMemory,
                        translate: Callable[[int], int]) -> int:
        """Software abort handler for one nesting level (partial abort).

        Unrolls the top log frame (restoring real values) and restores the
        parent's signature from the header — or clears the signature if this
        was the outermost level. Returns the number of undo records walked.
        """
        if not self.in_tx:
            raise TransactionError("abort outside a transaction")
        frame = self.log.current
        saved = frame.saved_signature
        undone = self.log.unroll_frame(memory, translate)
        if saved is not None:
            self.signature.restore(saved)
        else:
            self.signature.clear()
            self.log.reset()
            # The timestamp is deliberately retained (priority preserved
            # for the retry); only commit clears it.
        self.log_filter.clear()
        self.possible_cycle = False
        return undone

    def abort_all(self, memory: PhysicalMemory,
                  translate: Callable[[int], int]) -> int:
        """Unroll every nesting level (full abort). Returns records walked."""
        undone = 0
        while self.in_tx:
            undone += self.abort_innermost(memory, translate)
        # An abort may unwind out of an escape action; reset the balance.
        self.escape_depth = 0
        self.pending_abort = False
        self.pending_abort_fp = False
        # Lazy mode: discarding the buffer *is* the whole version rollback.
        self.write_buffer.clear()
        self._aborts.add()
        return undone

    def record_commit_footprint(self) -> None:
        """Capture read/write-set sizes for Table 2 (call just before commit
        of the *outer* transaction, while the exact sets are still intact)."""
        self._read_hist.record(self.signature.read.exact_size)
        self._write_hist.record(self.signature.write.exact_size)

    # -- escape actions -------------------------------------------------------

    def begin_escape(self) -> None:
        if not self.in_tx:
            raise TransactionError("escape action outside a transaction")
        self.escape_depth += 1

    def end_escape(self) -> None:
        if self.escape_depth <= 0:
            raise TransactionError("unbalanced escape end")
        self.escape_depth -= 1

    # -- conflict bookkeeping ---------------------------------------------------

    def note_nacked_older(self, requester_ts: Optional[Timestamp]) -> None:
        """We NACKed someone; set possible_cycle if they are older (LogTM)."""
        if (self.timestamp is not None and requester_ts is not None
                and requester_ts < self.timestamp):
            self.possible_cycle = True

    def __repr__(self) -> str:
        state = f"depth={self.depth}" if self.in_tx else "idle"
        return f"TxContext(t{self.thread_id}, {state})"
