"""The pinned benchmark suite behind ``repro bench``.

Four cases, each measuring a different layer of the stack:

* ``fig4_cell`` — one full Figure 4 sweep cell (Mp3d across the six
  Lock/Perfect/BS/CBS/DBS configs): the end-to-end hot path the paper's
  headline result exercises (core → L1 → signature check → directory NACK).
* ``fig3_signatures`` — the Figure 3 signature microbenchmark: pure
  INSERT/CONFLICT membership throughput, no simulator in the loop.
* ``table3_conflict`` — the Table 3 conflict workload (BerkeleyDB across
  the seven signature variants): abort/stall-heavy behaviour, so the
  undo-log and NACK paths dominate.
* ``engine_stress`` — a raw :class:`repro.sim.engine.Simulator` event-queue
  stress (a future pipeline mixing zero- and nonzero-delay yields), with no
  memory system at all: the kernel's events/second ceiling.

Every case is pinned — fixed workload, scale, and seed — so successive
measurements of the same case are comparable, and each reports a
``result_digest`` (SHA-256 over the canonical result JSON) so the
trajectory itself witnesses that optimizations never changed simulated
behaviour: entries at the same scale must carry the same digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.common.config import SignatureKind, SystemConfig, figure4_variants
from repro.common.rng import DEFAULT_SEED
from repro.harness import experiments as E
from repro.harness.sweep import run_sweep
from repro.sim.engine import Simulator
from repro.sim.future import Future

#: Scales a case can run at. ``full`` is the tracked configuration (the
#: committed trajectory); ``quick`` is a smoke-sized variant for tests/CI
#: sanity, not comparable with ``full`` entries.
SCALES = ("quick", "full")


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark: identity plus a runner keyed by scale."""

    name: str
    description: str
    config: Dict[str, Any]
    #: ``run(scale)`` executes the pinned work and returns raw totals:
    #: ``cycles``, ``aborts``, ``cells``, ``events``, ``extra``.
    run: Callable[[str], Dict[str, Any]] = field(compare=False)


def _digest(payload: Any) -> str:
    """Canonical SHA-256 of a JSON-serializable result."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# fig4_cell — one Figure 4 sweep cell, end to end
# ---------------------------------------------------------------------------

#: Pinned (threads, units) per scale for the Mp3d fig4 cell.
_FIG4_SCALE = {"quick": (8, 2), "full": (32, 10)}


def _run_fig4_cell(scale: str) -> Dict[str, Any]:
    threads, units = _FIG4_SCALE[scale]
    base = SystemConfig.default()
    variants = list(figure4_variants(base))

    def factory():
        return E.WORKLOAD_CLASSES["Mp3d"](
            num_threads=threads, units_per_thread=units, seed=DEFAULT_SEED)

    sweep = run_sweep(variants, factory, seed=DEFAULT_SEED,
                      baseline_label="Lock")
    results = list(sweep.results.values())
    return {
        "cycles": sum(r.cycles for r in results),
        "aborts": sum(r.aborts for r in results),
        "cells": len(results),
        "events": 0,
        "extra": {
            "scale": scale,
            "workload": "Mp3d",
            "threads": threads,
            "units_per_thread": units,
            "variant_cycles": {label: r.cycles
                               for label, r in sweep.results.items()},
            "result_digest": _digest(sweep.to_dict()),
        },
    }


# ---------------------------------------------------------------------------
# fig3_signatures — membership-op microbenchmark
# ---------------------------------------------------------------------------

_FIG3_SCALE = {
    "quick": dict(set_sizes=(2, 8, 32), bit_sizes=(64, 256), probes=300),
    "full": dict(set_sizes=(2, 8, 32, 128, 512),
                 bit_sizes=(64, 256, 1024, 2048), probes=2000),
}


def _run_fig3_signatures(scale: str) -> Dict[str, Any]:
    params = _FIG3_SCALE[scale]
    points = E.figure3(seed=DEFAULT_SEED, **params)
    # Each point performs `inserted` INSERTs and `probes` CONFLICT tests.
    ops = sum(p.inserted + params["probes"] for p in points)
    payload = [dict(kind=p.kind, bits=p.bits, inserted=p.inserted,
                    false_positive_rate=p.false_positive_rate)
               for p in points]
    return {
        "cycles": 0,
        "aborts": 0,
        "cells": len(points),
        "events": ops,
        "extra": {
            "scale": scale,
            "membership_ops": ops,
            "probes_per_point": params["probes"],
            "result_digest": _digest(payload),
        },
    }


# ---------------------------------------------------------------------------
# table3_conflict — abort/stall-heavy conflict workload
# ---------------------------------------------------------------------------

_TABLE3_SCALE = {"quick": (8, 2), "full": (32, 4)}


def _run_table3_conflict(scale: str) -> Dict[str, Any]:
    threads, units = _TABLE3_SCALE[scale]
    base = SystemConfig.default()
    variants = []
    for label, kind, bits, granularity in E.TABLE3_SIGNATURES:
        if kind is SignatureKind.PERFECT:
            cfg = base.with_signature(kind)
        else:
            cfg = base.with_signature(kind, bits=bits,
                                      granularity=granularity)
        variants.append((label, cfg))

    def factory():
        return E.WORKLOAD_CLASSES["BerkeleyDB"](
            num_threads=threads, units_per_thread=units, seed=DEFAULT_SEED)

    sweep = run_sweep(variants, factory, seed=DEFAULT_SEED,
                      baseline_label="Perfect")
    results = list(sweep.results.values())
    return {
        "cycles": sum(r.cycles for r in results),
        "aborts": sum(r.aborts for r in results),
        "cells": len(results),
        "events": 0,
        "extra": {
            "scale": scale,
            "workload": "BerkeleyDB",
            "threads": threads,
            "units_per_thread": units,
            "variant_aborts": {label: r.aborts
                               for label, r in sweep.results.items()},
            "result_digest": _digest(sweep.to_dict()),
        },
    }


# ---------------------------------------------------------------------------
# engine_stress — raw event-queue throughput
# ---------------------------------------------------------------------------

_STRESS_SCALE = {"quick": (4, 200), "full": (8, 2000)}

#: Per-stage latencies: a mix of zero-delay handoffs (the case the kernel's
#: fast path targets) and short timed hops (heap traffic).
_STRESS_DELAYS = (0, 1, 0, 3)


def _stress_driver(first: List[Future], rounds: int):
    for i in range(rounds):
        first[i].resolve(i)
        yield i & 1  # alternate zero-delay and 1-cycle injection


def _stress_stage(inbox: List[Future], outbox: List[Future], delay: int):
    for i in range(len(inbox)):
        value = yield inbox[i]
        if delay:
            yield delay
        outbox[i].resolve(value + 1)


def _stress_sink(final: List[Future]):
    checksum = 0
    for fut in final:
        value = yield fut
        checksum = (checksum * 31 + value) & 0xFFFFFFFF
    return checksum


def run_engine_stress(stages: int, rounds: int) -> Dict[str, Any]:
    """Run the pipeline; returns totals (also used directly by tests)."""
    sim = Simulator()
    futures = [[Future(f"s{s}.r{r}") for r in range(rounds)]
               for s in range(stages + 1)]
    procs = [sim.spawn(_stress_driver(futures[0], rounds), name="driver")]
    for s in range(stages):
        delay = _STRESS_DELAYS[s % len(_STRESS_DELAYS)]
        procs.append(sim.spawn(
            _stress_stage(futures[s], futures[s + 1], delay),
            name=f"stage{s}"))
    sink = sim.spawn(_stress_sink(futures[stages]), name="sink")
    procs.append(sink)
    sim.run_until_done(procs)
    return {
        "cycles": sim.now,
        "events": sim.events_executed,
        "checksum": sink.done.value,
    }


def _run_engine_stress(scale: str) -> Dict[str, Any]:
    stages, rounds = _STRESS_SCALE[scale]
    totals = run_engine_stress(stages, rounds)
    return {
        "cycles": totals["cycles"],
        "aborts": 0,
        "cells": 0,
        "events": totals["events"],
        "extra": {
            "scale": scale,
            "stages": stages,
            "rounds": rounds,
            "result_digest": _digest(totals),
        },
    }


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

CASES: Dict[str, BenchCase] = {
    case.name: case for case in [
        BenchCase(
            name="fig4_cell",
            description="One Figure 4 sweep cell: Mp3d across the six "
                        "Lock/Perfect/BS/CBS/DBS configs, serial.",
            config={"workload": "Mp3d", "seed": DEFAULT_SEED,
                    "scales": {s: dict(zip(("threads", "units"), v))
                               for s, v in _FIG4_SCALE.items()}},
            run=_run_fig4_cell),
        BenchCase(
            name="fig3_signatures",
            description="Figure 3 signature microbenchmark: raw "
                        "INSERT/CONFLICT membership throughput.",
            config={"seed": DEFAULT_SEED, "scales": _FIG3_SCALE},
            run=_run_fig3_signatures),
        BenchCase(
            name="table3_conflict",
            description="Table 3 conflict workload: BerkeleyDB across the "
                        "seven signature variants, serial.",
            config={"workload": "BerkeleyDB", "seed": DEFAULT_SEED,
                    "scales": {s: dict(zip(("threads", "units"), v))
                               for s, v in _TABLE3_SCALE.items()}},
            run=_run_table3_conflict),
        BenchCase(
            name="engine_stress",
            description="Raw event-queue stress: a future pipeline mixing "
                        "zero- and nonzero-delay yields, no memory system.",
            config={"scales": {s: dict(zip(("stages", "rounds"), v))
                               for s, v in _STRESS_SCALE.items()}},
            run=_run_engine_stress),
    ]
}

#: Suite order (stable for reports and CI logs).
SUITE = tuple(CASES)
