"""Benchmark harness: measure the pinned suite, track it, gate regressions.

``measure_case`` times one :class:`repro.perf.suite.BenchCase` with a plain
wall clock (the simulator itself never reads wall time — the determinism
self-lint enforces that) and derives the headline rates. ``run_suite``
loads each case's committed ``BENCH_<name>.json``, compares the fresh
measurement against the trajectory tail, and appends it.

Regression semantics (shared by ``repro bench --check`` and CI):

* ratio = fresh wall-seconds / baseline wall-seconds, baseline being the
  newest committed trajectory entry measured at the same scale;
* ratio > ``SOFT_THRESHOLD`` (1.3, i.e. >30% slower) → *soft* regression —
  CI annotates a warning but passes (shared runners are noisy);
* ratio > ``HARD_THRESHOLD`` (2.0) → *hard* regression — CI fails;
* a ``result_digest`` mismatch at equal scale is a *determinism* failure —
  the optimization changed simulated behaviour — and is always hard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.perf.schema import BenchMeasurement, BenchRecord
from repro.perf.suite import CASES, SUITE, BenchCase

#: >30% slower than the committed baseline: warn.
SOFT_THRESHOLD = 1.3
#: >2x slower: fail hard even on noisy shared runners.
HARD_THRESHOLD = 2.0

#: Exit codes of ``repro bench --check``.
EXIT_OK = 0
EXIT_SOFT = 1
EXIT_HARD = 2


@dataclass
class RegressionReport:
    """Outcome of comparing one fresh measurement with its baseline."""

    name: str
    status: str  # "ok" | "improved" | "soft" | "hard" | "no-baseline"
    ratio: Optional[float] = None
    baseline_label: Optional[str] = None
    messages: List[str] = field(default_factory=list)

    @property
    def failed_soft(self) -> bool:
        return self.status == "soft"

    @property
    def failed_hard(self) -> bool:
        return self.status == "hard"


def measure_case(case: BenchCase, scale: str = "full",
                 label: str = "measured") -> BenchMeasurement:
    """Run one pinned case once, timed."""
    start = time.perf_counter()
    totals = case.run(scale)
    wall = time.perf_counter() - start
    return BenchMeasurement.from_totals(
        label=label, wall_seconds=wall,
        cycles=totals.get("cycles", 0), aborts=totals.get("aborts", 0),
        cells=totals.get("cells", 0), events=totals.get("events", 0),
        extra=totals.get("extra"))


def _baseline_for(record: Optional[BenchRecord],
                  scale: str) -> Optional[BenchMeasurement]:
    """Newest committed entry measured at the same scale (or None)."""
    if record is None:
        return None
    for measurement in reversed(record.trajectory):
        if measurement.extra.get("scale") == scale:
            return measurement
    return None


def check_regression(name: str, fresh: BenchMeasurement,
                     record: Optional[BenchRecord],
                     scale: str = "full",
                     soft_threshold: float = SOFT_THRESHOLD,
                     hard_threshold: float = HARD_THRESHOLD
                     ) -> RegressionReport:
    """Grade a fresh measurement against the committed trajectory."""
    baseline = _baseline_for(record, scale)
    if baseline is None or baseline.wall_seconds <= 0:
        return RegressionReport(
            name=name, status="no-baseline",
            messages=[f"{name}: no committed baseline at scale "
                      f"{scale!r}; recording only"])
    ratio = fresh.wall_seconds / baseline.wall_seconds
    report = RegressionReport(name=name, ratio=ratio,
                              baseline_label=baseline.label, status="ok")
    fresh_digest = fresh.extra.get("result_digest")
    base_digest = baseline.extra.get("result_digest")
    if fresh_digest and base_digest and fresh_digest != base_digest:
        report.status = "hard"
        report.messages.append(
            f"{name}: result digest changed vs {baseline.label!r} "
            f"({base_digest[:12]} -> {fresh_digest[:12]}) — simulated "
            "behaviour is no longer byte-identical")
        return report
    if ratio > hard_threshold:
        report.status = "hard"
        report.messages.append(
            f"{name}: {ratio:.2f}x slower than {baseline.label!r} "
            f"({fresh.wall_seconds:.3f}s vs {baseline.wall_seconds:.3f}s; "
            f"hard threshold {hard_threshold:.1f}x)")
    elif ratio > soft_threshold:
        report.status = "soft"
        report.messages.append(
            f"{name}: {ratio:.2f}x slower than {baseline.label!r} "
            f"({fresh.wall_seconds:.3f}s vs {baseline.wall_seconds:.3f}s; "
            f"soft threshold {soft_threshold:.1f}x)")
    elif ratio < 1.0:
        report.status = "improved"
        report.messages.append(
            f"{name}: {1 / ratio:.2f}x faster than {baseline.label!r}")
    return report


@dataclass
class SuiteOutcome:
    """Everything one ``repro bench`` invocation produced."""

    records: Dict[str, BenchRecord] = field(default_factory=dict)
    measurements: Dict[str, BenchMeasurement] = field(default_factory=dict)
    regressions: Dict[str, RegressionReport] = field(default_factory=dict)
    written: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if any(r.failed_hard for r in self.regressions.values()):
            return EXIT_HARD
        if any(r.failed_soft for r in self.regressions.values()):
            return EXIT_SOFT
        return EXIT_OK


def run_suite(names: Optional[Sequence[str]] = None, scale: str = "full",
              label: str = "measured", out_dir: str = ".",
              write: bool = True, check: bool = False) -> SuiteOutcome:
    """Measure the named cases (default: all), track, and optionally gate.

    The committed record is always loaded from ``out_dir`` so the fresh
    measurement is compared against — and appended to — the same file that
    ``repro bench`` wrote last time.
    """
    outcome = SuiteOutcome()
    for name in names or SUITE:
        case = CASES[name]
        record = BenchRecord.load_if_exists(name, out_dir)
        fresh = measure_case(case, scale=scale, label=label)
        outcome.measurements[name] = fresh
        if check:
            outcome.regressions[name] = check_regression(
                name, fresh, record, scale=scale)
        if record is None:
            record = BenchRecord(name=name, description=case.description,
                                 config=dict(case.config))
        record.record(fresh)
        outcome.records[name] = record
        if write:
            outcome.written.append(record.save(out_dir))
    return outcome


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def load_records(out_dir: str = ".",
                 names: Optional[Sequence[str]] = None
                 ) -> Dict[str, BenchRecord]:
    """Committed records present in ``out_dir`` (suite order)."""
    records = {}
    for name in names or SUITE:
        record = BenchRecord.load_if_exists(name, out_dir)
        if record is not None:
            records[name] = record
    return records


def render_trajectory(records: Dict[str, BenchRecord]) -> str:
    """The trajectory of every record as one markdown-style table."""
    from repro.harness.report import render_table
    rows = []
    for name, record in records.items():
        for m in record.trajectory:
            rows.append((
                name, m.label, f"{m.wall_seconds:.3f}",
                f"{m.cycles_per_second:,.0f}",
                f"{m.aborts_per_second:,.0f}",
                f"{m.cells_per_minute:,.1f}",
                f"{m.events_per_second:,.0f}",
                m.extra.get("scale", "?")))
    return render_table(
        ["Benchmark", "Label", "Wall s", "Cycles/s", "Aborts/s",
         "Cells/min", "Events/s", "Scale"],
        rows, title="Benchmark trajectory (BENCH_*.json)")


def render_markdown_trajectory(records: Dict[str, BenchRecord]) -> str:
    """GitHub-flavoured markdown table (used by the README section)."""
    lines = ["| Benchmark | Label | Wall s | Cycles/s | Aborts/s | "
             "Cells/min | Events/s |",
             "|---|---|---|---|---|---|---|"]
    for name, record in records.items():
        for m in record.trajectory:
            lines.append(
                f"| {name} | {m.label} | {m.wall_seconds:.3f} | "
                f"{m.cycles_per_second:,.0f} | {m.aborts_per_second:,.0f} | "
                f"{m.cells_per_minute:,.1f} | {m.events_per_second:,.0f} |")
    return "\n".join(lines)
