"""Performance layer: the pinned benchmark suite and its tracked trajectory.

``repro bench`` (and CI's bench job) run the suite in
:mod:`repro.perf.suite`, append measurements to the ``BENCH_*.json``
records at the repository root via :mod:`repro.perf.harness`, and gate
pull requests on the regression thresholds. ``docs/performance.md`` is the
narrative companion: the simulator's performance model, what each field
means, and how to read a regression.
"""

from repro.perf.harness import (EXIT_HARD, EXIT_OK, EXIT_SOFT,
                                HARD_THRESHOLD, SOFT_THRESHOLD,
                                RegressionReport, SuiteOutcome,
                                check_regression, load_records,
                                measure_case, render_markdown_trajectory,
                                render_trajectory, run_suite)
from repro.perf.schema import (SCHEMA_VERSION, BenchMeasurement, BenchRecord,
                               environment_fingerprint)
from repro.perf.suite import CASES, SUITE, BenchCase, run_engine_stress

__all__ = [
    "BenchCase", "BenchMeasurement", "BenchRecord", "CASES",
    "EXIT_HARD", "EXIT_OK", "EXIT_SOFT", "HARD_THRESHOLD",
    "RegressionReport", "SCHEMA_VERSION", "SOFT_THRESHOLD", "SUITE",
    "SuiteOutcome", "check_regression", "environment_fingerprint",
    "load_records", "measure_case", "render_markdown_trajectory",
    "render_trajectory", "run_engine_stress", "run_suite",
]
