"""On-disk schema of the tracked benchmark trajectory (``BENCH_*.json``).

Each benchmark case in the pinned suite (:mod:`repro.perf.suite`) owns one
``BENCH_<name>.json`` file at the repository root. The file is a
:class:`BenchRecord`: the case's identity plus a *trajectory* — an ordered
list of :class:`BenchMeasurement` entries, one per recorded measurement,
oldest first. The first two entries of each trajectory are the
pre-/post-optimization pair of the PR that introduced the harness; later
PRs append their own entries, so the repository carries its own performance
history.

Wall-clock numbers are machine-dependent; every measurement therefore
embeds an environment fingerprint so a regression can be told apart from a
machine change (see ``docs/performance.md``).
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: File-name pattern for tracked records.
BENCH_FILE_PATTERN = "BENCH_{name}.json"


def environment_fingerprint() -> Dict[str, Any]:
    """Where a measurement was taken: enough to explain absolute numbers."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executable": os.path.basename(sys.executable or "python"),
    }


def utc_now_iso() -> str:
    """Current UTC time as an ISO-8601 string (second resolution)."""
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")


@dataclass
class BenchMeasurement:
    """One point on a benchmark's trajectory."""

    label: str
    recorded_utc: str
    wall_seconds: float
    #: Raw totals over the whole case (0 where not applicable).
    cycles: int = 0
    aborts: int = 0
    cells: int = 0
    events: int = 0
    #: Headline rates derived from the totals above.
    cycles_per_second: float = 0.0
    aborts_per_second: float = 0.0
    cells_per_minute: float = 0.0
    events_per_second: float = 0.0
    environment: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def from_totals(label: str, wall_seconds: float, cycles: int = 0,
                    aborts: int = 0, cells: int = 0, events: int = 0,
                    extra: Optional[Dict[str, Any]] = None,
                    recorded_utc: Optional[str] = None) -> "BenchMeasurement":
        """Build a measurement, deriving every rate from the totals."""
        wall = max(wall_seconds, 1e-9)
        return BenchMeasurement(
            label=label,
            recorded_utc=recorded_utc or utc_now_iso(),
            wall_seconds=wall_seconds,
            cycles=cycles, aborts=aborts, cells=cells, events=events,
            cycles_per_second=cycles / wall,
            aborts_per_second=aborts / wall,
            cells_per_minute=cells * 60.0 / wall,
            events_per_second=events / wall,
            environment=environment_fingerprint(),
            extra=dict(extra or {}))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "recorded_utc": self.recorded_utc,
            "wall_seconds": self.wall_seconds,
            "cycles": self.cycles,
            "aborts": self.aborts,
            "cells": self.cells,
            "events": self.events,
            "cycles_per_second": self.cycles_per_second,
            "aborts_per_second": self.aborts_per_second,
            "cells_per_minute": self.cells_per_minute,
            "events_per_second": self.events_per_second,
            "environment": dict(self.environment),
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "BenchMeasurement":
        return BenchMeasurement(
            label=str(data["label"]),
            recorded_utc=str(data["recorded_utc"]),
            wall_seconds=float(data["wall_seconds"]),
            cycles=int(data.get("cycles", 0)),
            aborts=int(data.get("aborts", 0)),
            cells=int(data.get("cells", 0)),
            events=int(data.get("events", 0)),
            cycles_per_second=float(data.get("cycles_per_second", 0.0)),
            aborts_per_second=float(data.get("aborts_per_second", 0.0)),
            cells_per_minute=float(data.get("cells_per_minute", 0.0)),
            events_per_second=float(data.get("events_per_second", 0.0)),
            environment=dict(data.get("environment", {})),
            extra=dict(data.get("extra", {})))


@dataclass
class BenchRecord:
    """One tracked benchmark: identity + measurement trajectory."""

    name: str
    description: str = ""
    config: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    trajectory: List[BenchMeasurement] = field(default_factory=list)

    @property
    def latest(self) -> Optional[BenchMeasurement]:
        return self.trajectory[-1] if self.trajectory else None

    def record(self, measurement: BenchMeasurement) -> None:
        """Append a measurement; re-measuring under the same label at the
        tail replaces it (so iterating on one label is idempotent)."""
        if self.trajectory and self.trajectory[-1].label == measurement.label:
            self.trajectory[-1] = measurement
        else:
            self.trajectory.append(measurement)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "config": dict(self.config),
            "schema_version": self.schema_version,
            "trajectory": [m.to_dict() for m in self.trajectory],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "BenchRecord":
        return BenchRecord(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            config=dict(data.get("config", {})),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
            trajectory=[BenchMeasurement.from_dict(m)
                        for m in data.get("trajectory", [])])

    # -- file I/O ------------------------------------------------------------

    @staticmethod
    def path_for(name: str, out_dir: str = ".") -> str:
        return os.path.join(out_dir, BENCH_FILE_PATTERN.format(name=name))

    def save(self, out_dir: str = ".") -> str:
        path = self.path_for(self.name, out_dir)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")
        return path

    @staticmethod
    def load(path: str) -> "BenchRecord":
        with open(path, "r", encoding="utf-8") as fh:
            return BenchRecord.from_dict(json.load(fh))

    @staticmethod
    def load_if_exists(name: str, out_dir: str = ".") -> Optional["BenchRecord"]:
        path = BenchRecord.path_for(name, out_dir)
        if os.path.exists(path):
            return BenchRecord.load(path)
        return None
