"""LogTM-SE: signature-based hardware transactional memory, reproduced.

A cycle-level Python simulation of the HPCA-13 (2007) paper *"LogTM-SE:
Decoupling Hardware Transactional Memory from Caches"* (Yen et al.),
including every substrate the evaluation depends on: a discrete-event
simulation kernel, a 16-core CMP with SMT, private L1s and a banked shared
L2, a MESI directory protocol with LogTM sticky states (plus a
broadcast-snooping alternative), the Figure 3 signature designs, the
per-thread undo log and log filter, summary-signature virtualization, a
lock-based baseline, and the five evaluated workloads.

Quick start::

    from repro import SystemConfig, SignatureKind, run_workload
    from repro.workloads import BerkeleyDB

    cfg = SystemConfig.default().with_signature(SignatureKind.BIT_SELECT,
                                                bits=2048)
    result = run_workload(cfg, BerkeleyDB(num_threads=32))
    print(result.cycles, result.commits, result.aborts)
"""

from repro.common.config import (
    CacheConfig,
    CoherenceStyle,
    LockImpl,
    SignatureConfig,
    SignatureKind,
    SyncMode,
    SystemConfig,
    TMConfig,
    figure4_variants,
)
from repro.common.errors import (
    AbortTransaction,
    ConfigError,
    ReproError,
    SimulationError,
    TransactionError,
    WorkloadError,
)
from repro.common.stats import ConfidenceInterval, StatsRegistry
from repro.harness.parallel import ResultCache, SweepExecutionError
from repro.harness.runner import RunResult, run_perturbed, run_workload
from repro.harness.sweep import SweepResult, run_sweep
from repro.harness.system import System
from repro.signatures.factory import make_rw_pair, make_signature

__version__ = "1.0.0"

__all__ = [
    "AbortTransaction",
    "CacheConfig",
    "CoherenceStyle",
    "ConfidenceInterval",
    "LockImpl",
    "ConfigError",
    "ReproError",
    "ResultCache",
    "RunResult",
    "SignatureConfig",
    "SignatureKind",
    "SimulationError",
    "StatsRegistry",
    "SweepExecutionError",
    "SweepResult",
    "SyncMode",
    "System",
    "SystemConfig",
    "TMConfig",
    "TransactionError",
    "WorkloadError",
    "figure4_variants",
    "make_rw_pair",
    "make_signature",
    "run_perturbed",
    "run_sweep",
    "run_workload",
    "__version__",
]
