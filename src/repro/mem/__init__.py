"""Memory substrate: address math, functional memory, paging, TLB."""

from repro.mem.address import AddressMap
from repro.mem.physical import WORD_BYTES, PhysicalMemory
from repro.mem.tlb import Tlb
from repro.mem.vm import FrameAllocator, PageTable, Relocation

__all__ = ["AddressMap", "FrameAllocator", "PageTable", "PhysicalMemory",
           "Relocation", "Tlb", "WORD_BYTES"]
