"""Functional physical memory.

The simulator separates *timing* (caches, directory, interconnect) from
*function* (values). All data values live here, in a sparse word store, so
that LogTM-SE's eager version management is real: stores update this memory
in place, the undo log captures genuine old values, and an abort observably
restores them. Tests verify atomicity and isolation against this store.

Words are 8 bytes; addresses used by workloads are word-aligned by
convention, but any integer address maps to its containing word.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

WORD_BYTES = 8

#: Word-alignment mask (``addr & _WORD_MASK`` == ``word_of(addr)``), kept at
#: module level so the hot load/store paths skip a staticmethod call.
_WORD_MASK = ~(WORD_BYTES - 1)


class PhysicalMemory:
    """Sparse word-addressed value store (missing words read as zero)."""

    __slots__ = ("_words", "capacity_bytes")

    def __init__(self, capacity_bytes: int = 4 * 1024 * 1024 * 1024) -> None:
        self._words: Dict[int, int] = {}
        self.capacity_bytes = capacity_bytes

    @staticmethod
    def word_of(addr: int) -> int:
        return addr & ~(WORD_BYTES - 1)

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.capacity_bytes:
            raise IndexError(
                f"address {addr:#x} outside physical memory "
                f"({self.capacity_bytes:#x} bytes)")

    def load(self, addr: int) -> int:
        if not 0 <= addr < self.capacity_bytes:
            self._check(addr)
        return self._words.get(addr & _WORD_MASK, 0)

    def store(self, addr: int, value: int) -> int:
        """Write a word; returns the old value (used by undo logging)."""
        if not 0 <= addr < self.capacity_bytes:
            self._check(addr)
        word = addr & _WORD_MASK
        old = self._words.get(word, 0)
        if value == 0:
            self._words.pop(word, None)
        else:
            self._words[word] = value
        return old

    def copy_range(self, src: int, dst: int, nbytes: int) -> None:
        """Copy a byte range (used by the paging model when moving a page)."""
        self._check(src)
        self._check(src + nbytes - 1)
        self._check(dst)
        self._check(dst + nbytes - 1)
        if nbytes % WORD_BYTES:
            raise ValueError("copy length must be word-aligned")
        moved: Dict[int, int] = {}
        for off in range(0, nbytes, WORD_BYTES):
            moved[dst + off] = self._words.get(src + off, 0)
        for addr, value in moved.items():
            if value == 0:
                self._words.pop(addr, None)
            else:
                self._words[addr] = value

    def nonzero_words(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(word_address, value)`` pairs with nonzero values."""
        return iter(sorted(self._words.items()))

    def __len__(self) -> int:
        return len(self._words)
