"""Per-core TLB model.

Adds address-translation *timing* to the access path: a TLB miss charges a
page-walk latency before the memory reference proceeds, and page
relocation triggers an OS shootdown that invalidates the stale entry on
every core (the interrupt cost the paging path charges per context).

Functional translations always come from the page table — the TLB is a
latency/accounting model, deliberately not a second source of truth, so
the paging machinery cannot be broken by a stale cached frame (see
docs/simulation.md on the functional/timing separation).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

#: TLB tag: (address-space id, virtual page base).
TlbTag = Tuple[int, int]


class Tlb:
    """Fully associative, LRU, per-core translation cache."""

    __slots__ = ("entries", "_map", "hits", "misses", "shootdowns")

    def __init__(self, entries: int = 64) -> None:
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._map: "OrderedDict[TlbTag, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.shootdowns = 0

    def lookup(self, asid: int, vpage: int) -> Optional[int]:
        """Cached frame for a virtual page, or None on a miss."""
        tag = (asid, vpage)
        frame = self._map.get(tag)
        if frame is None:
            self.misses += 1
            return None
        self._map.move_to_end(tag)
        self.hits += 1
        return frame

    def fill(self, asid: int, vpage: int, frame: int) -> None:
        tag = (asid, vpage)
        if tag in self._map:
            self._map.move_to_end(tag)
            self._map[tag] = frame
            return
        if len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[tag] = frame

    def invalidate(self, asid: int, vpage: int) -> bool:
        """Shootdown of one translation; True if it was present."""
        present = self._map.pop((asid, vpage), None) is not None
        if present:
            self.shootdowns += 1
        return present

    def flush_asid(self, asid: int) -> int:
        """Drop every translation of one address space (process exit)."""
        stale = [tag for tag in self._map if tag[0] == asid]
        for tag in stale:
            del self._map[tag]
        return len(stale)

    @property
    def occupancy(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        return (f"Tlb(entries={self.entries}, occ={self.occupancy}, "
                f"hits={self.hits}, misses={self.misses})")
