"""Virtual memory: page tables and page relocation.

Workload programs use *virtual* addresses; each process has a
:class:`PageTable` that lazily allocates physical frames. The OS paging model
(:mod:`repro.osmodel.paging`) relocates pages — remapping a virtual page to a
new physical frame and copying the data — which is the event LogTM-SE's
signature-rewrite mechanism (Section 4.2) must survive.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.mem.address import AddressMap
from repro.mem.physical import PhysicalMemory


class FrameAllocator:
    """Bump allocator of physical page frames with a free list."""

    def __init__(self, amap: AddressMap, capacity_bytes: int,
                 base: int = 0) -> None:
        if base % amap.page_bytes:
            raise ConfigError("frame allocator base must be page-aligned")
        self._amap = amap
        self._next = base
        self._limit = capacity_bytes
        self._free: List[int] = []

    def allocate(self) -> int:
        """Return the physical base address of a fresh frame."""
        if self._free:
            return self._free.pop()
        frame = self._next
        if frame + self._amap.page_bytes > self._limit:
            raise MemoryError("physical memory exhausted")
        self._next += self._amap.page_bytes
        return frame

    def release(self, frame: int) -> None:
        if frame % self._amap.page_bytes:
            raise ValueError("frame must be page-aligned")
        self._free.append(frame)


class PageTable:
    """Per-process virtual→physical map with demand allocation."""

    __slots__ = ("_amap", "_allocator", "asid", "_map", "relocations",
                 "_page_mask")

    def __init__(self, amap: AddressMap, allocator: FrameAllocator,
                 asid: int = 0) -> None:
        self._amap = amap
        self._allocator = allocator
        #: Address-space identifier, carried on coherence requests so that
        #: signature checks never create cross-process false conflicts
        #: (Section 2, "interference between memory references").
        self.asid = asid
        self._map: Dict[int, int] = {}
        self.relocations = 0
        self._page_mask = amap.page_bytes - 1

    def translate(self, vaddr: int) -> int:
        """Physical address for ``vaddr``, allocating the frame on first use."""
        mask = self._page_mask
        vpage = vaddr & ~mask
        frame = self._map.get(vpage)
        if frame is None:
            frame = self._allocator.allocate()
            self._map[vpage] = frame
        return frame + (vaddr & mask)

    def mapping(self, vpage: int) -> Optional[int]:
        """Current frame of a virtual page, or None if never touched."""
        return self._map.get(self._amap.page_of(vpage))

    def relocate(self, vaddr: int, memory: PhysicalMemory) -> "Relocation":
        """Move the page containing ``vaddr`` to a fresh frame.

        Copies the data and returns the (old, new) physical frames so the TM
        layer can rewrite signatures. The old frame is returned to the
        allocator only by the caller (after signatures are updated) via
        :meth:`Relocation.release_old_frame`.
        """
        vpage = self._amap.page_of(vaddr)
        old_frame = self._map.get(vpage)
        if old_frame is None:
            raise KeyError(f"virtual page {vpage:#x} is not mapped")
        new_frame = self._allocator.allocate()
        memory.copy_range(old_frame, new_frame, self._amap.page_bytes)
        self._map[vpage] = new_frame
        self.relocations += 1
        return Relocation(self, vpage, old_frame, new_frame)

    def mapped_pages(self) -> Dict[int, int]:
        return dict(self._map)


class Relocation:
    """Record of one page move (old/new frames) pending signature fix-up."""

    __slots__ = ("_table", "vpage", "old_frame", "new_frame", "_released")

    def __init__(self, table: PageTable, vpage: int,
                 old_frame: int, new_frame: int) -> None:
        self._table = table
        self.vpage = vpage
        self.old_frame = old_frame
        self.new_frame = new_frame
        self._released = False

    def release_old_frame(self) -> None:
        """Hand the old frame back once no signature references remain."""
        if not self._released:
            self._table._allocator.release(self.old_frame)
            self._released = True
