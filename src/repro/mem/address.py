"""Address arithmetic.

Physical addresses are plain ``int``; this module centralizes block,
macroblock, page, and L2-bank derivations so every component agrees on the
geometry. Signatures operate on *block-aligned physical addresses* exactly as
in the paper (Section 2), and CBS signatures on *macroblock* addresses
(Section 5, "coarse-bit-select").
"""

from __future__ import annotations

from repro.common.errors import ConfigError


def _check_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{what} must be a positive power of two: {value}")


class AddressMap:
    """Derives block / page / bank coordinates from raw addresses."""

    __slots__ = ("block_bytes", "page_bytes", "num_banks",
                 "_block_shift", "_page_shift")

    def __init__(self, block_bytes: int = 64, page_bytes: int = 8192,
                 num_banks: int = 16) -> None:
        _check_power_of_two(block_bytes, "block size")
        _check_power_of_two(page_bytes, "page size")
        if num_banks < 1:
            raise ConfigError("need at least one bank")
        if page_bytes % block_bytes:
            raise ConfigError("page size must be a multiple of block size")
        self.block_bytes = block_bytes
        self.page_bytes = page_bytes
        self.num_banks = num_banks
        self._block_shift = block_bytes.bit_length() - 1
        self._page_shift = page_bytes.bit_length() - 1

    def block_of(self, addr: int) -> int:
        """Block-aligned address containing ``addr``."""
        return addr & ~(self.block_bytes - 1)

    def block_index(self, addr: int) -> int:
        """Block number (address / block size)."""
        return addr >> self._block_shift

    def page_of(self, addr: int) -> int:
        return addr & ~(self.page_bytes - 1)

    def page_offset(self, addr: int) -> int:
        return addr & (self.page_bytes - 1)

    def bank_of(self, addr: int) -> int:
        """Home L2 bank: interleaved by block address (Section 5)."""
        return self.block_index(addr) % self.num_banks

    def blocks_in_page(self, page_addr: int):
        """Iterate the block-aligned addresses inside one page."""
        base = self.page_of(page_addr)
        for off in range(0, self.page_bytes, self.block_bytes):
            yield base + off

    def same_block(self, a: int, b: int) -> bool:
        return self.block_of(a) == self.block_of(b)

    @property
    def blocks_per_page(self) -> int:
        return self.page_bytes // self.block_bytes
