"""Message latency model over the grid.

A :class:`Network` converts (source, destination) pairs into cycle costs and
counts traffic by message class, which the harness can report. There is no
queueing model — see DESIGN.md ("blocking directory" keeps at most one
transaction per directory entry in flight, which bounds contention; the
paper's numbers are dominated by protocol hops and memory latency).
"""

from __future__ import annotations

from repro.common.stats import StatsRegistry
from repro.interconnect.topology import GridTopology


class Network:
    """Charges per-hop link latency for coherence traffic."""

    def __init__(self, topology: GridTopology, link_latency: int,
                 stats: StatsRegistry) -> None:
        self.topology = topology
        self.link_latency = link_latency
        self._stats = stats
        self._messages = stats.counter("network.messages")
        self._hops = stats.counter("network.hops")
        #: Per-class counters, cached so the hot path skips the name
        #: formatting and registry lookup.
        self._class_counters = {}

    def _charge(self, hops: int, msg_class: str) -> int:
        self._messages.value += 1
        self._hops.value += hops
        counter = self._class_counters.get(msg_class)
        if counter is None:
            counter = self._class_counters[msg_class] = (
                self._stats.counter(f"network.msg.{msg_class}"))
        counter.value += 1
        # Minimum one link traversal even for same-tile transfers (the
        # message still crosses the router/bank interface).
        return (hops if hops > 1 else 1) * self.link_latency

    def core_to_bank(self, core_id: int, bank_id: int,
                     msg_class: str = "request") -> int:
        hops = self.topology.core_to_bank_hops(core_id, bank_id)
        # net.msg events are guarded: this is the hottest emission site in
        # the machine, and building the kwargs dict must cost nothing when
        # no bus/recorder is attached.
        if self._stats.recorder is not None:
            self._stats.emit("net.msg", route="core_to_bank", src=core_id,
                             dst=bank_id, cls=msg_class, hops=hops)
        return self._charge(hops, msg_class)

    def bank_to_core(self, bank_id: int, core_id: int,
                     msg_class: str = "response") -> int:
        hops = self.topology.core_to_bank_hops(core_id, bank_id)
        if self._stats.recorder is not None:
            self._stats.emit("net.msg", route="bank_to_core", src=bank_id,
                             dst=core_id, cls=msg_class, hops=hops)
        return self._charge(hops, msg_class)

    def core_to_core(self, src: int, dst: int,
                     msg_class: str = "forward") -> int:
        hops = self.topology.core_to_core_hops(src, dst)
        if self._stats.recorder is not None:
            self._stats.emit("net.msg", route="core_to_core", src=src,
                             dst=dst, cls=msg_class, hops=hops)
        return self._charge(hops, msg_class)

    def broadcast_from_bank(self, bank_id: int,
                            msg_class: str = "broadcast") -> int:
        """Cost of reaching every core from a bank (sequential worst hop).

        Used when the L2 lost directory info (Section 5) or under the
        snooping protocol (Section 7): the latency is bounded by the farthest
        destination; per-message counters record the fan-out.
        """
        worst = 0
        for core_id in range(self.topology.num_cores):
            hops = self.topology.core_to_bank_hops(core_id, bank_id)
            self._messages.add()
            self._hops.add(hops)
            worst = max(worst, hops)
        self._stats.counter(f"network.msg.{msg_class}").add()
        if self._stats.recorder is not None:
            self._stats.emit("net.msg", route="broadcast", src=bank_id,
                             dst=-1, cls=msg_class, hops=worst)
        return max(worst, 1) * self.link_latency
