"""Grid topology and node placement.

The baseline CMP connects cores and L2 banks "in a 4x3 grid topology using
64-byte links and adaptive routing" (Section 5). We model the grid's
*distance* effect: each message is charged hops x link latency, where hops is
the Manhattan distance between the source and destination tiles. Adaptive
routing's congestion behavior is out of scope (documented in DESIGN.md); the
paper's results are driven by protocol hops, not router microarchitecture.

Cores and L2 banks are interleaved across tiles so a core and its same-index
bank do not collapse to distance zero for every access.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import ConfigError


class GridTopology:
    """Places cores and banks on a rows x cols grid; computes hop counts."""

    def __init__(self, rows: int, cols: int, num_cores: int,
                 num_banks: int) -> None:
        if rows < 1 or cols < 1:
            raise ConfigError("grid dimensions must be positive")
        tiles = rows * cols
        if num_cores > tiles:
            raise ConfigError(
                f"{num_cores} cores do not fit on a {rows}x{cols} grid")
        self.rows = rows
        self.cols = cols
        self.num_cores = num_cores
        self.num_banks = num_banks
        self._core_pos: Dict[int, Tuple[int, int]] = {
            c: self._tile_coord(c) for c in range(num_cores)}
        # Banks share tiles with cores (each tile hosts a core + an L2 bank
        # slice, as in Figure 2); extra banks wrap around.
        self._bank_pos: Dict[int, Tuple[int, int]] = {
            b: self._tile_coord(b % tiles) for b in range(num_banks)}
        # Hop counts are pure functions of the fixed placement; precompute
        # them so the per-message cost is two list indexings.
        self._cb_hops = [
            [self.manhattan(self._core_pos[c], self._bank_pos[b])
             for b in range(num_banks)]
            for c in range(num_cores)]
        self._cc_hops = [
            [self.manhattan(self._core_pos[a], self._core_pos[b])
             for b in range(num_cores)]
            for a in range(num_cores)]

    def _tile_coord(self, index: int) -> Tuple[int, int]:
        return divmod(index % (self.rows * self.cols), self.cols)

    def core_coord(self, core_id: int) -> Tuple[int, int]:
        return self._core_pos[core_id]

    def bank_coord(self, bank_id: int) -> Tuple[int, int]:
        return self._bank_pos[bank_id]

    @staticmethod
    def manhattan(a: Tuple[int, int], b: Tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def core_to_bank_hops(self, core_id: int, bank_id: int) -> int:
        return self._cb_hops[core_id][bank_id]

    def core_to_core_hops(self, a: int, b: int) -> int:
        return self._cc_hops[a][b]

    @property
    def diameter(self) -> int:
        """Worst-case hop count across the grid."""
        return (self.rows - 1) + (self.cols - 1)
