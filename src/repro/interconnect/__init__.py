"""On-chip interconnect: grid topology and message latency model."""

from repro.interconnect.network import Network
from repro.interconnect.topology import GridTopology

__all__ = ["GridTopology", "Network"]
