"""Static lint for workload definitions (``repro lint``).

Workloads are ordinary Python (:mod:`repro.workloads`), and the three
recurring ways to write a *wrong* one are all statically visible:

``VR001`` **shared write outside an atomic section.** A
    :class:`~repro.workloads.base.Section` without a ``lock`` runs
    unprotected in both TM and LOCKS modes; ``Op.store``/``Op.incr`` in
    such a section races unless the data is thread-private. The paper's
    conversion rule (Section 6.2) is "critical sections become
    transactions" — a bare write means a section the conversion missed.

``VR002`` **unseeded randomness.** Calling the ``random`` module's
    global functions (or ``random.Random()`` with no seed) makes runs
    irreproducible and sweep results uncacheable. Workloads receive a
    seeded ``rng`` and a ``seed`` attribute; derive from those.

``VR003`` **non-yielding infinite loop in a generator.** Workload
    programs are generators driven by the cooperative simulator; a
    ``while True:`` without a ``yield`` (or ``break``/``return``/
    ``raise``) inside never returns control and hangs the run.

Suppression: append ``# lint: disable=VR001`` (comma-separate several
ids, or omit the ``=`` part to disable all rules) to the offending line
or the line directly above it.

The linter is pure stdlib (:mod:`ast` + :mod:`tokenize`): it runs in CI
and pre-commit without importing the workload under analysis.
"""

from __future__ import annotations

import ast
import os
import tokenize
from dataclasses import dataclass
from io import StringIO
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: rule id -> one-line description (the ``repro lint --rules`` catalog).
RULES: Dict[str, str] = {
    "VR000": "file does not parse",
    "VR001": "shared-memory write outside an atomic (locked) section",
    "VR002": "unseeded randomness (module-level random.* or bare Random())",
    "VR003": "generator contains an infinite loop that never yields",
}

#: Op constructors that produce memory writes.
_WRITE_OPS = frozenset({"store", "incr", "swap"})


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    path: str
    line: int
    rule: str
    message: str
    fixit: str

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message, "fixit": self.fixit}

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule} {self.message}"
                f" [fix: {self.fixit}]")


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """line number -> suppressed rule ids (None = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith("lint:"):
                continue
            directive = text[len("lint:"):].strip()
            if not directive.startswith("disable"):
                continue
            rest = directive[len("disable"):].strip()
            rules: Optional[Set[str]]
            if rest.startswith("="):
                rules = {r.strip().upper() for r in rest[1:].split(",")
                         if r.strip()}
            else:
                rules = None  # bare "disable": everything
            line = tok.start[0]
            for target in (line, line + 1):
                existing = out.get(target, set())
                if rules is None or existing is None:
                    out[target] = None
                else:
                    out[target] = existing | rules
    except tokenize.TokenError:
        pass
    return out


def _is_suppressed(finding: LintFinding,
                   supp: Dict[int, Optional[Set[str]]]) -> bool:
    rules = supp.get(finding.line, set())
    return rules is None or finding.rule in rules


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _is_op_write_call(node: ast.AST) -> bool:
    """``Op.store(...)`` / ``Op.incr(...)`` / ``Op.swap(...)``."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_OPS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "Op")


def _subtree_has_write(node: ast.AST) -> bool:
    return any(_is_op_write_call(n) for n in ast.walk(node))


class _Scope:
    """Name resolution for one module: classes, functions, methods."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.methods: Dict[str, Dict[str, ast.FunctionDef]] = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                table: Dict[str, ast.FunctionDef] = {}
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        table[item.name] = item
                self.methods[node.name] = table

    def resolve(self, call: ast.Call,
                enclosing_class: Optional[str]) -> Optional[ast.FunctionDef]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self" and enclosing_class):
            return self.methods.get(enclosing_class, {}).get(func.attr)
        return None


def _ops_expr_has_write(expr: ast.AST, func: Optional[ast.FunctionDef],
                        enclosing_class: Optional[str], scope: _Scope,
                        seen: Optional[Set[str]] = None) -> bool:
    """Conservatively decide whether an ``ops=`` expression writes memory.

    Handles: literal lists/tuples, local names built up in the enclosing
    function (flow-insensitive: any assignment or ``.append`` to the name
    counts), and helper calls (``self._helper(...)`` or module-level
    functions), followed transitively.
    """
    if seen is None:
        seen = set()
    if isinstance(expr, (ast.List, ast.Tuple)):
        return _subtree_has_write(expr)
    if isinstance(expr, ast.Call):
        target = scope.resolve(expr, enclosing_class)
        if target is not None:
            key = f"{enclosing_class}.{target.name}"
            if key in seen:
                return False
            seen.add(key)
            if _subtree_has_write(target):
                return True
            # One level of indirection: the helper may itself delegate.
            for inner in ast.walk(target):
                if isinstance(inner, ast.Call) and inner is not expr:
                    resolved = scope.resolve(inner, enclosing_class)
                    if resolved is not None and \
                            f"{enclosing_class}.{resolved.name}" not in seen:
                        if _ops_expr_has_write(inner, target,
                                               enclosing_class, scope,
                                               seen):
                            return True
            return False
        return _subtree_has_write(expr)
    if isinstance(expr, ast.Name) and func is not None:
        name = expr.id
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if any(isinstance(t, ast.Name) and t.id == name
                       for t in node.targets):
                    if _ops_expr_has_write(node.value, func,
                                           enclosing_class, scope, seen):
                        return True
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and \
                        node.target.id == name:
                    if _subtree_has_write(node.value):
                        return True
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "extend", "insert")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name):
                if _subtree_has_write(node):
                    return True
        return False
    return _subtree_has_write(expr)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def _check_vr001(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    scope = _Scope(tree)

    def visit(node: ast.AST, func: Optional[ast.FunctionDef],
              cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            new_func, new_cls = func, cls
            if isinstance(child, ast.ClassDef):
                new_cls = child.name
            elif isinstance(child, ast.FunctionDef):
                new_func = child
            if isinstance(child, ast.Call) and \
                    isinstance(child.func, ast.Name) and \
                    child.func.id == "Section":
                _check_section(child, func, cls)
            visit(child, new_func, new_cls)

    def _check_section(call: ast.Call, func: Optional[ast.FunctionDef],
                       cls: Optional[str]) -> None:
        lock = None
        for kw in call.keywords:
            if kw.arg == "lock":
                lock = kw.value
        if len(call.args) >= 2:
            lock = call.args[1]
        if lock is not None and not (
                isinstance(lock, ast.Constant) and lock.value is None):
            return  # atomic section: writes are protected
        ops = None
        for kw in call.keywords:
            if kw.arg == "ops":
                ops = kw.value
        if ops is None and call.args:
            ops = call.args[0]
        if ops is None:
            return
        if _ops_expr_has_write(ops, func, cls, scope):
            findings.append(LintFinding(
                path=path, line=call.lineno, rule="VR001",
                message=("Section without a lock contains memory writes "
                         "(Op.store/Op.incr); it races in both TM and "
                         "LOCKS modes unless the data is thread-private"),
                fixit=("pass lock=<lock address> to make the section "
                       "atomic, or suppress with '# lint: disable=VR001' "
                       "if every written address is thread-private")))

    visit(tree, None, None)
    return findings


def _check_vr002(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"):
            continue
        attr = node.func.attr
        if attr == "Random":
            if node.args or node.keywords:
                continue  # seeded constructor: fine
            message = ("random.Random() without a seed is "
                       "irreproducible")
            fixit = ("seed it from the workload: "
                     "random.Random(self.seed ^ <salt>)")
        else:
            message = (f"random.{attr}() uses the shared module-level "
                       "RNG, making runs irreproducible and "
                       "sweep caches unsound")
            fixit = ("use the seeded rng passed to program(), or a "
                     "random.Random(self.seed ^ <salt>) instance")
        findings.append(LintFinding(path=path, line=node.lineno,
                                    rule="VR002", message=message,
                                    fixit=fixit))
    return findings


def _loop_escapes(loop: ast.While) -> bool:
    """Whether the loop body can yield or leave the loop."""
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Nested definitions don't execute in the loop body.
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Return,
                             ast.Raise, ast.Break)):
            return True
    return False


def _check_vr003(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in ast.walk(func)
            if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            or n is func)
        if not is_generator:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            truthy = (isinstance(test, ast.Constant) and bool(test.value))
            if not truthy:
                continue
            if _loop_escapes(node):
                continue
            findings.append(LintFinding(
                path=path, line=node.lineno, rule="VR003",
                message=("'while True:' inside a generator never yields, "
                         "breaks, returns, or raises — the cooperative "
                         "simulator would hang here"),
                fixit=("yield inside the loop, add a break/return, or "
                       "bound the loop")))
    return findings


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path=path, line=exc.lineno or 1, rule="VR000",
                            message=f"syntax error: {exc.msg}",
                            fixit="fix the syntax error")]
    findings: List[LintFinding] = []
    findings.extend(_check_vr001(tree, path))
    findings.extend(_check_vr002(tree, path))
    findings.extend(_check_vr003(tree, path))
    supp = _suppressions(source)
    kept = [f for f in findings if not _is_suppressed(f, supp)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def lint_file(path: str) -> List[LintFinding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def lint_paths(paths: Sequence[str]) -> List[LintFinding]:
    """Lint files and (recursively) directories of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    findings: List[LintFinding] = []
    for filename in files:
        findings.extend(lint_file(filename))
    return findings


def render_findings(findings: Iterable[LintFinding]) -> str:
    lines = [str(f) for f in findings]
    if not lines:
        return "lint: no findings"
    lines.append(f"lint: {len(lines)} finding(s)")
    return "\n".join(lines)
