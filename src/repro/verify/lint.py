"""Static lint for workload definitions (``repro lint``).

Workloads are ordinary Python (:mod:`repro.workloads`), and the three
recurring ways to write a *wrong* one are all statically visible:

``VR001`` **shared write outside an atomic section.** A
    :class:`~repro.workloads.base.Section` without a ``lock`` runs
    unprotected in both TM and LOCKS modes; ``Op.store``/``Op.incr`` in
    such a section races unless the data is thread-private. The paper's
    conversion rule (Section 6.2) is "critical sections become
    transactions" — a bare write means a section the conversion missed.

``VR002`` **unseeded randomness.** Calling the ``random`` module's
    global functions (or ``random.Random()`` with no seed) makes runs
    irreproducible and sweep results uncacheable. Workloads receive a
    seeded ``rng`` and a ``seed`` attribute; derive from those.

``VR003`` **non-yielding infinite loop in a generator.** Workload
    programs are generators driven by the cooperative simulator; a
    ``while True:`` without a ``yield`` (or ``break``/``return``/
    ``raise``) inside never returns control and hangs the run.

``VR004`` **wall-clock read inside a thread program.** The simulator
    has its own clock; ``time.time()`` / ``datetime.now()`` inside a
    generator couples behaviour to host speed, so two runs of the same
    seed diverge and cached sweep results stop being comparable.

``VR005`` **iteration over an unordered set.** ``for x in some_set:``
    visits elements in hash order, which varies with ``PYTHONHASHSEED``
    and insertion history; if anything downstream depends on visit
    order the run is irreproducible. Also covers ``dict`` iteration
    when the dict's keys were inserted while looping over a set (the
    insertion order — hence ``.keys()`` order — is already unordered).

Suppression: append ``# lint: disable=VR001`` (comma-separate several
ids, or omit the ``=`` part to disable all rules) to the offending line
or the line directly above it.

:mod:`repro.verify.selflint` reuses the VR004/VR005 machinery to hold
the simulator's *own* sources to the same determinism bar
(``repro lint --self``).

The linter is pure stdlib (:mod:`ast` + :mod:`tokenize`): it runs in CI
and pre-commit without importing the workload under analysis.
"""

from __future__ import annotations

import ast
import os
import tokenize
from dataclasses import dataclass
from io import StringIO
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: rule id -> one-line description (the ``repro lint --rules`` catalog).
RULES: Dict[str, str] = {
    "VR000": "file does not parse",
    "VR001": "shared-memory write outside an atomic (locked) section",
    "VR002": "unseeded randomness (module-level random.* or bare Random())",
    "VR003": "generator contains an infinite loop that never yields",
    "VR004": "wall-clock read (time.time()/datetime.now()) in a "
             "thread program",
    "VR005": "iteration over an unordered set (or a dict keyed from one)",
}

#: Op constructors that produce memory writes.
_WRITE_OPS = frozenset({"store", "incr", "swap"})


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    path: str
    line: int
    rule: str
    message: str
    fixit: str

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message, "fixit": self.fixit}

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule} {self.message}"
                f" [fix: {self.fixit}]")


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """line number -> suppressed rule ids (None = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith("lint:"):
                continue
            directive = text[len("lint:"):].strip()
            if not directive.startswith("disable"):
                continue
            rest = directive[len("disable"):].strip()
            rules: Optional[Set[str]]
            if rest.startswith("="):
                rules = {r.strip().upper() for r in rest[1:].split(",")
                         if r.strip()}
            else:
                rules = None  # bare "disable": everything
            line = tok.start[0]
            for target in (line, line + 1):
                existing = out.get(target, set())
                if rules is None or existing is None:
                    out[target] = None
                else:
                    out[target] = existing | rules
    except tokenize.TokenError:
        pass
    return out


def _is_suppressed(finding: LintFinding,
                   supp: Dict[int, Optional[Set[str]]]) -> bool:
    rules = supp.get(finding.line, set())
    return rules is None or finding.rule in rules


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _is_op_write_call(node: ast.AST) -> bool:
    """``Op.store(...)`` / ``Op.incr(...)`` / ``Op.swap(...)``."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_OPS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "Op")


def _subtree_has_write(node: ast.AST) -> bool:
    return any(_is_op_write_call(n) for n in ast.walk(node))


class _Scope:
    """Name resolution for one module: classes, functions, methods."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.methods: Dict[str, Dict[str, ast.FunctionDef]] = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                table: Dict[str, ast.FunctionDef] = {}
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        table[item.name] = item
                self.methods[node.name] = table

    def resolve(self, call: ast.Call,
                enclosing_class: Optional[str]) -> Optional[ast.FunctionDef]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self" and enclosing_class):
            return self.methods.get(enclosing_class, {}).get(func.attr)
        return None


def _ops_expr_has_write(expr: ast.AST, func: Optional[ast.FunctionDef],
                        enclosing_class: Optional[str], scope: _Scope,
                        seen: Optional[Set[str]] = None) -> bool:
    """Conservatively decide whether an ``ops=`` expression writes memory.

    Handles: literal lists/tuples, local names built up in the enclosing
    function (flow-insensitive: any assignment or ``.append`` to the name
    counts), and helper calls (``self._helper(...)`` or module-level
    functions), followed transitively.
    """
    if seen is None:
        seen = set()
    if isinstance(expr, (ast.List, ast.Tuple)):
        return _subtree_has_write(expr)
    if isinstance(expr, ast.Call):
        target = scope.resolve(expr, enclosing_class)
        if target is not None:
            key = f"{enclosing_class}.{target.name}"
            if key in seen:
                return False
            seen.add(key)
            if _subtree_has_write(target):
                return True
            # One level of indirection: the helper may itself delegate.
            for inner in ast.walk(target):
                if isinstance(inner, ast.Call) and inner is not expr:
                    resolved = scope.resolve(inner, enclosing_class)
                    if resolved is not None and \
                            f"{enclosing_class}.{resolved.name}" not in seen:
                        if _ops_expr_has_write(inner, target,
                                               enclosing_class, scope,
                                               seen):
                            return True
            return False
        return _subtree_has_write(expr)
    if isinstance(expr, ast.Name) and func is not None:
        name = expr.id
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if any(isinstance(t, ast.Name) and t.id == name
                       for t in node.targets):
                    if _ops_expr_has_write(node.value, func,
                                           enclosing_class, scope, seen):
                        return True
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and \
                        node.target.id == name:
                    if _subtree_has_write(node.value):
                        return True
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "extend", "insert")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name):
                if _subtree_has_write(node):
                    return True
        return False
    return _subtree_has_write(expr)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def _check_vr001(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    scope = _Scope(tree)

    def visit(node: ast.AST, func: Optional[ast.FunctionDef],
              cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            new_func, new_cls = func, cls
            if isinstance(child, ast.ClassDef):
                new_cls = child.name
            elif isinstance(child, ast.FunctionDef):
                new_func = child
            if isinstance(child, ast.Call) and \
                    isinstance(child.func, ast.Name) and \
                    child.func.id == "Section":
                _check_section(child, func, cls)
            visit(child, new_func, new_cls)

    def _check_section(call: ast.Call, func: Optional[ast.FunctionDef],
                       cls: Optional[str]) -> None:
        lock = None
        for kw in call.keywords:
            if kw.arg == "lock":
                lock = kw.value
        if len(call.args) >= 2:
            lock = call.args[1]
        if lock is not None and not (
                isinstance(lock, ast.Constant) and lock.value is None):
            return  # atomic section: writes are protected
        ops = None
        for kw in call.keywords:
            if kw.arg == "ops":
                ops = kw.value
        if ops is None and call.args:
            ops = call.args[0]
        if ops is None:
            return
        if _ops_expr_has_write(ops, func, cls, scope):
            findings.append(LintFinding(
                path=path, line=call.lineno, rule="VR001",
                message=("Section without a lock contains memory writes "
                         "(Op.store/Op.incr); it races in both TM and "
                         "LOCKS modes unless the data is thread-private"),
                fixit=("pass lock=<lock address> to make the section "
                       "atomic, or suppress with '# lint: disable=VR001' "
                       "if every written address is thread-private")))

    visit(tree, None, None)
    return findings


def _check_vr002(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"):
            continue
        attr = node.func.attr
        if attr == "Random":
            if node.args or node.keywords:
                continue  # seeded constructor: fine
            message = ("random.Random() without a seed is "
                       "irreproducible")
            fixit = ("seed it from the workload: "
                     "random.Random(self.seed ^ <salt>)")
        else:
            message = (f"random.{attr}() uses the shared module-level "
                       "RNG, making runs irreproducible and "
                       "sweep caches unsound")
            fixit = ("use the seeded rng passed to program(), or a "
                     "random.Random(self.seed ^ <salt>) instance")
        findings.append(LintFinding(path=path, line=node.lineno,
                                    rule="VR002", message=message,
                                    fixit=fixit))
    return findings


def _loop_escapes(loop: ast.While) -> bool:
    """Whether the loop body can yield or leave the loop."""
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Nested definitions don't execute in the loop body.
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Return,
                             ast.Raise, ast.Break)):
            return True
    return False


def _is_generator(func: ast.AST) -> bool:
    """Whether a function definition is a generator (has a yield)."""
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom))
        for n in _walk_scope(func))


def _walk_scope(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_vr003(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_generator(func):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            truthy = (isinstance(test, ast.Constant) and bool(test.value))
            if not truthy:
                continue
            if _loop_escapes(node):
                continue
            findings.append(LintFinding(
                path=path, line=node.lineno, rule="VR003",
                message=("'while True:' inside a generator never yields, "
                         "breaks, returns, or raises — the cooperative "
                         "simulator would hang here"),
                fixit=("yield inside the loop, add a break/return, or "
                       "bound the loop")))
    return findings


#: ``time`` module attributes that read the host clock.
_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
})

#: ``datetime``/``date`` class methods that read the host clock.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _wallclock_call(node: ast.AST) -> Optional[str]:
    """Label of a host-clock read (``time.time()``-style), or None."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)):
        return None
    func = node.func
    base = func.value
    if isinstance(base, ast.Name):
        if base.id == "time" and func.attr in _TIME_ATTRS:
            return f"time.{func.attr}()"
        if base.id in ("datetime", "date") and \
                func.attr in _DATETIME_ATTRS:
            return f"{base.id}.{func.attr}()"
    if (isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "datetime"
            and base.attr in ("datetime", "date")
            and func.attr in _DATETIME_ATTRS):
        return f"datetime.{base.attr}.{func.attr}()"
    return None


def _check_wallclock(tree: ast.Module, path: str,
                     rule: str) -> List[LintFinding]:
    """Wall-clock reads inside generator functions (thread programs /
    simulation processes). Shared by VR004 and the self-lint's SR002."""
    findings: List[LintFinding] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_generator(func):
            continue
        for node in _walk_scope(func):
            label = _wallclock_call(node)
            if label is None:
                continue
            findings.append(LintFinding(
                path=path, line=node.lineno, rule=rule,
                message=(f"{label} reads the host clock inside a "
                         "simulated process; behaviour then depends on "
                         "host speed and two runs of the same seed "
                         "diverge"),
                fixit=("use simulated time (the scheduler's now / the "
                       "stats clock), or hoist the measurement out of "
                       "the generator")))
    return findings


def _check_vr004(tree: ast.Module, path: str) -> List[LintFinding]:
    return _check_wallclock(tree, path, "VR004")


def _order_normalizing(expr: ast.AST,
                       wrappers: Optional[Dict[str, ast.FunctionDef]],
                       depth: int = 0) -> bool:
    """Whether an expression's value has a deterministic order.

    ``sorted(...)``, ``list(sorted(...))``/``tuple(sorted(...))``, and
    calls to in-module wrapper functions whose every return value is
    itself order-normalizing. Used to *skip* set-iteration findings:
    once a value has passed through ``sorted``, iterating it is
    reproducible no matter what collection it started as.
    """
    if depth > 3 or not isinstance(expr, ast.Call):
        return False
    call_func = expr.func
    if not isinstance(call_func, ast.Name):
        return False
    if call_func.id == "sorted":
        return True
    if call_func.id in ("list", "tuple") and len(expr.args) == 1:
        return _order_normalizing(expr.args[0], wrappers, depth + 1)
    target = (wrappers or {}).get(call_func.id)
    if target is not None:
        returns = [node for node in _walk_scope(target)
                   if isinstance(node, ast.Return)
                   and node.value is not None]
        return bool(returns) and all(
            _order_normalizing(node.value, wrappers, depth + 1)
            for node in returns)
    return False


def _set_like(expr: ast.AST, func: Optional[ast.AST], depth: int = 0,
              wrappers: Optional[Dict[str, ast.FunctionDef]] = None
              ) -> bool:
    """Conservatively decide whether an expression evaluates to a set.

    Handles literals (``{a, b}``), constructors (``set(...)`` /
    ``frozenset(...)``), set comprehensions, binary set algebra on
    set-like operands, and local names assigned one of the above in the
    enclosing function (flow-insensitive). A name any of whose
    assignments is order-normalizing (``sorted(...)`` or a wrapper over
    it) is *not* set-like: the normalized value shadows the set.
    """
    if depth > 4:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        call_func = expr.func
        if isinstance(call_func, ast.Name) and \
                call_func.id in ("set", "frozenset"):
            return True
        if isinstance(call_func, ast.Attribute) and call_func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            return _set_like(call_func.value, func, depth + 1, wrappers)
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_set_like(expr.left, func, depth + 1, wrappers)
                or _set_like(expr.right, func, depth + 1, wrappers))
    if isinstance(expr, ast.Name) and func is not None:
        values: List[ast.AST] = []
        for node in _walk_scope(func):
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == expr.id
                    for t in node.targets):
                values.append(node.value)
            elif (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == expr.id
                    and node.value is not None):
                values.append(node.value)
        if any(_order_normalizing(value, wrappers) for value in values):
            return False
        return any(_set_like(value, func, depth + 1, wrappers)
                   for value in values)
    return False


def _set_tainted_dicts(
        func: ast.AST,
        wrappers: Optional[Dict[str, ast.FunctionDef]] = None
        ) -> Set[str]:
    """Local dict names whose keys were inserted while looping a set.

    ``for k in some_set: d[k] = ...`` makes ``d``'s insertion order —
    and therefore ``d``/``d.keys()`` iteration order — hash-dependent.
    """
    tainted: Set[str] = set()
    for node in _walk_scope(func):
        if not isinstance(node, ast.For) or \
                not _set_like(node.iter, func, wrappers=wrappers):
            continue
        for inner in ast.walk(node):
            target: Optional[ast.AST] = None
            if isinstance(inner, ast.Assign) and inner.targets:
                target = inner.targets[0]
            elif isinstance(inner, ast.AugAssign):
                target = inner.target
            if isinstance(target, ast.Subscript) and \
                    isinstance(target.value, ast.Name):
                tainted.add(target.value.id)
            elif (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "setdefault"
                    and isinstance(inner.func.value, ast.Name)):
                tainted.add(inner.func.value.id)
    return tainted


def _check_set_iteration(tree: ast.Module, path: str, rule: str,
                         generators_only: bool) -> List[LintFinding]:
    """``for`` statements iterating a set (or a set-keyed dict).

    Shared by VR005 (any function in a workload module) and the
    self-lint's SR003 (generator functions — simulation processes —
    only). Comprehensions are deliberately exempt: they almost always
    feed order-insensitive reductions (``max``, ``sum``, ``any``).
    """
    findings: List[LintFinding] = []
    wrappers = {node.name: node for node in tree.body
                if isinstance(node, ast.FunctionDef)}
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if generators_only and not _is_generator(func):
            continue
        tainted = _set_tainted_dicts(func, wrappers)
        for node in _walk_scope(func):
            if not isinstance(node, ast.For):
                continue
            it = node.iter
            bad: Optional[str] = None
            if _set_like(it, func, wrappers=wrappers):
                bad = "a set"
            elif (isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Attribute)
                    and it.func.attr in ("keys", "values", "items")
                    and isinstance(it.func.value, ast.Name)
                    and it.func.value.id in tainted):
                bad = (f"dict '{it.func.value.id}' keyed from a set "
                       f"(via .{it.func.attr}())")
            elif isinstance(it, ast.Name) and it.id in tainted:
                bad = f"dict '{it.id}' keyed from a set"
            if bad is None:
                continue
            findings.append(LintFinding(
                path=path, line=node.lineno, rule=rule,
                message=(f"iterating {bad}: visit order is hash- and "
                         "insertion-dependent, so anything downstream "
                         "that depends on it varies across runs"),
                fixit="iterate sorted(...) instead"))
    return findings


def _check_vr005(tree: ast.Module, path: str) -> List[LintFinding]:
    return _check_set_iteration(tree, path, "VR005",
                                generators_only=False)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source; returns unsuppressed findings.

    Delegates to the plugin registry
    (:mod:`repro.analysis.registry`), which replays the original
    composition — parse, VR checks in registration order, suppression
    comments, sort — so output is identical to the pre-registry linter.
    """
    # Imported here, not at module top: the registry imports this
    # module's check functions to register them.
    from repro.analysis.registry import run_module_scope
    return run_module_scope("workload", source, path)


def lint_file(path: str) -> List[LintFinding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def lint_paths(paths: Sequence[str]) -> List[LintFinding]:
    """Lint files and (recursively) directories of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    findings: List[LintFinding] = []
    for filename in files:
        findings.extend(lint_file(filename))
    return findings


def render_findings(findings: Iterable[LintFinding]) -> str:
    lines = [str(f) for f in findings]
    if not lines:
        return "lint: no findings"
    lines.append(f"lint: {len(lines)} finding(s)")
    return "\n".join(lines)
