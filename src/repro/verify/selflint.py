"""Determinism self-lint for the simulator's own sources.

``repro lint`` holds *workloads* to a reproducibility bar; this module
(``repro lint --self``) holds ``src/repro`` itself to the same bar. The
simulator's claim — same seed, same config, same result, byte for byte
— is what makes the sweep cache sound, golden traces diffable, and the
model checker's replays meaningful. Three source patterns silently
break it:

``SR001`` **unseeded randomness.** Any call into the ``random``
    module's global functions, or a bare ``random.Random()``, anywhere
    in simulator source. Everything stochastic must derive from an
    explicit seed.

``SR002`` **wall-clock read inside a simulation process.** Generator
    functions are (potentially) scheduler-driven processes; reading
    ``time.time()`` / ``datetime.now()`` inside one couples simulated
    behaviour to host speed. Timing *around* a simulation — e.g. the
    sweep harness measuring wall time in plain functions — is fine and
    not flagged.

``SR003`` **unordered-collection iteration inside a simulation
    process.** A ``for`` statement over a ``set`` (or a dict keyed
    while looping a set) inside a generator visits elements in hash
    order; if the loop body has side effects (messages, NACK order,
    stat increments), runs diverge across hash seeds. Comprehensions
    are exempt — they overwhelmingly feed order-insensitive reductions.

Suppression uses the same comment syntax as the workload lint
(``# lint: disable=SR003``). The checks reuse the workload linter's
AST machinery (:mod:`repro.verify.lint`), so the two lints cannot
drift apart.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Sequence

from repro.verify.lint import (LintFinding, _check_set_iteration,
                               _check_wallclock)

#: rule id -> one-line description (the ``--self`` catalog).
SELF_RULES: Dict[str, str] = {
    "SR000": "file does not parse",
    "SR001": "unseeded randomness in simulator source",
    "SR002": "wall-clock read inside a simulation process (generator)",
    "SR003": "unordered-set iteration inside a simulation process",
}


def _check_sr001(tree: ast.Module, path: str) -> List[LintFinding]:
    """Module-level ``random.*`` calls and bare ``random.Random()``.

    Same surface as the workload lint's VR002, but phrased for
    simulator code (derive from the run seed, not a workload rng).
    """
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"):
            continue
        attr = node.func.attr
        if attr == "Random":
            if node.args or node.keywords:
                continue  # seeded constructor: fine
            message = "random.Random() without a seed is irreproducible"
        else:
            message = (f"random.{attr}() uses the shared module-level "
                       "RNG; simulator behaviour must derive from the "
                       "run seed")
        findings.append(LintFinding(
            path=path, line=node.lineno, rule="SR001", message=message,
            fixit="construct random.Random(<run seed> ^ <salt>) and "
                  "thread it through"))
    return findings


def _check_sr002(tree: ast.Module, path: str) -> List[LintFinding]:
    return _check_wallclock(tree, path, "SR002")


def _check_sr003(tree: ast.Module, path: str) -> List[LintFinding]:
    return _check_set_iteration(tree, path, "SR003",
                                generators_only=True)


def selflint_source(source: str,
                    path: str = "<string>") -> List[LintFinding]:
    """Self-lint one module's source; returns unsuppressed findings.

    Delegates to the plugin registry
    (:mod:`repro.analysis.registry`), which replays the original
    composition — parse, SR checks in order, suppression comments,
    sort — so output is identical to the pre-registry linter.
    """
    # Imported here, not at module top: the registry imports this
    # module's check functions to register them.
    from repro.analysis.registry import run_module_scope
    return run_module_scope("self", source, path)


def selflint_file(path: str) -> List[LintFinding]:
    with open(path, "r", encoding="utf-8") as handle:
        return selflint_source(handle.read(), path)


def selflint_paths(
        paths: Optional[Sequence[str]] = None) -> List[LintFinding]:
    """Self-lint files/directories; default target is ``repro`` itself."""
    if not paths:
        import repro
        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    findings: List[LintFinding] = []
    for filename in files:
        findings.extend(selflint_file(filename))
    return findings


__all__ = ["SELF_RULES", "selflint_file", "selflint_paths",
           "selflint_source"]
