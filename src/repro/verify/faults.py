"""Fault injection for exercising the verification suite.

A checker that has never caught a seeded bug is scenery. This module
provides the seeded bugs, at two levels:

* :class:`LossySignature` wraps a real signature and makes its *filter*
  lie by omission for selected blocks — the one failure mode the paper's
  signatures must never have (false negatives; Section 2). The exact
  shadow set stays truthful, so the
  :class:`~repro.verify.checkers.VerificationSuite`'s signature oracle
  can convict the filter with ground truth, and the downstream isolation
  and serializability checkers can demonstrate the actual data
  corruption the dropped NACK causes.

* :func:`apply_protocol_mutation` re-introduces, behind a flag, each of
  the three real protocol bugs that the dynamic-analysis suite exposed
  and that were then fixed (``sticky-discharge``, ``eager-e-grant``,
  ``no-scrub``). The mutants are verbatim resurrections of the
  pre-fix logic, installed by monkeypatching a live fabric instance.
  They exist to validate the model checker (:mod:`repro.mc`): a checker
  that convicts all three known-real defects with counterexamples has
  demonstrated it can see the class of bug it was built for.

Test-only: nothing in the simulator proper imports this module.
"""

from __future__ import annotations

from types import MethodType
from typing import Dict, FrozenSet, Iterable

from repro.cache.block import MESI
from repro.coherence.directory import DirectoryEntry, DirectoryFabric
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.multichip import ChipEntry, MultiChipFabric
from repro.coherence.snooping import SnoopingFabric
from repro.common.errors import ConfigError
from repro.signatures.base import Signature, Snapshot
from repro.signatures.rwpair import ReadWriteSignature


class LossySignature:
    """A signature whose filter drops configured blocks (false negatives).

    Duck-types the :class:`repro.signatures.base.Signature` surface. The
    membership *test* is sabotaged — ``contains`` answers False for any
    block in ``drop_blocks`` even when it was inserted — while the exact
    shadow set keeps the truth. Inserts, snapshots and clears all pass
    through to the wrapped signature.

    Not for use in scenarios that union signatures into summaries: the
    real :meth:`Signature.union_update` type-checks its operand.
    """

    def __init__(self, inner: Signature,
                 drop_blocks: Iterable[int] = ()) -> None:
        self.inner = inner
        self.drop_blocks = set(drop_blocks)
        #: How many conflict tests the wrapper falsified.
        self.dropped = 0

    # -- hardware interface (sabotaged) ------------------------------------

    def insert(self, block_addr: int) -> None:
        self.inner.insert(block_addr)

    def contains(self, block_addr: int) -> bool:
        if block_addr in self.drop_blocks and \
                self.inner.contains_exact(block_addr):
            self.dropped += 1
            return False
        return self.inner.contains(block_addr)

    def clear(self) -> None:
        self.inner.clear()

    @property
    def is_empty(self) -> bool:
        return self.inner.is_empty

    # -- software accessibility --------------------------------------------

    def snapshot(self) -> Snapshot:
        return self.inner.snapshot()

    def restore(self, snap: Snapshot) -> None:
        self.inner.restore(snap)

    def union_update(self, other) -> None:
        self.inner.union_update(other)

    def union_snapshot(self, snap: Snapshot) -> None:
        self.inner.union_snapshot(snap)

    def spawn_empty(self) -> Signature:
        return self.inner.spawn_empty()

    def insert_many(self, block_addrs: Iterable[int]) -> None:
        self.inner.insert_many(block_addrs)

    # -- observability (stays truthful) ------------------------------------

    def contains_exact(self, block_addr: int) -> bool:
        return self.inner.contains_exact(block_addr)

    def exact_set(self) -> FrozenSet[int]:
        return self.inner.exact_set()

    @property
    def exact_size(self) -> int:
        return self.inner.exact_size

    def false_positive(self, block_addr: int) -> bool:
        return self.contains(block_addr) and \
            not self.contains_exact(block_addr)

    def __repr__(self) -> str:
        return (f"LossySignature({self.inner!r}, "
                f"drop={sorted(self.drop_blocks)})")


def make_lossy(pair: ReadWriteSignature,
               drop_blocks: Iterable[int]) -> ReadWriteSignature:
    """Wrap both halves of a thread's signature pair with lossy filters.

    Returns a new :class:`ReadWriteSignature` sharing the original
    filters underneath; install it with ``thread.ctx.signature = ...``
    *before* the thread begins its transaction.
    """
    drops = set(drop_blocks)
    # LossySignature duck-types Signature rather than subclassing it (the
    # sabotage must not inherit a working ``contains``).
    return ReadWriteSignature(
        LossySignature(pair.read, drops),       # type: ignore[arg-type]
        LossySignature(pair.write, drops))      # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Protocol mutations: the three pre-fix bugs, resurrected behind flags
# ---------------------------------------------------------------------------

#: Mutation name -> one-line description (shown by ``repro mc --help``
#: consumers and used to validate ``--mutate`` arguments).
MUTATIONS: Dict[str, str] = {
    "sticky-discharge": (
        "a successful request discharges every sticky obligation on its "
        "block, including cores whose signatures still cover it"),
    "eager-e-grant": (
        "GETS grants EXCLUSIVE whenever no cache holds the block, "
        "ignoring standing sticky obligations / uncached signatures"),
    "no-scrub": (
        "freeing or reusing a physical frame does not invalidate cached "
        "copies of its previous tenant"),
}


def _mutant_dir_sticky_discharge(
        self: DirectoryFabric, requester_core: int, block_addr: int,
        is_write: bool, entry: DirectoryEntry) -> MESI:
    """Pre-fix ``DirectoryFabric._apply_grant``: on any successful
    request, *all* sticky state is cleaned — including cores whose read
    sets still cover the block and which therefore must keep being
    checked by later writes."""
    if entry.sticky:
        self._c_sticky_clean.add(len(entry.sticky))
        self.stats.emit("coh.sticky_clean", block=block_addr,
                        cores=tuple(sorted(entry.sticky)))
        entry.sticky.clear()
    entry.must_check_all = False
    if is_write:
        entry.sharers.clear()
        entry.owner = requester_core
        return MESI.MODIFIED
    if entry.owner is not None and entry.owner != requester_core:
        entry.sharers.add(entry.owner)
        entry.owner = None
    if not entry.sharers and not entry.sticky:
        entry.owner = requester_core
        return MESI.EXCLUSIVE
    entry.sharers.add(requester_core)
    return MESI.SHARED


def _mutant_dir_eager_e_grant(
        self: DirectoryFabric, requester_core: int, block_addr: int,
        is_write: bool, entry: DirectoryEntry) -> MESI:
    """Pre-fix ``DirectoryFabric._apply_grant``: the E-grant test checks
    only cache residency (``not entry.sharers``), so a requester can be
    granted EXCLUSIVE while a sticky core's read set still covers the
    block — its later silent E->M upgrade writes with no signature
    check. The sticky-discharge rule itself is the fixed, selective one."""
    if entry.sticky:
        cleaned = {cid for cid in entry.sticky
                   if cid == requester_core
                   or not self._ports[cid].holds_transactional(block_addr)}
        if cleaned:
            self._c_sticky_clean.add(len(cleaned))
            self.stats.emit("coh.sticky_clean", block=block_addr,
                            cores=tuple(sorted(cleaned)))
            entry.sticky -= cleaned
    entry.must_check_all = False
    if is_write:
        entry.sharers.clear()
        entry.owner = requester_core
        return MESI.MODIFIED
    if entry.owner is not None and entry.owner != requester_core:
        entry.sharers.add(entry.owner)
        entry.owner = None
    if not entry.sharers:
        entry.owner = requester_core
        return MESI.EXCLUSIVE
    entry.sharers.add(requester_core)
    return MESI.SHARED


def _mutant_snoop_eager_e_grant(
        self: SnoopingFabric, requester_core: int,
        block_addr: int, is_write: bool) -> MESI:
    """Pre-fix ``SnoopingFabric._apply_grant``: E is granted on residency
    exclusivity alone, without scanning other cores' signatures for
    uncached (e.g. post-scrub) coverage."""
    owner = self._owner.get(block_addr)
    sharers = self._sharers.setdefault(block_addr, set())
    if is_write:
        sharers.clear()
        self._owner[block_addr] = requester_core
        return MESI.MODIFIED
    if owner is not None and owner != requester_core:
        sharers.add(owner)
        self._owner[block_addr] = None
    if not sharers:
        self._owner[block_addr] = requester_core
        return MESI.EXCLUSIVE
    sharers.add(requester_core)
    return MESI.SHARED


def _mutant_chip_sticky_discharge(
        self: MultiChipFabric, chip: int, requester_core: int,
        block_addr: int, is_write: bool, entry: ChipEntry) -> MESI:
    """Pre-fix ``MultiChipFabric._apply_chip_grant``: full sticky clean
    on any grant (intra-chip analog of the directory bug)."""
    if entry.sticky:
        self._c_sticky_clean.add(len(entry.sticky))
        entry.sticky.clear()
    if is_write:
        entry.sharers.clear()
        entry.owner = requester_core
        return MESI.MODIFIED
    if entry.owner is not None and entry.owner != requester_core:
        entry.sharers.add(entry.owner)
        entry.owner = None
    if not entry.sharers and not entry.sticky and entry.rights == "M":
        entry.owner = requester_core
        return MESI.EXCLUSIVE
    entry.sharers.add(requester_core)
    return MESI.SHARED


def _mutant_chip_eager_e_grant(
        self: MultiChipFabric, chip: int, requester_core: int,
        block_addr: int, is_write: bool, entry: ChipEntry) -> MESI:
    """Pre-fix ``MultiChipFabric._apply_chip_grant``: the E test ignores
    sticky obligations (selective discharge itself is the fixed rule)."""
    if entry.sticky:
        cleaned = {cid for cid in entry.sticky
                   if cid == requester_core
                   or not self._ports[cid].holds_transactional(block_addr)}
        if cleaned:
            self._c_sticky_clean.add(len(cleaned))
            entry.sticky -= cleaned
    if is_write:
        entry.sharers.clear()
        entry.owner = requester_core
        return MESI.MODIFIED
    if entry.owner is not None and entry.owner != requester_core:
        entry.sharers.add(entry.owner)
        entry.owner = None
    if not entry.sharers and entry.rights == "M":
        entry.owner = requester_core
        return MESI.EXCLUSIVE
    entry.sharers.add(requester_core)
    return MESI.SHARED


def _mutant_no_scrub(self: CoherenceFabric, block_addr: int) -> None:
    """Pre-fix behavior: the fabric had no scrub hook at all, so frame
    free/reuse left stale copies in every cache and stale pointers in
    every directory."""


def apply_protocol_mutation(fabric: CoherenceFabric, name: str) -> None:
    """Install one named pre-fix bug on a live fabric instance.

    Raises :class:`ConfigError` for an unknown mutation or one that has
    no meaning on this fabric (sticky states do not exist under
    snooping). Instance-level monkeypatching keeps the sabotage scoped
    to the one fabric under test.
    """
    if name not in MUTATIONS:
        raise ConfigError(
            f"unknown mutation {name!r}; choose from "
            f"{sorted(MUTATIONS)}")
    if name == "no-scrub":
        setattr(fabric, "scrub_block", MethodType(_mutant_no_scrub, fabric))
        return
    if name == "sticky-discharge":
        if isinstance(fabric, DirectoryFabric):
            setattr(fabric, "_apply_grant",
                    MethodType(_mutant_dir_sticky_discharge, fabric))
        elif isinstance(fabric, MultiChipFabric):
            setattr(fabric, "_apply_chip_grant",
                    MethodType(_mutant_chip_sticky_discharge, fabric))
        else:
            raise ConfigError(
                "sticky-discharge does not apply to snooping fabrics "
                "(they have no sticky states)")
        return
    # eager-e-grant
    if isinstance(fabric, DirectoryFabric):
        setattr(fabric, "_apply_grant",
                MethodType(_mutant_dir_eager_e_grant, fabric))
    elif isinstance(fabric, SnoopingFabric):
        setattr(fabric, "_apply_grant",
                MethodType(_mutant_snoop_eager_e_grant, fabric))
    else:
        assert isinstance(fabric, MultiChipFabric)
        setattr(fabric, "_apply_chip_grant",
                MethodType(_mutant_chip_eager_e_grant, fabric))
