"""Fault injection for exercising the verification suite.

A checker that has never caught a seeded bug is scenery. This module
provides the seeded bugs: :class:`LossySignature` wraps a real signature
and makes its *filter* lie by omission for selected blocks — the one
failure mode the paper's signatures must never have (false negatives;
Section 2). The exact shadow set stays truthful, so the
:class:`~repro.verify.checkers.VerificationSuite`'s signature oracle can
convict the filter with ground truth, and the downstream isolation and
serializability checkers can demonstrate the actual data corruption the
dropped NACK causes.

Test-only: nothing in the simulator proper imports this module.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.signatures.base import Signature, Snapshot
from repro.signatures.rwpair import ReadWriteSignature


class LossySignature:
    """A signature whose filter drops configured blocks (false negatives).

    Duck-types the :class:`repro.signatures.base.Signature` surface. The
    membership *test* is sabotaged — ``contains`` answers False for any
    block in ``drop_blocks`` even when it was inserted — while the exact
    shadow set keeps the truth. Inserts, snapshots and clears all pass
    through to the wrapped signature.

    Not for use in scenarios that union signatures into summaries: the
    real :meth:`Signature.union_update` type-checks its operand.
    """

    def __init__(self, inner: Signature,
                 drop_blocks: Iterable[int] = ()) -> None:
        self.inner = inner
        self.drop_blocks = set(drop_blocks)
        #: How many conflict tests the wrapper falsified.
        self.dropped = 0

    # -- hardware interface (sabotaged) ------------------------------------

    def insert(self, block_addr: int) -> None:
        self.inner.insert(block_addr)

    def contains(self, block_addr: int) -> bool:
        if block_addr in self.drop_blocks and \
                self.inner.contains_exact(block_addr):
            self.dropped += 1
            return False
        return self.inner.contains(block_addr)

    def clear(self) -> None:
        self.inner.clear()

    @property
    def is_empty(self) -> bool:
        return self.inner.is_empty

    # -- software accessibility --------------------------------------------

    def snapshot(self) -> Snapshot:
        return self.inner.snapshot()

    def restore(self, snap: Snapshot) -> None:
        self.inner.restore(snap)

    def union_update(self, other) -> None:
        self.inner.union_update(other)

    def union_snapshot(self, snap: Snapshot) -> None:
        self.inner.union_snapshot(snap)

    def spawn_empty(self) -> Signature:
        return self.inner.spawn_empty()

    def insert_many(self, block_addrs: Iterable[int]) -> None:
        self.inner.insert_many(block_addrs)

    # -- observability (stays truthful) ------------------------------------

    def contains_exact(self, block_addr: int) -> bool:
        return self.inner.contains_exact(block_addr)

    def exact_set(self) -> FrozenSet[int]:
        return self.inner.exact_set()

    @property
    def exact_size(self) -> int:
        return self.inner.exact_size

    def false_positive(self, block_addr: int) -> bool:
        return self.contains(block_addr) and \
            not self.contains_exact(block_addr)

    def __repr__(self) -> str:
        return (f"LossySignature({self.inner!r}, "
                f"drop={sorted(self.drop_blocks)})")


def make_lossy(pair: ReadWriteSignature,
               drop_blocks: Iterable[int]) -> ReadWriteSignature:
    """Wrap both halves of a thread's signature pair with lossy filters.

    Returns a new :class:`ReadWriteSignature` sharing the original
    filters underneath; install it with ``thread.ctx.signature = ...``
    *before* the thread begins its transaction.
    """
    drops = set(drop_blocks)
    # LossySignature duck-types Signature rather than subclassing it (the
    # sabotage must not inherit a working ``contains``).
    return ReadWriteSignature(
        LossySignature(pair.read, drops),       # type: ignore[arg-type]
        LossySignature(pair.write, drops))      # type: ignore[arg-type]
