"""Correctness-analysis suite: dynamic checkers and static workload lint.

Two halves, one import:

* :mod:`repro.verify.checkers` — the :class:`VerificationSuite`, an
  event-bus subscriber that shadows a run against the paper's
  correctness contract (signature false negatives, undo-log
  restoration, isolation, conflict serializability). Enable per run
  with ``run_workload(..., verify=True)`` or ``repro run --verify``.
* :mod:`repro.verify.lint` — AST-based static analysis of workload
  definitions (``repro lint``), rules ``VR001``-``VR003``.

:mod:`repro.verify.faults` provides seeded faults (a bit-dropping
signature wrapper) so tests can prove the checkers actually convict.

See ``docs/verification.md`` for the checker catalog, rule ids,
suppression syntax, and cost model.
"""

from repro.common.errors import VerificationError
from repro.verify.checkers import (VerificationReport, VerificationSuite,
                                   Violation)
from repro.verify.lint import (RULES, LintFinding, lint_file, lint_paths,
                               lint_source, render_findings)

__all__ = [
    "VerificationError", "VerificationReport", "VerificationSuite",
    "Violation", "RULES", "LintFinding", "lint_file", "lint_paths",
    "lint_source", "render_findings",
]
