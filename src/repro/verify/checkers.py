"""Dynamic correctness checkers for LogTM-SE runs.

The simulator's own assertions are *local* (one component notices its own
inconsistency). The :class:`VerificationSuite` is a *global* oracle: it
subscribes to the observability bus (:mod:`repro.obs.bus`) and shadows the
whole machine against the correctness contract of the paper —

* **Signature oracle** (``SIG-FALSE-NEGATIVE``): signatures may report
  false positives but never false negatives (Section 2). Every granted
  coherence request is replayed against the *exact* shadow sets of every
  other scheduled thread; a grant that a ground-truth signature should
  have NACKed is the smoking gun of a filter that dropped a bit.

* **Undo-log oracle** (``UNDO-RESTORE``): eager version management means
  an abort must restore memory byte-for-byte from the per-frame undo
  records, in LIFO order (Section 3.2). The suite captures its own copy
  of every logged block's pre-image at ``log.append`` time and compares
  memory word-for-word after each ``log.unroll``.

* **Isolation / shadow memory** (``TM-DIRTY-READ``, ``TM-LOST-UPDATE``,
  ``TM-SHADOW-MISMATCH``): a shadow copy of committed state plus an
  in-flight-writer map detect, at the data level, any access that
  observes or overwrites another transaction's uncommitted values.

* **Serializability** (``SER-CYCLE``): the committed transactions'
  conflict graph (W->R, R->W, W->W edges per virtual block) must be
  acyclic. A cycle is reported with a human-readable witness naming the
  transactions and the addresses on each edge.

The suite is *passive*: it never raises mid-simulation (a checker
exploding inside the event bus would corrupt the run it is judging).
Violations accumulate in a :class:`VerificationReport`; strict callers
(``run_workload(verify="strict")``) raise
:class:`repro.common.errors.VerificationError` on a non-OK report.

Deliberately out of scope (documented, not bugs):

* Lazy (Bulk-style) mode has no execution-time isolation — dirty reads
  before a squash are its design, so the suite disables itself.
* The ``use_sticky_states=False`` ablation deliberately loses isolation
  for victimized blocks (Section 8); the suite disables itself.
* Conflicts against *descheduled* transactions travel through summary
  signatures; the grant-time oracle only replays scheduled threads'
  exact sets. Data-level breaks still surface via the shadow checkers.
* SMT siblings on the requester's own core are excluded from the grant
  oracle: the core legitimately re-checks siblings after install, so a
  grant is not yet a promise about them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.mem.physical import WORD_BYTES
from repro.obs.events import Event

#: (asid, word-aligned virtual address) — the unit of data tracking.
#: Virtual, not physical: paging reuses physical frames, so a physical
#: key would alias unrelated data across time (Section 4.2).
WordKey = Tuple[int, int]


@dataclass
class Violation:
    """One confirmed correctness violation."""

    checker: str                 #: which checker fired (e.g. "undo-oracle")
    rule: str                    #: stable rule id (e.g. "UNDO-RESTORE")
    time: int                    #: virtual cycle of detection
    message: str                 #: human-readable witness
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"checker": self.checker, "rule": self.rule,
                "time": self.time, "message": self.message,
                "details": dict(self.details)}

    def __str__(self) -> str:
        return f"[{self.time}] {self.rule}: {self.message}"


@dataclass
class VerificationReport:
    """Outcome of a verified run: what ran, what it found, what it cost."""

    checks_run: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    disabled_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {"checks_run": list(self.checks_run),
                "violations": [v.to_dict() for v in self.violations],
                "stats": dict(self.stats),
                "disabled_reason": self.disabled_reason,
                "ok": self.ok}

    def summary(self) -> str:
        if self.disabled_reason is not None:
            return f"verification disabled: {self.disabled_reason}"
        head = (f"verification: {len(self.checks_run)} checkers, "
                f"{len(self.violations)} violation(s)")
        if self.ok:
            return head
        lines = [head]
        lines.extend(f"  {v}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


class _ShadowFrame:
    """Shadow of one TxContext nesting level (mirrors one log frame)."""

    __slots__ = ("is_open", "accesses", "writes", "preimages")

    def __init__(self, is_open: bool = False) -> None:
        self.is_open = is_open
        #: (time, vblock, is_write) in program order — serializability raw
        #: material; discarded wholesale if the frame aborts.
        self.accesses: List[Tuple[int, int, bool]] = []
        #: WordKey -> last value written by this frame (and, after a
        #: closed-nest merge, its committed children).
        self.writes: Dict[WordKey, int] = {}
        #: vblock -> {vaddr: value}: our own copy of the undo pre-image,
        #: captured at the *first* ``log.append`` of each block in this
        #: frame (LIFO unroll makes the first record's values final).
        self.preimages: Dict[int, Dict[int, int]] = {}


class VerificationSuite:
    """All dynamic checkers behind one event-bus subscriber.

    Attach with :meth:`attach` (or ``bus.subscribe(suite, kinds=
    suite.KINDS)``), run the simulation, then call :meth:`finish` for the
    :class:`VerificationReport`. Construction is cheap and attachment is
    zero-cost for non-verified runs — the bus itself only exists when
    observability is on.
    """

    #: Event kinds the suite consumes; everything else never reaches it.
    KINDS = ("tm.access", "tm.begin", "tm.commit", "tm.abort",
             "log.append", "log.unroll", "coh.grant")

    CHECKERS = ("signature-oracle", "undo-oracle", "isolation-shadow",
                "serializability")

    #: Reports beyond this many are counted but not stored (a systemic
    #: failure would otherwise bury its first, most diagnostic witness).
    MAX_VIOLATIONS = 200

    def __init__(self, system) -> None:
        self.system = system
        self.block_bytes = system.cfg.block_bytes
        self._use_asid_filter = system.cfg.tm.use_asid_filter
        self.disabled_reason: Optional[str] = None
        if system.cfg.tm.lazy:
            self.disabled_reason = (
                "lazy (Bulk-style) mode has no execution-time isolation; "
                "dirty reads before a squash are by design")
        elif not system.cfg.tm.use_sticky_states:
            self.disabled_reason = (
                "sticky-state ablation deliberately loses isolation for "
                "victimized blocks (Section 8)")
        self.enabled = self.disabled_reason is None
        self.violations: List[Violation] = []
        self.dropped_violations = 0
        #: tid -> shadow frame stack (one frame per nest level).
        self._frames: Dict[int, List[_ShadowFrame]] = {}
        #: WordKey -> tid of the transaction with an uncommitted write.
        self._inflight: Dict[WordKey, int] = {}
        #: WordKey -> last committed value the suite has observed.
        self._shadow: Dict[WordKey, int] = {}
        #: Words whose committed value the suite can no longer vouch for
        #: (escape-action writes; open-nest commits under a writing
        #: parent). Value checks are skipped, isolation checks are not.
        self._untracked: Set[WordKey] = set()
        #: (asid, vblock) -> [(time, txid, is_write)] committed history.
        self._history: Dict[Tuple[int, int],
                            List[Tuple[int, str, bool]]] = {}
        self._commit_seq: Dict[int, int] = {}
        self._counts: Dict[str, int] = {
            "events": 0, "accesses": 0, "grants": 0,
            "frames_verified": 0, "words_verified": 0,
            "txns_committed": 0,
        }
        self._finished = False

    # -- wiring ------------------------------------------------------------

    def attach(self, bus) -> "VerificationSuite":
        bus.subscribe(self, kinds=self.KINDS)
        return self

    def __call__(self, event: Event) -> None:
        if not self.enabled:
            return
        self._counts["events"] += 1
        kind = event.kind
        if kind == "tm.access":
            self._on_access(event)
        elif kind == "coh.grant":
            self._on_grant(event)
        elif kind == "log.append":
            self._on_append(event)
        elif kind == "log.unroll":
            self._on_unroll(event)
        elif kind == "tm.begin":
            self._on_begin(event)
        elif kind == "tm.commit":
            self._on_commit(event)
        elif kind == "tm.abort":
            self._on_abort(event)

    def _report(self, checker: str, rule: str, time: int, message: str,
                **details: Any) -> None:
        if len(self.violations) >= self.MAX_VIOLATIONS:
            self.dropped_violations += 1
            return
        self.violations.append(
            Violation(checker=checker, rule=rule, time=time,
                      message=message, details=details))

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _word(vaddr: int) -> int:
        return vaddr & ~(WORD_BYTES - 1)

    def _vblock(self, vaddr: int) -> int:
        return vaddr & ~(self.block_bytes - 1)

    def _expected_value(self, tid: Optional[int],
                        key: WordKey) -> Optional[int]:
        """The value a clean read of ``key`` should return, or None when
        the suite has no basis for a check."""
        if tid is not None:
            for frame in reversed(self._frames.get(tid) or ()):
                if key in frame.writes:
                    return frame.writes[key]
        if key in self._untracked:
            return None
        return self._shadow.get(key)

    # -- signature oracle --------------------------------------------------

    def _on_grant(self, event: Event) -> None:
        f = event.fields
        block = f.get("block")
        core = f.get("core")
        tid = f.get("thread")
        is_write = f.get("write")
        if block is None or tid is None or is_write is None:
            return  # legacy emission without attribution fields
        self._counts["grants"] += 1
        requester = self.system.threads.get(tid)
        req_asid = requester.asid if requester is not None else None
        for other in self.system.threads.values():
            if other.tid == tid or not other.scheduled:
                continue
            if other.slot.core.core_id == core:
                continue  # SMT siblings: re-checked locally post-install
            if (self._use_asid_filter and req_asid is not None
                    and other.asid != req_asid):
                continue  # the fabric's ASID filter makes this legal
            sig = other.ctx.signature
            if is_write:
                hit = (sig.read.contains_exact(block)
                       or sig.write.contains_exact(block))
            else:
                hit = sig.write.contains_exact(block)
            if hit:
                kind = "write" if is_write else "read"
                self._report(
                    "signature-oracle", "SIG-FALSE-NEGATIVE", event.time,
                    f"{kind} of block {block:#x} by thread {tid} "
                    f"(core {core}) was granted although thread "
                    f"{other.tid}'s exact "
                    f"{'read/write' if is_write else 'write'} set contains "
                    f"it — the filter produced a false negative",
                    block=block, requester=tid, holder=other.tid,
                    write=is_write)

    # -- transaction lifecycle --------------------------------------------

    def _on_begin(self, event: Event) -> None:
        f = event.fields
        tid = f["thread"]
        depth = f.get("depth", 1)
        stack = self._frames.setdefault(tid, [])
        if len(stack) != depth - 1:
            self._report(
                "isolation-shadow", "TM-FRAME-MISMATCH", event.time,
                f"thread {tid} began nest level {depth} but the shadow "
                f"stack holds {len(stack)} frame(s)",
                thread=tid, depth=depth, shadow_depth=len(stack))
            del stack[max(depth - 1, 0):]
            while len(stack) < depth - 1:
                stack.append(_ShadowFrame())
        stack.append(_ShadowFrame(is_open=bool(f.get("open"))))

    def _on_append(self, event: Event) -> None:
        f = event.fields
        tid = f["thread"]
        vblock = f["vblock"]
        stack = self._frames.get(tid)
        if not stack:
            self._report(
                "undo-oracle", "TM-FRAME-MISMATCH", event.time,
                f"thread {tid} appended an undo record with no shadow "
                f"frame open", thread=tid, vblock=vblock)
            return
        frame = stack[-1]
        if vblock in frame.preimages:
            # Log-filter eviction re-logged the block; LIFO restore makes
            # the first record's values final, so keep the first image.
            return
        thread = self.system.threads.get(tid)
        if thread is None:
            return
        # ``log.append`` is emitted before the triggering store: memory
        # still holds the old values, so this capture is exact.
        image: Dict[int, int] = {}
        for off in range(0, self.block_bytes, WORD_BYTES):
            vaddr = vblock + off
            image[vaddr] = self.system.memory.load(thread.translate(vaddr))
        frame.preimages[vblock] = image

    def _on_unroll(self, event: Event) -> None:
        f = event.fields
        tid = f["thread"]
        stack = self._frames.get(tid)
        if not stack:
            self._report(
                "undo-oracle", "TM-FRAME-MISMATCH", event.time,
                f"thread {tid} unrolled a log frame with no shadow frame "
                f"open", thread=tid)
            return
        frame = stack.pop()
        thread = self.system.threads.get(tid)
        if thread is not None:
            # ``log.unroll`` is emitted synchronously after the restoring
            # stores (no intervening yield): comparing memory here is
            # race-free even with other threads running.
            for vblock, image in frame.preimages.items():
                for vaddr, expected in image.items():
                    actual = self.system.memory.load(
                        thread.translate(vaddr))
                    self._counts["words_verified"] += 1
                    if actual != expected:
                        self._report(
                            "undo-oracle", "UNDO-RESTORE", event.time,
                            f"abort of thread {tid} left {vaddr:#x} "
                            f"(block {vblock:#x}) = {actual}, undo log "
                            f"should have restored {expected}",
                            thread=tid, vaddr=vaddr, vblock=vblock,
                            expected=expected, actual=actual)
        self._counts["frames_verified"] += 1
        self._release_inflight(tid, frame, stack)
        # The frame's accesses die with it: aborted work never enters the
        # serializability history.

    def _release_inflight(self, tid: int, frame: _ShadowFrame,
                          remaining: List[_ShadowFrame]) -> None:
        for key in frame.writes:
            if self._inflight.get(key) != tid:
                continue
            if any(key in f.writes for f in remaining):
                continue  # an enclosing frame still owns the word
            del self._inflight[key]

    def _on_commit(self, event: Event) -> None:
        f = event.fields
        tid = f["thread"]
        outer = bool(f.get("outer"))
        stack = self._frames.get(tid)
        if not stack:
            self._report(
                "isolation-shadow", "TM-FRAME-MISMATCH", event.time,
                f"thread {tid} committed with no shadow frame open",
                thread=tid)
            return
        frame = stack.pop()
        if outer and stack:
            self._report(
                "isolation-shadow", "TM-FRAME-MISMATCH", event.time,
                f"thread {tid} outer-committed with {len(stack)} shadow "
                f"frame(s) still open", thread=tid)
            stack.clear()
        if not outer and not frame.is_open:
            # Closed-nest commit: the child folds into its parent exactly
            # like :meth:`UndoLog.merge_into_parent` folds log records.
            parent = stack[-1]
            parent.accesses.extend(frame.accesses)
            parent.writes.update(frame.writes)
            for vblock, image in frame.preimages.items():
                parent.preimages.setdefault(vblock, image)
            return
        # Outer commit, or an open-nest child committing globally.
        self._flush_committed(tid, frame, stack, event.time)

    def _flush_committed(self, tid: int, frame: _ShadowFrame,
                         enclosing: List[_ShadowFrame], time: int) -> None:
        thread = self.system.threads.get(tid)
        asid = thread.asid if thread is not None else 0
        parent_blocks: Set[int] = set()
        for outer_frame in enclosing:
            parent_blocks.update(outer_frame.preimages)
        # Lost-update check: from the first log append of a block until
        # this commit, isolation pins every word of it — so the pre-image
        # must still match the last committed value the suite observed.
        for vblock, image in frame.preimages.items():
            if vblock in parent_blocks:
                # Open-nest commit under a parent that wrote the same
                # block: the pre-image is the parent's *uncommitted*
                # value, and a later parent abort will clobber this
                # child's committed data (the documented open-nesting
                # hazard). Stop vouching for these words.
                for vaddr in image:
                    self._untracked.add((asid, self._word(vaddr)))
                continue
            for vaddr, value in image.items():
                key = (asid, self._word(vaddr))
                if key in self._untracked:
                    continue
                known = self._shadow.get(key)
                if known is None:
                    # First sighting: the pre-image establishes the
                    # committed baseline (e.g. values set up before the
                    # bus was attached).
                    self._shadow[key] = value
                elif known != value:
                    self._report(
                        "isolation-shadow", "TM-LOST-UPDATE", time,
                        f"thread {tid} logged {vaddr:#x} = {value} but "
                        f"the last committed value was {known} — a "
                        f"committed update was lost or bypassed "
                        f"isolation", thread=tid, vaddr=vaddr,
                        logged=value, committed=known)
        for key, value in frame.writes.items():
            if key not in self._untracked:
                self._shadow[key] = value
        self._release_inflight(tid, frame, enclosing)
        self._record_committed(tid, asid, frame, time)

    def _record_committed(self, tid: int, asid: int, frame: _ShadowFrame,
                          time: int) -> None:
        if not frame.accesses:
            return
        seq = self._commit_seq.get(tid, 0)
        self._commit_seq[tid] = seq + 1
        txid = f"T{tid}#{seq}"
        self._counts["txns_committed"] += 1
        first: Dict[Tuple[int, bool], int] = {}
        for when, vblock, is_write in frame.accesses:
            first.setdefault((vblock, is_write), when)
        for (vblock, is_write), when in first.items():
            self._history.setdefault((asid, vblock), []).append(
                (when, txid, is_write))

    def _on_abort(self, event: Event) -> None:
        f = event.fields
        tid = f["thread"]
        if not (f.get("outer", True) and f.get("full", True)):
            return
        # ``tm.abort`` follows the per-frame ``log.unroll`` events, so a
        # completed outer abort must have drained the shadow stack.
        stack = self._frames.get(tid)
        if stack:
            self._report(
                "isolation-shadow", "TM-FRAME-MISMATCH", event.time,
                f"thread {tid} finished an outer abort with "
                f"{len(stack)} shadow frame(s) left", thread=tid)
            while stack:
                self._release_inflight(tid, stack.pop(), stack)

    # -- data-level isolation ---------------------------------------------

    def _on_access(self, event: Event) -> None:
        f = event.fields
        tid = f["thread"]
        vaddr = f["vaddr"]
        is_write = f["write"]
        value = f["value"]
        asid = f.get("asid", 0)
        key = (asid, self._word(vaddr))
        self._counts["accesses"] += 1
        if f.get("tx"):
            self._tx_access(tid, key, vaddr, is_write, value, event.time)
        elif f.get("in_tx"):
            # Escape action: bypasses isolation and logging by design
            # [Moravan et al.]; its writes are immediately global and are
            # never undone, so they move the committed baseline directly.
            if is_write:
                self._shadow[key] = value
                self._untracked.add(key)
        else:
            self._plain_access(tid, key, vaddr, is_write, value,
                               event.time)

    def _tx_access(self, tid: int, key: WordKey, vaddr: int,
                   is_write: bool, value: int, time: int) -> None:
        stack = self._frames.get(tid)
        if not stack:
            self._report(
                "isolation-shadow", "TM-FRAME-MISMATCH", time,
                f"thread {tid} made a transactional access with no shadow "
                f"frame open", thread=tid, vaddr=vaddr)
            return
        frame = stack[-1]
        frame.accesses.append((time, self._vblock(vaddr), is_write))
        owner = self._inflight.get(key)
        if is_write:
            if owner is not None and owner != tid:
                self._report(
                    "isolation-shadow", "TM-LOST-UPDATE", time,
                    f"thread {tid} wrote {vaddr:#x} = {value} while "
                    f"thread {owner}'s uncommitted write to the same word "
                    f"is in flight", thread=tid, other=owner, vaddr=vaddr)
            self._inflight[key] = tid
            frame.writes[key] = value
            return
        if owner is not None and owner != tid:
            self._report(
                "isolation-shadow", "TM-DIRTY-READ", time,
                f"thread {tid} read {vaddr:#x} = {value} while thread "
                f"{owner}'s uncommitted write to the same word is in "
                f"flight", thread=tid, other=owner, vaddr=vaddr,
                value=value)
            return
        expected = self._expected_value(tid, key)
        if expected is not None and expected != value:
            self._report(
                "isolation-shadow", "TM-SHADOW-MISMATCH", time,
                f"thread {tid} read {vaddr:#x} = {value} but the last "
                f"committed value is {expected}", thread=tid, vaddr=vaddr,
                value=value, expected=expected)

    def _plain_access(self, tid: int, key: WordKey, vaddr: int,
                      is_write: bool, value: int, time: int) -> None:
        owner = self._inflight.get(key)
        if is_write:
            if owner is not None:
                self._report(
                    "isolation-shadow", "TM-LOST-UPDATE", time,
                    f"non-transactional write of {vaddr:#x} = {value} by "
                    f"thread {tid} while thread {owner}'s uncommitted "
                    f"write is in flight (strong atomicity breach)",
                    thread=tid, other=owner, vaddr=vaddr)
            self._shadow[key] = value
            return
        if owner is not None:
            self._report(
                "isolation-shadow", "TM-DIRTY-READ", time,
                f"non-transactional read of {vaddr:#x} = {value} by "
                f"thread {tid} saw thread {owner}'s uncommitted write "
                f"(strong atomicity breach)", thread=tid, other=owner,
                vaddr=vaddr, value=value)
            return
        expected = self._expected_value(None, key)
        if expected is not None and expected != value:
            self._report(
                "isolation-shadow", "TM-SHADOW-MISMATCH", time,
                f"non-transactional read of {vaddr:#x} by thread {tid} "
                f"returned {value}, last committed value is {expected}",
                thread=tid, vaddr=vaddr, value=value, expected=expected)

    # -- serializability ----------------------------------------------------

    def _check_serializability(self) -> None:
        # Conflict-graph edges at virtual-block granularity. Correct eager
        # runs follow strict 2PL (NACKs hold conflicting requests off
        # until commit), so even block-granularity (false-sharing) edges
        # are acyclic; a cycle means isolation actually broke.
        edges: Dict[Tuple[str, str], Tuple[int, str]] = {}
        adj: Dict[str, List[str]] = {}

        def add_edge(src: str, dst: str, vblock: int, kind: str) -> None:
            if src == dst or (src, dst) in edges:
                return
            edges[(src, dst)] = (vblock, kind)
            adj.setdefault(src, []).append(dst)
            adj.setdefault(dst, [])

        for (asid, vblock), entries in self._history.items():
            entries.sort()
            last_writer: Optional[str] = None
            readers: List[str] = []
            for _when, txid, is_write in entries:
                if is_write:
                    if last_writer is not None:
                        add_edge(last_writer, txid, vblock, "W->W")
                    for reader in readers:
                        add_edge(reader, txid, vblock, "R->W")
                    last_writer = txid
                    readers = []
                else:
                    if last_writer is not None:
                        add_edge(last_writer, txid, vblock, "W->R")
                    readers.append(txid)
        cycle = self._find_cycle(adj)
        if cycle is None:
            return
        hops = []
        for src, dst in zip(cycle, cycle[1:]):
            vblock, kind = edges[(src, dst)]
            hops.append(f"{src} -[{kind} {vblock:#x}]-> {dst}")
        self._report(
            "serializability", "SER-CYCLE", 0,
            "committed transactions are not conflict-serializable: "
            + "; ".join(hops),
            cycle=cycle)

    @staticmethod
    def _find_cycle(adj: Dict[str, List[str]]) -> Optional[List[str]]:
        """First cycle in ``adj`` as [n0, n1, ..., n0], else None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in adj}
        for root in adj:
            if color[root] != WHITE:
                continue
            path: List[str] = []
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, idx = work.pop()
                if idx == 0:
                    color[node] = GRAY
                    path.append(node)
                out = adj.get(node, [])
                advanced = False
                for i in range(idx, len(out)):
                    nxt = out[i]
                    if color[nxt] == GRAY:
                        start = path.index(nxt)
                        return path[start:] + [nxt]
                    if color[nxt] == WHITE:
                        work.append((node, i + 1))
                        work.append((nxt, 0))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    path.pop()
        return None

    # -- reporting ----------------------------------------------------------

    def finish(self) -> VerificationReport:
        """Run end-of-run analyses and build the report (idempotent)."""
        if not self._finished:
            self._finished = True
            if self.enabled:
                self._check_serializability()
        return self.report()

    def report(self) -> VerificationReport:
        stats = dict(self._counts)
        stats["locations_tracked"] = len(self._history)
        if self.dropped_violations:
            stats["violations_dropped"] = self.dropped_violations
        return VerificationReport(
            checks_run=list(self.CHECKERS) if self.enabled else [],
            violations=list(self.violations),
            stats=stats,
            disabled_reason=self.disabled_reason)
