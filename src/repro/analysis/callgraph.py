"""Project model and call graph for the static analyses.

A :class:`Project` is a set of parsed modules plus the relations the
concurrency passes need:

* classes, methods, and module-level functions (by name);
* **typed attributes**: ``self.attr = ClassName(...)`` inside a class
  body binds ``attr`` to ``ClassName`` when that class is part of the
  project, so ``self.attr.method()`` resolves across class boundaries
  (``SweepService.fleet -> WorkerFleet`` and friends);
* **thread targets**: ``threading.Thread(target=self._method)`` marks
  ``_method`` as the entry point of a second thread;
* **callback registrations**: ``self.bus.subscribe(self.sink)`` (any
  single-argument registration call named ``subscribe``/``register``)
  records that the receiving class may later invoke ``sink`` — the
  dispatch through the subscriber list is dynamic, so the call graph
  adds an edge from every method of the receiving class that calls its
  registered callables.

Resolution is deliberately partial: a call that cannot be resolved to
a project function is simply dropped, which keeps every analysis built
on top conservative in the no-false-positive direction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Registration method names treated as callback subscriptions.
_REGISTRATION_NAMES = frozenset({"subscribe", "register", "add_listener"})

#: Constructor calls that mark an attribute as a synchronization
#: primitive (internally thread-safe; exempt from lockset conviction).
SYNC_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier", "Queue", "SimpleQueue", "LifoQueue",
    "PriorityQueue",
})

#: Constructors whose single-element mutating methods are atomic under
#: the GIL (conviction-exempt for those methods only).
ATOMIC_CONTAINER_CONSTRUCTORS = frozenset({"deque"})


class FunctionInfo:
    """One function or method definition."""

    __slots__ = ("name", "qualname", "node", "cls", "module")

    def __init__(self, name: str, qualname: str, node: ast.AST,
                 cls: Optional["ClassInfo"], module: "ModuleInfo") -> None:
        self.name = name
        self.qualname = qualname
        self.node = node
        self.cls = cls
        self.module = module

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class: methods, attribute bindings, thread entry points."""

    def __init__(self, name: str, node: ast.ClassDef,
                 module: "ModuleInfo") -> None:
        self.name = name
        self.node = node
        self.module = module
        self.qualname = f"{module.name}.{name}"
        self.methods: Dict[str, FunctionInfo] = {}
        self.bases: List[str] = [
            b.id for b in node.bases if isinstance(b, ast.Name)]
        #: attr -> class name it is constructed from (``self.x = C(...)``)
        self.attr_types: Dict[str, str] = {}
        #: attr -> the first ``__init__``-assigned value expression
        self.attr_init_values: Dict[str, ast.AST] = {}
        #: methods used as ``threading.Thread(target=...)``
        self.thread_targets: List[FunctionInfo] = []
        #: callables this class's instances registered on *other*
        #: objects: (receiver attr name, callable FunctionInfo)
        self.registered_callbacks: List[FunctionInfo] = []

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname})"


class ModuleInfo:
    """One parsed module."""

    def __init__(self, path: str, name: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.name = name
        self.source = source
        self.tree = tree
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.imports_threading = False
        for node in tree.body:
            if isinstance(node, ast.Import):
                if any(alias.name == "threading" for alias in node.names):
                    self.imports_threading = True
            elif isinstance(node, ast.ImportFrom):
                if node.module == "threading":
                    self.imports_threading = True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    node.name, f"{name}.{node.name}", node, None, self)
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(node.name, node, self)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        cls.methods[item.name] = FunctionInfo(
                            item.name, f"{name}.{node.name}.{item.name}",
                            item, cls, self)
                self.classes[node.name] = cls

    def __repr__(self) -> str:
        return f"ModuleInfo({self.name})"


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


class Project:
    """A set of modules plus cross-module resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self.classes: Dict[str, List[ClassInfo]] = {}
        for module in self.modules:
            for cls in module.classes.values():
                self.classes.setdefault(cls.name, []).append(cls)
        for module in self.modules:
            for cls in module.classes.values():
                self._scan_class(cls)

    # -- model construction ------------------------------------------------

    def _scan_class(self, cls: ClassInfo) -> None:
        init = cls.methods.get("__init__")
        if init is not None:
            for node in ast.walk(init.node):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and \
                        node.value is not None:
                    target, value = node.target, node.value
                if target is None or value is None:
                    continue
                attr = _self_attr(target)
                if attr is None:
                    continue
                cls.attr_init_values.setdefault(attr, value)
                ctor = self._constructor_class(value, cls.module)
                if ctor is not None:
                    cls.attr_types.setdefault(attr, ctor.name)
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self._thread_target(node, cls)
                if target is not None:
                    cls.thread_targets.append(target)
                registered = self._registration(node, cls)
                if registered is not None:
                    cls.registered_callbacks.append(registered)

    def _constructor_class(self, value: ast.AST,
                           module: ModuleInfo) -> Optional[ClassInfo]:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return self.resolve_class(value.func.id, module)
        return None

    def _thread_target(self, call: ast.Call,
                       cls: ClassInfo) -> Optional[FunctionInfo]:
        func = call.func
        is_thread = (
            (isinstance(func, ast.Attribute) and func.attr == "Thread"
             and isinstance(func.value, ast.Name)
             and func.value.id == "threading")
            or (isinstance(func, ast.Name) and func.id == "Thread"))
        if not is_thread:
            return None
        for kw in call.keywords:
            if kw.arg == "target":
                attr = _self_attr(kw.value)
                if attr is not None:
                    return cls.methods.get(attr)
        return None

    def _registration(self, call: ast.Call,
                      cls: ClassInfo) -> Optional[FunctionInfo]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _REGISTRATION_NAMES
                and len(call.args) >= 1):
            return None
        arg = call.args[0]
        attr = _self_attr(arg)
        if attr is None:
            return None
        if attr in cls.methods:
            return cls.methods[attr]
        # ``self.bus.subscribe(self.metrics)``: the registered object is
        # invoked through ``__call__``.
        type_name = cls.attr_types.get(attr)
        if type_name is not None:
            target_cls = self.resolve_class(type_name, cls.module)
            if target_cls is not None:
                return target_cls.methods.get("__call__")
        return None

    # -- resolution --------------------------------------------------------

    def resolve_class(self, name: str,
                      module: Optional[ModuleInfo] = None
                      ) -> Optional[ClassInfo]:
        candidates = self.classes.get(name, [])
        if not candidates:
            return None
        if module is not None:
            for cls in candidates:
                if cls.module is module:
                    return cls
        return candidates[0]

    def method_of(self, cls: ClassInfo,
                  name: str) -> Optional[FunctionInfo]:
        """Method lookup honouring (single, in-project) inheritance."""
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_cls = self.resolve_class(base, cls.module)
            if base_cls is not None and base_cls is not cls:
                found = self.method_of(base_cls, name)
                if found is not None:
                    return found
        return None

    def resolve_method_call(self, call: ast.Call,
                            cls: ClassInfo) -> Optional[FunctionInfo]:
        """Resolve ``self._helper(...)`` (or ``super().helper(...)``)
        relative to a class, honouring in-project inheritance.

        This is the interprocedural step the protocol extractor leans
        on: fabric transitions hidden one level down behind helper
        delegation (``DirectoryFabric._broadcast_check``,
        ``MultiChipFabric._chip_l2_victimized``) resolve to their
        defining :class:`FunctionInfo` so their bodies can be inlined
        or summarized into the caller's paths.
        """
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name) and base.id == "self":
            return self.method_of(cls, func.attr)
        if isinstance(base, ast.Call) and \
                isinstance(base.func, ast.Name) and \
                base.func.id == "super":
            for base_name in cls.bases:
                base_cls = self.resolve_class(base_name, cls.module)
                if base_cls is not None and base_cls is not cls:
                    method = self.method_of(base_cls, func.attr)
                    if method is not None:
                        return method
        return None

    def self_delegations(self, fn: FunctionInfo
                         ) -> List[Tuple[ast.Call, FunctionInfo]]:
        """One level of ``self._helper(...)`` delegation inside ``fn``:
        every call site paired with the method it resolves to."""
        out: List[Tuple[ast.Call, FunctionInfo]] = []
        if fn.cls is None:
            return out
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                target = self.resolve_method_call(node, fn.cls)
                if target is not None:
                    out.append((node, target))
        return out

    def resolve_call(self, call: ast.Call,
                     fn: FunctionInfo) -> List[FunctionInfo]:
        """Project functions a call site may invoke (possibly empty)."""
        func = call.func
        out: List[FunctionInfo] = []
        if isinstance(func, ast.Name):
            if func.id in fn.module.functions:
                out.append(fn.module.functions[func.id])
            else:
                cls = self.resolve_class(func.id, fn.module)
                if cls is not None:
                    init = self.method_of(cls, "__init__")
                    if init is not None:
                        out.append(init)
        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" \
                    and fn.cls is not None:
                method = self.method_of(fn.cls, func.attr)
                if method is not None:
                    out.append(method)
            elif isinstance(base, ast.Call) and \
                    isinstance(base.func, ast.Name) and \
                    base.func.id == "super" and fn.cls is not None:
                for base_name in fn.cls.bases:
                    base_cls = self.resolve_class(base_name, fn.module)
                    if base_cls is not None:
                        method = self.method_of(base_cls, func.attr)
                        if method is not None:
                            out.append(method)
                            break
            else:
                attr = _self_attr(base)
                if attr is not None and fn.cls is not None:
                    type_name = fn.cls.attr_types.get(attr)
                    if type_name is not None:
                        target_cls = self.resolve_class(
                            type_name, fn.module)
                        if target_cls is not None:
                            method = self.method_of(target_cls, func.attr)
                            if method is not None:
                                out.append(method)
        return out

    def calls_from(self, fn: FunctionInfo) -> List[FunctionInfo]:
        """All project callees of ``fn``, callback dispatch included."""
        out: List[FunctionInfo] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                out.extend(self.resolve_call(node, fn))
        # Dynamic dispatch over registered callbacks: a method of class
        # K that calls through K's subscriber container may invoke any
        # callable registered on a K-typed attribute anywhere in the
        # project. Approximated as: methods that contain an opaque
        # ``name(...)`` call on a loop variable drawn from a self
        # attribute invoke every callback registered on this class.
        if fn.cls is not None and self._dispatches_callbacks(fn):
            for module in self.modules:
                for cls in module.classes.values():
                    for attr, type_name in cls.attr_types.items():
                        if type_name == fn.cls.name:
                            out.extend(cls.registered_callbacks)
        return out

    def _dispatches_callbacks(self, fn: FunctionInfo) -> bool:
        loop_vars: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.For):
                for name in ast.walk(node.target):
                    if isinstance(name, ast.Name):
                        loop_vars.add(name.id)
            elif isinstance(node, (ast.Tuple, ast.List)) and \
                    isinstance(getattr(node, "ctx", None), ast.Store):
                for name in node.elts:
                    if isinstance(name, ast.Name):
                        loop_vars.add(name.id)
        if not loop_vars:
            return False
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in loop_vars:
                return True
        return False

    # -- reachability ------------------------------------------------------

    def reachable(self, entries: Iterable[FunctionInfo]
                  ) -> Set[Tuple[str, str]]:
        """Qualnames (as (module, qualname)) reachable from ``entries``."""
        seen: Set[Tuple[str, str]] = set()
        frontier = list(entries)
        while frontier:
            fn = frontier.pop()
            key = (fn.module.name, fn.qualname)
            if key in seen:
                continue
            seen.add(key)
            frontier.extend(self.calls_from(fn))
        return seen


def parse_module(path: str, source: str,
                 name: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    if name is None:
        base = path.replace("\\", "/").rsplit("/", 1)[-1]
        name = base[:-3] if base.endswith(".py") else base
    return ModuleInfo(path, name, source, tree)


__all__ = ["ATOMIC_CONTAINER_CONSTRUCTORS", "ClassInfo", "FunctionInfo",
           "ModuleInfo", "Project", "SYNC_CONSTRUCTORS", "parse_module"]
