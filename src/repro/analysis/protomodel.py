"""Data model for extracted coherence-protocol transition tables.

The protocol extractor (:mod:`repro.analysis.protocol`) walks a fabric
class's handler methods and produces, per handler path, one
:class:`TransitionPath`: the *stimulus* that entered the handler (a
GETS/GETM request, an L1/L2 victimization, an OS scrub or relocation),
the *guard atoms* the path branched on, the ordered *effects* it
performs, and the *outcome* it returns. Paths aggregate into
:class:`Transition` records keyed by ``(stimulus, variant, outcome)``
— the same keys the model-checker coverage pass
(:mod:`repro.mc.coverage`) produces dynamically, which is what makes
the static table and the bounded exploration comparable.

Effect vocabulary (strings, so tables serialize trivially):

``msg:<NAME>``
    a network message send with payload tag ``NAME`` (``GETM``,
    ``NACK``, ``DATA``, ``fwd``, ``rebuild``, ``snoop``, ...);
``ctr:<attr>``
    a statistics counter bump (``ctr:_c_nacks``);
``call:<method>``
    a conflict-port consultation (``check_conflicts``,
    ``holds_transactional``, ``invalidate_block``,
    ``downgrade_block``);
``set:/clear:/add:/sub:<attr>``
    a mutation of directory/line state: ``owner``, ``sharers``,
    ``sticky``, ``lost_info``, ``must_check_all``, ``rights``,
    ``owner_chip``, ``sharer_chips``, ``sticky_chips``;
``grant:<MESI>``
    the MESI state a granted request installs (from the grant
    applier's ``return MESI.X``).

The JSON schema emitted by :meth:`TransitionTable.to_json_dict` is
documented in ``docs/analysis.md`` ("Protocol conformance") and the
committed per-fabric tables live under ``docs/protocol_tables/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

#: Directory/line state attributes whose mutations are tracked.
STATE_ATTRS = frozenset({
    "owner", "sharers", "sticky", "lost_info", "must_check_all",
    "rights", "owner_chip", "sharer_chips", "sticky_chips",
})

#: Conflict-port methods whose calls are recorded as consultations.
PORT_METHODS = frozenset({
    "check_conflicts", "holds_transactional", "invalidate_block",
    "downgrade_block", "mark_abort",
})

#: Network primitives whose string payload becomes a ``msg:`` effect.
NETWORK_METHODS = frozenset({
    "core_to_bank", "bank_to_core", "core_to_core",
    "broadcast_from_bank",
})

#: Effects that set or convert a sticky/conservative-check obligation
#: (the LogTM-SE decoupling bookkeeping PC004 audits).
STICKY_OBLIGATION_EFFECTS = frozenset({
    "add:sticky", "sub:sticky", "set:lost_info", "set:must_check_all",
    "add:sticky_chips", "sub:sticky_chips",
})

#: Effects that destroy line/ownership state (who caches what).
DESTRUCTIVE_EFFECTS = frozenset({
    "clear:owner", "clear:sharers", "clear:rights",
    "call:invalidate_block",
})


@dataclass(frozen=True)
class GuardAtom:
    """One branch condition a path took.

    ``text`` is the normalized (whitespace-collapsed) source of the
    test, after substituting simple local bindings and resolving
    conditional expressions under the handler's stimulus bindings.
    ``stable`` is cleared once a later effect on the same path mutates
    a name the test mentions, which is what keeps the PC002 dead-arm
    check sound under intervening state updates.
    """

    text: str
    polarity: bool
    line: int
    stable: bool = True
    #: identifier tokens the test mentions (drives invalidation).
    tokens: FrozenSet[str] = field(default=frozenset(), compare=False,
                                   repr=False)

    def to_dict(self) -> Dict[str, object]:
        return {"text": self.text, "polarity": self.polarity,
                "line": self.line, "stable": self.stable}

    def describe(self) -> str:
        return ("" if self.polarity else "!") + f"({self.text})"


@dataclass
class TransitionPath:
    """One feasible handler path under one stimulus binding."""

    stimulus: str
    variant: str
    outcome: str                  # "grant" | "nack" | "done"
    guards: Tuple[GuardAtom, ...]
    effects: Tuple[str, ...]
    handlers: Tuple[str, ...]     # call trail, entry handler first
    line: int                     # entry handler's definition line

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.stimulus, self.variant, self.outcome)


@dataclass
class Transition:
    """All paths sharing one ``(stimulus, variant, outcome)`` key."""

    stimulus: str
    variant: str
    outcome: str
    paths: List[TransitionPath] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.stimulus, self.variant, self.outcome)

    @property
    def effect_union(self) -> Set[str]:
        out: Set[str] = set()
        for path in self.paths:
            out.update(path.effects)
        return out

    @property
    def handlers(self) -> List[str]:
        seen: Dict[str, None] = {}
        for path in self.paths:
            for name in path.handlers:
                seen.setdefault(name)
        return list(seen)

    @property
    def line(self) -> int:
        return min(path.line for path in self.paths)

    def grant_states(self) -> Set[str]:
        """MESI states any path of this transition can install."""
        return {eff.split(":", 1)[1] for eff in self.effect_union
                if eff.startswith("grant:")}

    def to_dict(self) -> Dict[str, object]:
        return {
            "stimulus": self.stimulus,
            "variant": self.variant,
            "outcome": self.outcome,
            "paths": len(self.paths),
            "effects": sorted(self.effect_union),
            "handlers": self.handlers,
        }


class TransitionTable:
    """The extracted transition relation of one fabric class."""

    #: Bump when the JSON layout changes (docs/analysis.md documents it).
    SCHEMA = 1

    def __init__(self, fabric_kind: str, class_name: str, path: str,
                 class_line: int = 1) -> None:
        self.fabric_kind = fabric_kind
        self.class_name = class_name
        self.path = path
        self.class_line = class_line
        self.transitions: Dict[Tuple[str, str, str], Transition] = {}
        #: Handlers whose path enumeration hit the cap; PC001 is
        #: suppressed for a truncated table (missing keys may simply
        #: not have been enumerated).
        self.truncated_handlers: List[str] = []

    def add_path(self, path: TransitionPath) -> None:
        transition = self.transitions.get(path.key)
        if transition is None:
            transition = Transition(path.stimulus, path.variant,
                                    path.outcome)
            self.transitions[path.key] = transition
        transition.paths.append(path)

    def keys(self) -> Set[Tuple[str, str, str]]:
        return set(self.transitions)

    def get(self, key: Tuple[str, str, str]) -> Optional[Transition]:
        return self.transitions.get(key)

    def sorted_transitions(self) -> List[Transition]:
        return [self.transitions[key]
                for key in sorted(self.transitions)]

    @property
    def truncated(self) -> bool:
        return bool(self.truncated_handlers)

    def to_json_dict(self, canonical_path: Optional[str] = None
                     ) -> Dict[str, object]:
        """Stable JSON form (sorted keys, no line numbers: the committed
        tables must not churn when unrelated code above them moves)."""
        return {
            "schema": self.SCHEMA,
            "fabric": self.fabric_kind,
            "class": self.class_name,
            "module": canonical_path if canonical_path is not None
            else self.path,
            "truncated_handlers": sorted(self.truncated_handlers),
            "transitions": [t.to_dict()
                            for t in self.sorted_transitions()],
        }

    def to_json(self, canonical_path: Optional[str] = None) -> str:
        return json.dumps(self.to_json_dict(canonical_path),
                          indent=2, sort_keys=True) + "\n"


def render_tables(tables: Sequence[TransitionTable]) -> str:
    """Human-readable multi-table summary for ``--protocol`` text mode."""
    lines: List[str] = []
    for table in tables:
        lines.append(f"{table.fabric_kind} ({table.class_name}, "
                     f"{table.path}): "
                     f"{len(table.transitions)} transition(s)")
        for transition in table.sorted_transitions():
            grants = transition.grant_states()
            suffix = f" -> {{{', '.join(sorted(grants))}}}" if grants \
                else ""
            lines.append(
                f"  {transition.stimulus:<9} {transition.variant:<9} "
                f"{transition.outcome:<5} "
                f"[{len(transition.paths)} path(s)]{suffix}")
        if table.truncated:
            lines.append("  (truncated: "
                         f"{', '.join(sorted(table.truncated_handlers))})")
    return "\n".join(lines)


__all__ = [
    "DESTRUCTIVE_EFFECTS", "GuardAtom", "NETWORK_METHODS",
    "PORT_METHODS", "STATE_ATTRS", "STICKY_OBLIGATION_EFFECTS",
    "Transition", "TransitionPath", "TransitionTable", "render_tables",
]
