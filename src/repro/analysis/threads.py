"""Thread-safety lockset inference for threaded Python classes.

This pass looks at real ``threading`` code — the service layer in
:mod:`repro.svc` — rather than workload DSL programs. It follows the
Eraser discipline: for every shared attribute, the *candidate lockset*
is the intersection of the locks held across all of its accesses; an
attribute written outside ``__init__``, reachable from two different
thread roots, whose candidate lockset is empty, is convicted (RC004).
Nested lock acquisitions additionally feed a global lock-order graph
whose cycles are reported as potential deadlocks (RC003).

**Seeding and roots.** Classes defined in modules that import
``threading`` are *seed* classes; classes they construct into
attributes (``self.fleet = WorkerFleet(...)``) are pulled in
transitively. Thread roots are (a) every ``threading.Thread(target=
self._m)`` target, and (b) the ``api`` pseudo-root covering the public
methods of seed classes (any caller thread — HTTP handler threads in
this repo). Accesses reachable *only* through ``__init__`` chains are
exempt: construction happens-before sharing.

**Guard tracking.** Locks are attributes initialized from
``threading.Lock``/``RLock``/``Condition``/``Semaphore`` (or unknown
constructor-injected values used as context managers). A lock is held
lexically inside ``with self.lock:`` and, flow-sensitively, between
``.acquire()`` and ``.release()`` along all CFG paths (must-analysis,
meet = intersection). Private-method entry locksets are inferred
interprocedurally as the intersection of held-sets at in-project call
sites, iterated to a fixpoint.

**Exemptions** (documented in ``docs/analysis.md``): synchronization
primitives themselves; ``queue.Queue`` family; the GIL-atomic
single-element ``deque`` operations; attribute accesses on local
variables (only ``self.<attr>`` chains are tracked); and per-instance
sub-object internals reached through untracked containers.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (ATOMIC_CONTAINER_CONSTRUCTORS,
                                      SYNC_CONSTRUCTORS, ClassInfo,
                                      FunctionInfo, Project)
from repro.analysis.cfg import CFG, dataflow_forward
from repro.analysis.findings import Finding

#: Method names that mutate their receiver (containers).
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "pop",
    "popleft", "popitem", "remove", "discard", "add", "clear", "update",
    "setdefault", "sort", "reverse", "rotate", "put", "put_nowait",
})

#: ``deque`` methods that are atomic under the GIL.
_DEQUE_ATOMIC = frozenset({
    "append", "appendleft", "pop", "popleft", "extend", "extendleft",
    "rotate", "clear",
})

_API_ROOT = "api"
_INIT_ROOT = "<init>"


def _self_attr(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Attribute) and \
            isinstance(expr.value, ast.Name) and expr.value.id == "self":
        return expr.attr
    return None


def _ctor_name(value: Optional[ast.AST]) -> Optional[str]:
    """Constructor name of ``self.x = Name(...)`` / ``mod.Name(...)``."""
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


class _Access:
    __slots__ = ("kind", "line", "held", "method", "exempt")

    def __init__(self, kind: str, line: int, held: FrozenSet[str],
                 method: FunctionInfo, exempt: bool) -> None:
        self.kind = kind  # "read" | "write"
        self.line = line
        self.held = held
        self.method = method
        self.exempt = exempt


class ThreadAnalyzer:
    """RC003/RC004 over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.seed_classes: List[ClassInfo] = []
        self.analyzed: List[ClassInfo] = []
        self.findings: List[Finding] = []
        #: method qualname -> root labels reaching it (init excluded)
        self._roots: Dict[str, Set[str]] = {}
        self._init_only: Set[str] = set()
        #: method qualname -> inferred entry lockset
        self._entry: Dict[str, FrozenSet[str]] = {}
        #: lock-order edges: (held, acquired) -> (path, line)
        self._order_edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    # -- top level ---------------------------------------------------------

    def run(self) -> List[Finding]:
        self._select_classes()
        if not self.analyzed:
            return []
        self._compute_roots()
        self._infer_entry_locksets()
        self._collect_and_convict()
        self._check_lock_order()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    def _select_classes(self) -> None:
        for module in self.project.modules:
            if not module.imports_threading:
                continue
            self.seed_classes.extend(module.classes.values())
        pulled: Dict[str, ClassInfo] = {
            cls.qualname: cls for cls in self.seed_classes}
        frontier = list(self.seed_classes)
        while frontier:
            cls = frontier.pop()
            for type_name in cls.attr_types.values():
                target = self.project.resolve_class(type_name, cls.module)
                if target is not None and \
                        target.qualname not in pulled:
                    pulled[target.qualname] = target
                    frontier.append(target)
        self.analyzed = list(pulled.values())

    # -- roots -------------------------------------------------------------

    def _public(self, method: FunctionInfo) -> bool:
        name = method.name
        if name == "__call__":
            return True
        return not name.startswith("_")

    def _compute_roots(self) -> None:
        entries: Dict[str, List[FunctionInfo]] = {_API_ROOT: []}
        for cls in self.seed_classes:
            for method in cls.methods.values():
                if self._public(method):
                    entries[_API_ROOT].append(method)
            for target in cls.thread_targets:
                label = f"thread:{target.qualname}"
                entries.setdefault(label, []).append(target)
        init_entries = [cls.methods["__init__"] for cls in self.analyzed
                        if "__init__" in cls.methods]

        for label, fns in entries.items():
            for module_name, qualname in self.project.reachable(fns):
                self._roots.setdefault(qualname, set()).add(label)
        for _module, qualname in self.project.reachable(init_entries):
            if qualname not in self._roots:
                self._init_only.add(qualname)

    # -- lock identification ----------------------------------------------

    def _attr_ctor(self, cls: ClassInfo, attr: str) -> Optional[str]:
        return _ctor_name(cls.attr_init_values.get(attr))

    def _is_sync_attr(self, cls: ClassInfo, attr: str) -> bool:
        ctor = self._attr_ctor(cls, attr)
        if ctor in SYNC_CONSTRUCTORS:
            return True
        # Constructor-injected lock: unknown init value but used as a
        # bare ``with self.attr:`` context manager somewhere in the
        # class — treat as a lock.
        if attr not in cls.attr_init_values:
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            if _self_attr(item.context_expr) == attr:
                                return True
        return False

    def _lock_symbol(self, cls: ClassInfo, expr: ast.AST) -> Optional[str]:
        """Canonical name of a lock expression inside ``cls`` methods."""
        attr = _self_attr(expr)
        if attr is not None and self._is_sync_attr(cls, attr):
            return f"{cls.name}.{attr}"
        # ``self.sub.lock`` via a typed attribute.
        if isinstance(expr, ast.Attribute):
            base_attr = _self_attr(expr.value)
            if base_attr is not None:
                type_name = cls.attr_types.get(base_attr)
                if type_name is not None:
                    target = self.project.resolve_class(
                        type_name, cls.module)
                    if target is not None and \
                            self._is_sync_attr(target, expr.attr):
                        return f"{target.name}.{expr.attr}"
        return None

    # -- held-lock computation --------------------------------------------

    def _held_map(self, method: FunctionInfo,
                  entry: FrozenSet[str]) -> Dict[int, FrozenSet[str]]:
        """id(element) -> locks held when the element executes."""
        cls = method.cls
        assert cls is not None
        cfg = CFG(method.node)

        def transfer(state, elem):
            if state is None:
                return None
            held = set(state)
            for node in ast.walk(elem) if not isinstance(
                    elem, (ast.With, ast.AsyncWith)) else []:
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute):
                    symbol = self._lock_symbol(cls, node.func.value)
                    if symbol is None:
                        continue
                    if node.func.attr == "acquire":
                        held.add(symbol)
                    elif node.func.attr == "release":
                        held.discard(symbol)
            return frozenset(held)

        def meet(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return a & b

        states = dataflow_forward(
            cfg, init=None, entry_state=entry, transfer=transfer,
            meet=meet, equals=lambda a, b: a == b)

        # Per-element flow state (linear scan inside each block), then
        # union with the lexical ``with`` stack.
        flow: Dict[int, FrozenSet[str]] = {}
        for block in cfg.blocks:
            state = states.get(block.index)
            for elem in block.elements:
                flow[id(elem)] = (entry if state is None
                                  else frozenset(state))
                state = transfer(state, elem)

        lexical: Dict[int, Set[str]] = {}

        def descend(stmts: Sequence[ast.stmt],
                    stack: FrozenSet[str]) -> None:
            for stmt in stmts:
                lexical[id(stmt)] = set(stack)
                # If/While contribute their *test* expression as the
                # CFG element; register it under the same stack.
                test = getattr(stmt, "test", None)
                if test is not None:
                    lexical[id(test)] = set(stack)
                inner = stack
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    acquired = set()
                    for item in stmt.items:
                        symbol = self._lock_symbol(cls, item.context_expr)
                        if symbol is not None:
                            acquired.add(symbol)
                    inner = stack | frozenset(acquired)
                for field in ("body", "orelse", "finalbody"):
                    descend(getattr(stmt, field, []) or [], inner)
                for handler in getattr(stmt, "handlers", []) or []:
                    lexical[id(handler)] = set(inner)
                    descend(handler.body, inner)

        descend(method.node.body, frozenset())

        out: Dict[int, FrozenSet[str]] = {}
        for elem in cfg.elements():
            held = set(flow.get(id(elem), entry))
            held |= lexical.get(id(elem), set())
            out[id(elem)] = frozenset(held)
        self._cfg_cache = cfg
        return out

    # -- interprocedural entry locksets ------------------------------------

    def _infer_entry_locksets(self) -> None:
        methods = [m for cls in self.analyzed for m in cls.methods.values()]
        for method in methods:
            self._entry[method.qualname] = frozenset()
        for _round in range(4):
            callsite_held: Dict[str, Optional[FrozenSet[str]]] = {}
            for method in methods:
                qualname = method.qualname
                if qualname not in self._roots and \
                        qualname not in self._init_only:
                    continue
                held_map = self._held_map(
                    method, self._entry[qualname])
                cfg = self._cfg_cache
                for elem in cfg.elements():
                    held = held_map[id(elem)]
                    for node in (ast.walk(elem) if not isinstance(
                            elem, (ast.With, ast.AsyncWith)) else
                            _with_head_nodes(elem)):
                        if not isinstance(node, ast.Call):
                            continue
                        for callee in self.project.resolve_call(
                                node, method):
                            key = callee.qualname
                            prev = callsite_held.get(key)
                            callsite_held[key] = (
                                held if prev is None else prev & held)
            changed = False
            for method in methods:
                if self._public(method) or method.name == "__init__":
                    continue
                if any(method in cls.thread_targets
                       for cls in self.seed_classes):
                    continue
                inferred = callsite_held.get(method.qualname)
                if inferred and inferred != self._entry[method.qualname]:
                    self._entry[method.qualname] = inferred
                    changed = True
            if not changed:
                break

    # -- access extraction -------------------------------------------------

    def _collect_and_convict(self) -> None:
        accesses: Dict[Tuple[str, str], List[_Access]] = {}
        class_of: Dict[str, ClassInfo] = {}
        for cls in self.analyzed:
            for method in cls.methods.values():
                qualname = method.qualname
                roots = self._roots.get(qualname)
                if not roots:
                    continue  # unreached or init-only: exempt
                held_map = self._held_map(
                    method, self._entry.get(qualname, frozenset()))
                cfg = self._cfg_cache
                for elem in cfg.elements():
                    held = held_map[id(elem)]
                    for key, kind, line, exempt in self._element_accesses(
                            cls, elem):
                        # Eraser's first-thread exclusion: inside an
                        # object's own __init__, self (and sub-objects
                        # constructed there) are not yet published, so
                        # self.X accesses cannot race.
                        if method.name == "__init__":
                            exempt = True
                        class_of[key[0]] = self._owner(cls, key[0])
                        accesses.setdefault(key, []).append(_Access(
                            kind, line, held, method, exempt))
        self._roots_by_method = {
            qualname: roots for qualname, roots in self._roots.items()}
        for key in sorted(accesses):
            self._convict(key, accesses[key], class_of[key[0]])

    def _owner(self, cls: ClassInfo, name: str) -> ClassInfo:
        if cls.name == name:
            return cls
        found = self.project.resolve_class(name, cls.module)
        return found if found is not None else cls

    def _element_accesses(self, cls: ClassInfo, elem: ast.AST
                          ) -> List[Tuple[Tuple[str, str], str, int, bool]]:
        """(key=(class name, attr), kind, line, exempt) per element."""
        if isinstance(elem, (ast.With, ast.AsyncWith)):
            roots: List[ast.AST] = [i.context_expr for i in elem.items]
        elif isinstance(elem, (ast.For, ast.AsyncFor)):
            roots = [elem.target, elem.iter]
        elif isinstance(elem, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.ExceptHandler)):
            roots = []
        else:
            roots = [elem]
        out: List[Tuple[Tuple[str, str], str, int, bool]] = []
        for root in roots:
            parents: Dict[int, ast.AST] = {}
            for node in ast.walk(root):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            for node in ast.walk(root):
                access = self._classify(cls, node, parents)
                if access is not None:
                    out.append(access)
        return out

    def _resolve_receiver(self, cls: ClassInfo, node: ast.Attribute
                          ) -> Optional[Tuple[ClassInfo, str]]:
        """(owning class, attr) for ``self.X`` or ``self.typed.Y``."""
        attr = _self_attr(node)
        if attr is not None:
            return cls, attr
        base_attr = _self_attr(node.value)
        if base_attr is not None:
            type_name = cls.attr_types.get(base_attr)
            if type_name is not None:
                target = self.project.resolve_class(type_name, cls.module)
                if target is not None:
                    return target, node.attr
        return None

    def _classify(self, cls: ClassInfo, node: ast.AST,
                  parents: Dict[int, ast.AST]
                  ) -> Optional[Tuple[Tuple[str, str], str, int, bool]]:
        if not isinstance(node, ast.Attribute):
            return None
        resolved = self._resolve_receiver(cls, node)
        if resolved is None:
            return None
        owner, attr = resolved
        key = (owner.name, attr)
        ctor = self._attr_ctor(owner, attr)

        # Sync primitives are internally consistent; typed sub-object
        # bindings are wiring (re-assignments still register as writes
        # through the Store branch below).
        if self._is_sync_attr(owner, attr):
            return None

        parent = parents.get(id(node))
        if isinstance(node.ctx, ast.Store):
            if attr in owner.attr_types and owner is cls and \
                    _self_attr(node) is None:
                return None
            return key, "write", node.lineno, False
        if isinstance(node.ctx, ast.Del):
            return key, "write", node.lineno, False

        # Load context: a subscript store (``self.d[k] = v``) or a
        # mutating method call mutates the attribute's value.
        if isinstance(parent, ast.Subscript) and \
                isinstance(parent.ctx, (ast.Store, ast.Del)):
            return key, "write", node.lineno, False
        if isinstance(parent, ast.Attribute) and \
                isinstance(parents.get(id(parent)), ast.Call) and \
                parents[id(parent)].func is parent:
            # node is the receiver of a method call ``self.X.m(...)``.
            method_name = parent.attr
            if attr in owner.attr_types:
                return None  # call into a typed sub-object: a call edge
            if method_name in _MUTATING_METHODS:
                exempt = (ctor in ATOMIC_CONTAINER_CONSTRUCTORS
                          and method_name in _DEQUE_ATOMIC)
                return key, "write", node.lineno, exempt
            return key, "read", node.lineno, False
        if isinstance(parent, ast.Attribute):
            # Chained attribute read handled when classifying ``parent``.
            if attr in owner.attr_types:
                return None
        if isinstance(parent, ast.Call) and parent.func is node:
            # ``self._clock()`` / ``self._emit(...)``: invoking the
            # attribute reads the binding.
            return key, "read", node.lineno, False
        if attr in owner.attr_types and owner is cls and \
                _self_attr(node) is not None and \
                isinstance(parent, ast.Attribute):
            return None
        return key, "read", node.lineno, False

    # -- conviction --------------------------------------------------------

    def _convict(self, key: Tuple[str, str], acc: List[_Access],
                 owner: ClassInfo) -> None:
        live = [a for a in acc if not a.exempt]
        if not live:
            return
        roots: Set[str] = set()
        for a in live:
            roots |= self._roots_by_method.get(a.method.qualname, set())
        if len(roots) < 2:
            return
        writes = [a for a in live if a.kind == "write"]
        if not writes:
            return
        candidate = None
        for a in live:
            candidate = a.held if candidate is None else candidate & a.held
        if candidate:
            return
        offender = min(writes, key=lambda a: (len(a.held), a.line))
        cls_name, attr = key

        def held_desc(a: _Access) -> str:
            return ("{" + ", ".join(sorted(a.held)) + "}" if a.held
                    else "no lock")

        other = next((a for a in live if a is not offender), offender)
        self.findings.append(Finding(
            path=owner.module.path, line=offender.line, rule="RC004",
            message=(f"attribute '{attr}' of {cls_name} is written in "
                     f"{offender.method.name}() holding "
                     f"{held_desc(offender)} but also accessed in "
                     f"{other.method.name}() holding {held_desc(other)}; "
                     f"reachable from {', '.join(sorted(roots))} with no "
                     "common lock"),
            fixit=(f"guard every access to '{attr}' with one lock "
                   "(candidate lockset is empty)"),
            context=f"{cls_name}.{attr}"))

    # -- lock ordering -----------------------------------------------------

    def _check_lock_order(self) -> None:
        for cls in self.analyzed:
            for method in cls.methods.values():
                qualname = method.qualname
                if qualname not in self._roots and \
                        qualname not in self._init_only:
                    continue
                entry = self._entry.get(qualname, frozenset())
                self._order_edges_for(cls, method, entry)
        graph: Dict[str, Set[str]] = {}
        for (src, dst) in self._order_edges:
            graph.setdefault(src, set()).add(dst)
        for cycle in self._find_cycles(graph):
            edge = (cycle[0], cycle[1])
            path, line = self._order_edges[edge]
            chain = " -> ".join(cycle + (cycle[0],))
            self.findings.append(Finding(
                path=path, line=line, rule="RC003",
                message=(f"lock acquisition order cycle: {chain}; two "
                         "threads taking these locks in opposite order "
                         "deadlock"),
                fixit="impose a single global acquisition order",
                context=cycle[0]))

    def _order_edges_for(self, cls: ClassInfo, method: FunctionInfo,
                         entry: FrozenSet[str]) -> None:
        held_map = self._held_map(method, entry)
        cfg = self._cfg_cache
        for elem in cfg.elements():
            held = held_map[id(elem)]
            acquired: List[Tuple[str, int]] = []
            if isinstance(elem, (ast.With, ast.AsyncWith)):
                for item in elem.items:
                    symbol = self._lock_symbol(cls, item.context_expr)
                    if symbol is not None:
                        acquired.append((symbol, elem.lineno))
            else:
                for node in ast.walk(elem):
                    if isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Attribute) and \
                            node.func.attr == "acquire":
                        symbol = self._lock_symbol(cls, node.func.value)
                        if symbol is not None:
                            acquired.append((symbol, node.lineno))
            stack = set(held)
            for symbol, line in acquired:
                for prior in stack:
                    if prior != symbol:
                        self._order_edges.setdefault(
                            (prior, symbol),
                            (cls.module.path, line))
                stack.add(symbol)

    def _find_cycles(self, graph: Dict[str, Set[str]]
                     ) -> List[Tuple[str, ...]]:
        cycles: List[Tuple[str, ...]] = []
        seen_cycles: Set[FrozenSet[str]] = set()

        def dfs(node: str, path: List[str], on_path: Set[str],
                visited: Set[str]) -> None:
            visited.add(node)
            on_path.add(node)
            path.append(node)
            for succ in sorted(graph.get(node, ())):
                if succ in on_path:
                    start = path.index(succ)
                    cycle = tuple(path[start:])
                    key = frozenset(cycle)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        # Canonical rotation: start at the smallest.
                        pivot = cycle.index(min(cycle))
                        cycles.append(cycle[pivot:] + cycle[:pivot])
                elif succ not in visited:
                    dfs(succ, path, on_path, visited)
            path.pop()
            on_path.discard(node)

        visited: Set[str] = set()
        for node in sorted(graph):
            if node not in visited:
                dfs(node, [], set(), visited)
        return cycles


def _with_head_nodes(elem: ast.AST) -> List[ast.AST]:
    out: List[ast.AST] = []
    for item in elem.items:
        out.extend(ast.walk(item.context_expr))
    return out


def analyze_threads(project: Project) -> List[Finding]:
    """RC003/RC004 findings for a project's threaded classes."""
    return ThreadAnalyzer(project).run()


__all__ = ["ThreadAnalyzer", "analyze_threads"]
