"""Eraser-style lockset + section-consistency analysis for workloads.

Workload programs (:meth:`repro.workloads.base.Workload.program`) are
generators yielding :class:`Section` objects whose ``ops`` touch
symbolic shared addresses. Two whole-program properties are invisible
to the per-section VR001 check and are what this pass convicts:

``RC001`` **inconsistent guard sets.** The same shared location is
    accessed under different locks in different sections (or under a
    lock in one and bare in another — including bare *reads*, which
    VR001 never flags). Under the paper's critical-section-to-
    transaction conversion both modes race.

``RC002`` **stale read across a section boundary.** A location is
    read in one atomic section and (plain-)stored in a *later* one:
    the write may be based on a value that other threads changed
    between the sections. ``Op.incr``/``Op.swap`` are exempt — they
    are self-contained read-modify-writes.

Locations are resolved through intraprocedural reaching definitions
(``panel = self.panels[thread_index]`` resolves through ``panel``) and
through helper calls (``ops=self._mk_tx(thread_index, rng)`` follows
into the helper with the thread-index binding propagated). Locations
indexed by the program's thread index are thread-private and dropped;
locations the resolver cannot symbolize are skipped — conservative in
the no-false-positive direction.

``Op.call`` closures are *not* analyzed (their function bodies execute
against the raw core API, not the ``Op`` vocabulary); workloads built
entirely from ``Op.call`` get no RC001/RC002 coverage. Documented in
``docs/analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, Param, ReachingDefs, element_value
from repro.analysis.findings import Finding

#: Op constructor names that read/write memory.
_READ_OPS = frozenset({"load"})
_WRITE_OPS = frozenset({"store", "incr", "swap"})
#: Atomic read-modify-writes: exempt from the RC002 stale-read rule.
_RMW_OPS = frozenset({"incr", "swap"})

#: Parameter names always treated as the thread index.
_THREAD_PARAM_NAMES = frozenset({"thread_index", "thread_id", "tid"})

_MAX_HELPER_DEPTH = 3


class _Scope:
    """Module-level name resolution: functions and class methods."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.methods: Dict[str, Dict[str, ast.FunctionDef]] = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                table: Dict[str, ast.FunctionDef] = {}
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        table[item.name] = item
                self.methods[node.name] = table

    def resolve(self, call: ast.Call,
                cls: Optional[str]) -> Optional[ast.FunctionDef]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self" and cls):
            return self.methods.get(cls, {}).get(func.attr)
        return None


class _FnCtx:
    """One analyzed function: CFG, reaching defs, thread-name set."""

    def __init__(self, node: ast.FunctionDef,
                 thread_names: Set[str]) -> None:
        self.node = node
        self.cfg = CFG(node)
        self.rdefs = ReachingDefs(self.cfg)
        self.thread_names = set(thread_names)
        self._elem_of: Dict[int, ast.AST] = {}
        for elem in self.cfg.elements():
            if isinstance(elem, (ast.With, ast.AsyncWith)):
                heads: List[ast.AST] = [
                    item.context_expr for item in elem.items]
            elif isinstance(elem, (ast.For, ast.AsyncFor)):
                heads = [elem.target, elem.iter]
            elif isinstance(elem, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef, ast.ExceptHandler)):
                heads = []
            else:
                heads = [elem]
            for head in heads:
                for sub in ast.walk(head):
                    self._elem_of.setdefault(id(sub), elem)

    def elem_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self._elem_of.get(id(node))

    def mentions_thread(self, expr: ast.AST, depth: int = 0) -> bool:
        """Whether an expression derives from the thread index."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                if node.id in self.thread_names:
                    return True
                if depth < 2:
                    at = self.elem_of(expr)
                    if at is not None:
                        for definition in self.rdefs.resolve(node.id, at):
                            if isinstance(definition, Param):
                                continue
                            value = element_value(definition, node.id)
                            if value is not None and \
                                    self.mentions_thread(value, depth + 1):
                                return True
        return False


class _Access:
    __slots__ = ("kind", "line", "section", "guard")

    def __init__(self, kind: str, line: int, section: ast.Call,
                 guard: Optional[str]) -> None:
        self.kind = kind
        self.line = line
        self.section = section
        self.guard = guard


def _thread_names_for(node: ast.FunctionDef, is_method: bool) -> Set[str]:
    names = [a.arg for a in node.args.args]
    if is_method and names and names[0] == "self":
        names = names[1:]
    out = {n for n in names if n in _THREAD_PARAM_NAMES}
    # ``program(self, thread_index, rng)``: positional convention.
    if node.name == "program" and names:
        out.add(names[0])
    return out


def _self_attr(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Attribute) and \
            isinstance(expr.value, ast.Name) and expr.value.id == "self":
        return expr.attr
    return None


class WorkloadAnalyzer:
    """RC001/RC002 over one workload module."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.tree = tree
        self.path = path
        self.scope = _Scope(tree)
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        for cls_name, program in self._programs():
            self._analyze_program(cls_name, program)
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    # -- program discovery -------------------------------------------------

    def _programs(self) -> List[Tuple[Optional[str], ast.FunctionDef]]:
        out: List[Tuple[Optional[str], ast.FunctionDef]] = []

        def is_program(fn: ast.FunctionDef) -> bool:
            has_yield = False
            has_section = False
            for node in ast.walk(fn):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    has_yield = True
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Name) and \
                        node.func.id == "Section":
                    has_section = True
            return has_yield and has_section

        for node in self.tree.body:
            if isinstance(node, ast.FunctionDef) and is_program(node):
                out.append((None, node))
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef) and \
                            is_program(item):
                        out.append((node.name, item))
        return out

    # -- per-program analysis ---------------------------------------------

    def _analyze_program(self, cls: Optional[str],
                         program: ast.FunctionDef) -> None:
        ctx = _FnCtx(program, _thread_names_for(program, cls is not None))
        context = f"{cls}.{program.name}" if cls else program.name
        sections = [node for node in ast.walk(program)
                    if isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "Section"]

        accesses: Dict[str, List[_Access]] = {}
        for section in sections:
            guard = self._guard_symbol(section, ctx)
            ops_expr = self._section_ops(section)
            if ops_expr is None:
                continue
            for kind, line, keys in self._collect_ops(
                    ops_expr, ctx, cls, depth=0, seen=set()):
                for key, private in keys:
                    if private:
                        continue
                    accesses.setdefault(key, []).append(
                        _Access(kind, line, section, guard))

        self._check_rc001(accesses, context)
        self._check_rc002(accesses, ctx, context)

    def _section_ops(self, section: ast.Call) -> Optional[ast.AST]:
        for kw in section.keywords:
            if kw.arg == "ops":
                return kw.value
        if section.args:
            return section.args[0]
        return None

    def _guard_symbol(self, section: ast.Call,
                      ctx: _FnCtx) -> Optional[str]:
        lock: Optional[ast.AST] = None
        for kw in section.keywords:
            if kw.arg == "lock":
                lock = kw.value
        if len(section.args) >= 2:
            lock = section.args[1]
        if lock is None or (isinstance(lock, ast.Constant)
                            and lock.value is None):
            return None
        return self._lock_name(lock, ctx, depth=0)

    def _lock_name(self, lock: ast.AST, ctx: _FnCtx,
                   depth: int) -> Optional[str]:
        attr = _self_attr(lock)
        if attr is not None:
            return attr
        if isinstance(lock, ast.Subscript):
            base = self._lock_name(lock.value, ctx, depth)
            if base is None:
                return "<lock>"
            index = lock.slice
            if ctx.mentions_thread(index):
                return f"{base}[thread]"
            return f"{base}[]"
        if isinstance(lock, ast.Name) and depth < 2:
            at = ctx.elem_of(lock)
            if at is not None:
                for definition in ctx.rdefs.resolve(lock.id, at):
                    value = element_value(definition, lock.id)
                    if value is not None:
                        resolved = self._lock_name(value, ctx, depth + 1)
                        if resolved is not None:
                            return resolved
            return lock.id
        return "<lock>"

    # -- op collection ----------------------------------------------------

    def _collect_ops(self, expr: ast.AST, ctx: _FnCtx,
                     cls: Optional[str], depth: int, seen: Set[int]
                     ) -> List[Tuple[str, int, List[Tuple[str, bool]]]]:
        """(op kind, line, [(location key, thread-private)]) tuples."""
        out: List[Tuple[str, int, List[Tuple[str, bool]]]] = []
        if depth > _MAX_HELPER_DEPTH:
            return out
        if isinstance(expr, (ast.List, ast.Tuple)):
            out.extend(self._ops_in(expr, ctx))
            # Helper calls may still hide inside literal elements.
            for node in ast.walk(expr):
                if isinstance(node, ast.Call) and node is not expr:
                    target = self.scope.resolve(node, cls)
                    if target is not None:
                        out.extend(self._enter_helper(
                            node, target, ctx, cls, depth, seen))
            return out
        if isinstance(expr, ast.Call):
            target = self.scope.resolve(expr, cls)
            if target is not None:
                return self._enter_helper(expr, target, ctx, cls,
                                          depth, seen)
            return self._ops_in(expr, ctx)
        if isinstance(expr, ast.Name):
            at = ctx.elem_of(expr)
            if at is not None:
                for definition in ctx.rdefs.resolve(expr.id, at):
                    value = element_value(definition, expr.id)
                    if value is not None and id(value) not in seen:
                        seen.add(id(value))
                        out.extend(self._collect_ops(
                            value, ctx, cls, depth + 1, seen))
            # Flow-insensitive: pick up list builds via .append/.extend.
            for node in ast.walk(ctx.node):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("append", "extend",
                                               "insert")
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == expr.id):
                    out.extend(self._ops_in(node, ctx))
            return out
        return self._ops_in(expr, ctx)

    def _enter_helper(self, call: ast.Call, target: ast.FunctionDef,
                      ctx: _FnCtx, cls: Optional[str], depth: int,
                      seen: Set[int]
                      ) -> List[Tuple[str, int, List[Tuple[str, bool]]]]:
        if id(target) in seen:
            return []
        seen.add(id(target))
        # Propagate the thread-index binding: a formal parameter whose
        # actual argument derives from the thread index is itself a
        # thread name inside the helper.
        params = [a.arg for a in target.args.args]
        if params and params[0] == "self":
            params = params[1:]
        actuals = list(call.args)
        thread_names = _thread_names_for(target, is_method=True)
        for formal, actual in zip(params, actuals):
            if ctx.mentions_thread(actual):
                thread_names.add(formal)
        for kw in call.keywords:
            if kw.arg is not None and ctx.mentions_thread(kw.value):
                thread_names.add(kw.arg)
        helper_ctx = _FnCtx(target, thread_names)
        out: List[Tuple[str, int, List[Tuple[str, bool]]]] = []
        out.extend(self._ops_in(target, helper_ctx))
        for node in ast.walk(target):
            if isinstance(node, ast.Call):
                inner = self.scope.resolve(node, cls)
                if inner is not None and id(inner) not in seen:
                    out.extend(self._enter_helper(
                        node, inner, helper_ctx, cls, depth + 1, seen))
        return out

    def _ops_in(self, root: ast.AST, ctx: _FnCtx
                ) -> List[Tuple[str, int, List[Tuple[str, bool]]]]:
        out: List[Tuple[str, int, List[Tuple[str, bool]]]] = []
        for node in ast.walk(root):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "Op"):
                continue
            kind = node.func.attr
            if kind not in _READ_OPS and kind not in _WRITE_OPS:
                continue
            loc: Optional[ast.AST] = node.args[0] if node.args else None
            if loc is None:
                for kw in node.keywords:
                    if kw.arg in ("vaddr", "addr"):
                        loc = kw.value
            if loc is None:
                continue
            keys = self._symbolize(loc, ctx, depth=0)
            if keys:
                out.append((kind, node.lineno, keys))
        return out

    def _symbolize(self, expr: ast.AST, ctx: _FnCtx,
                   depth: int) -> List[Tuple[str, bool]]:
        """Symbolic (location key, thread-private) pairs for an address
        expression; empty when the resolver cannot decide."""
        if depth > 4:
            return []
        attr = _self_attr(expr)
        if attr is not None:
            return [(attr, False)]
        if isinstance(expr, ast.Subscript):
            bases = self._symbolize(expr.value, ctx, depth + 1)
            private_index = ctx.mentions_thread(expr.slice)
            out = []
            for base, private in bases:
                if private_index or private:
                    out.append((base, True))
                else:
                    out.append((f"{base}[]", False))
            return out
        if isinstance(expr, ast.Name):
            if expr.id in ctx.thread_names:
                return []
            at = ctx.elem_of(expr)
            out = []
            if at is not None:
                for definition in ctx.rdefs.resolve(expr.id, at):
                    if isinstance(definition, Param):
                        continue
                    value = element_value(definition, expr.id)
                    if value is not None:
                        out.extend(self._symbolize(value, ctx, depth + 1))
            return out
        if isinstance(expr, ast.BinOp):
            # Address arithmetic: ``self.base + offset``. One self
            # attribute in the tree names the region; a thread-derived
            # offset makes it private.
            attrs = {a for node in ast.walk(expr)
                     for a in [_self_attr(node)] if a is not None}
            if len(attrs) == 1:
                name = next(iter(attrs))
                return [(name, ctx.mentions_thread(expr))]
            return []
        return []

    # -- rules -------------------------------------------------------------

    def _check_rc001(self, accesses: Dict[str, List[_Access]],
                     context: str) -> None:
        for key in sorted(accesses):
            acc = accesses[key]
            guards = {a.guard for a in acc}
            if len(guards) < 2:
                continue
            if not any(a.kind in _WRITE_OPS for a in acc):
                continue
            if guards == {None}:
                continue  # purely unguarded writes are VR001's domain
            majority = max(guards,
                           key=lambda g: sum(1 for a in acc
                                             if a.guard == g))
            offender = next((a for a in acc if a.guard is None),
                            next(a for a in acc if a.guard != majority))

            def describe(guard: Optional[str]) -> str:
                lines = sorted({a.line for a in acc if a.guard == guard})
                where = ", ".join(str(ln) for ln in lines)
                label = (f"lock '{guard}'" if guard is not None
                         else "no lock")
                return f"{label} (line {where})"

            detail = "; ".join(describe(g) for g in sorted(
                guards, key=lambda g: (g is None, str(g))))
            self.findings.append(Finding(
                path=self.path, line=offender.line, rule="RC001",
                message=(f"shared location '{key}' is guarded "
                         f"inconsistently across sections: {detail}; "
                         "threads holding different locks (or none) do "
                         "not exclude each other, in TM or LOCKS mode"),
                fixit=(f"guard every section that touches '{key}' with "
                       "the same lock"),
                context=context))

    def _check_rc002(self, accesses: Dict[str, List[_Access]],
                     ctx: _FnCtx, context: str) -> None:
        for key in sorted(accesses):
            acc = accesses[key]
            loads = [a for a in acc if a.kind in _READ_OPS]
            stores = [a for a in acc if a.kind == "store"]
            reported = False
            for load in loads:
                if reported:
                    break
                for store in stores:
                    if store.section is load.section:
                        continue
                    src = ctx.elem_of(load.section)
                    dst = ctx.elem_of(store.section)
                    if src is None or dst is None:
                        continue
                    if not ctx.cfg.element_reaches(src, dst):
                        continue
                    self.findings.append(Finding(
                        path=self.path, line=load.line, rule="RC002",
                        message=(f"'{key}' is read in the section at "
                                 f"line {load.section.lineno} and "
                                 f"stored in the later section at line "
                                 f"{store.section.lineno}; other "
                                 "threads can change it between the "
                                 "two, so the write may be based on a "
                                 "stale value"),
                        fixit=("merge the read and the write into one "
                               "atomic section, or re-read inside the "
                               "writing section (Op.incr/Op.swap are "
                               "self-contained and fine)"),
                        context=context))
                    reported = True
                    break


def analyze_workload_module(tree: ast.Module,
                            path: str) -> List[Finding]:
    """RC001/RC002 findings for one workload module."""
    return WorkloadAnalyzer(tree, path).run()


__all__ = ["WorkloadAnalyzer", "analyze_workload_module"]
