"""The analyzer's finding type and rule catalog.

:class:`Finding` is a superset of the linter's
:class:`~repro.verify.lint.LintFinding`: same rendering, plus the
enclosing-symbol ``context`` the baseline fingerprint needs to stay
stable when unrelated edits shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict

#: rule id -> one-line description for the concurrency passes
#: (``repro analyze``'s own rules; VR*/SR* ride along via the registry).
ANALYSIS_RULES: Dict[str, str] = {
    "RC001": "shared location guarded inconsistently across sections "
             "(lockset mismatch)",
    "RC002": "stale read: a value read in one atomic section guards a "
             "write in a later one",
    "RC003": "lock-acquisition-order cycle (potential deadlock)",
    "RC004": "shared attribute mutated without the lock that guards its "
             "other accesses",
}


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic."""

    path: str
    line: int
    rule: str
    message: str
    fixit: str
    context: str = ""
    baselined: bool = field(default=False, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message, "fixit": self.fixit,
                "context": self.context, "baselined": self.baselined}

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule} {self.message}"
                f" [fix: {self.fixit}]")

    def fingerprint(self) -> str:
        """Stable identity: rule + canonical path + symbol + message.

        Line numbers are deliberately excluded so unrelated edits above
        a finding do not churn the baseline.
        """
        basis = "\x1f".join((self.rule, canonical_path(self.path),
                             self.context, self.message))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


def canonical_path(path: str) -> str:
    """Repo-stable form of a path: from the ``repro`` package component
    onward when present, else the path as given (posix separators)."""
    parts = path.replace("\\", "/").split("/")
    for anchor in ("repro", "tests"):
        if anchor in parts[:-1]:
            return "/".join(parts[parts.index(anchor):])
    return "/".join(parts)


__all__ = ["ANALYSIS_RULES", "Finding", "canonical_path"]
