"""Plugin rule registry: one framework behind lint *and* analyze.

Every rule — the workload lint's VR000–VR005, the determinism
self-lint's SR000–SR003, and the concurrency passes' RC001–RC004 —
registers here as a plugin. Two plugin kinds exist:

* :class:`ModuleRule` — runs per module on a parsed AST (all VR/SR
  rules). The check functions are the *same objects* the pre-plugin
  linter used (``repro.verify.lint._check_vr001`` etc.), so
  ``repro lint`` output is byte-compatible by construction: the
  registry replays the original composition (parse -> checks in
  registration order -> suppression comments -> sort).
* :class:`ProjectRule` — runs once over a whole :class:`Project`
  (the RC concurrency passes, which need cross-module call graphs).

Scopes pick which module rules apply where: ``workload`` modules get
VR rules, simulator (``self``) modules get SR rules. ``repro lint``
runs exactly one scope; ``repro analyze`` classifies each file and
runs the matching scope plus the project rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.callgraph import Project
from repro.analysis.findings import ANALYSIS_RULES, Finding
from repro.analysis.protospec import PROTOCOL_RULES
from repro.verify.lint import (LintFinding, RULES, _check_vr001,
                               _check_vr002, _check_vr003, _check_vr004,
                               _check_vr005, _is_suppressed,
                               _suppressions)

#: scope -> rule id used for unparsable files.
PARSE_ERROR_RULES = {"workload": "VR000", "self": "SR000"}


@dataclass(frozen=True)
class ModuleRule:
    """A per-module AST rule."""

    rule_id: str
    description: str
    scope: str  # "workload" | "self"
    check: Callable[[ast.Module, str], List[LintFinding]]


@dataclass(frozen=True)
class ProjectRule:
    """A whole-project rule (cross-module dataflow)."""

    rule_id: str
    description: str
    check: Callable[[Project], List[Finding]]


_MODULE_RULES: List[ModuleRule] = []
_PROJECT_RULES: List[ProjectRule] = []


def register_module_rule(rule: ModuleRule) -> ModuleRule:
    _MODULE_RULES.append(rule)
    return rule


def register_project_rule(rule: ProjectRule) -> ProjectRule:
    _PROJECT_RULES.append(rule)
    return rule


def module_rules(scope: str) -> List[ModuleRule]:
    return [r for r in _MODULE_RULES if r.scope == scope]


def project_rules() -> List[ProjectRule]:
    return list(_PROJECT_RULES)


def all_rules() -> Dict[str, str]:
    """Complete id -> description catalog across every plugin."""
    out: Dict[str, str] = dict(PARSE_ERROR_RULES_CATALOG)
    for rule in _MODULE_RULES:
        out[rule.rule_id] = rule.description
    out.update(ANALYSIS_RULES)  # each RC pass reports several rule ids
    out.update(PROTOCOL_RULES)  # the PC pass likewise reports four ids
    for rule in _PROJECT_RULES:
        out[rule.rule_id] = rule.description
    return out


def run_module_scope(scope: str, source: str,
                     path: str = "<string>") -> List[LintFinding]:
    """Parse + run one scope's module rules + suppressions + sort.

    This is the exact composition ``lint_source``/``selflint_source``
    used before the registry existed; both now delegate here.
    """
    error_rule = PARSE_ERROR_RULES[scope]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path=path, line=exc.lineno or 1,
                            rule=error_rule,
                            message=f"syntax error: {exc.msg}",
                            fixit="fix the syntax error")]
    findings: List[LintFinding] = []
    for rule in module_rules(scope):
        findings.extend(rule.check(tree, path))
    supp = _suppressions(source)
    kept = [f for f in findings if not _is_suppressed(f, supp)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------

PARSE_ERROR_RULES_CATALOG = {
    "VR000": RULES["VR000"],
    "SR000": "file does not parse",
}


def _register_builtin() -> None:
    from repro.verify.selflint import (SELF_RULES, _check_sr001,
                                       _check_sr002, _check_sr003)

    for rule_id, check in (("VR001", _check_vr001),
                           ("VR002", _check_vr002),
                           ("VR003", _check_vr003),
                           ("VR004", _check_vr004),
                           ("VR005", _check_vr005)):
        register_module_rule(ModuleRule(
            rule_id=rule_id, description=RULES[rule_id],
            scope="workload", check=check))
    for rule_id, check in (("SR001", _check_sr001),
                           ("SR002", _check_sr002),
                           ("SR003", _check_sr003)):
        register_module_rule(ModuleRule(
            rule_id=rule_id, description=SELF_RULES[rule_id],
            scope="self", check=check))

    from repro.analysis.locksets import analyze_workload_module
    from repro.analysis.threads import analyze_threads

    def _workload_pass(project: Project) -> List[Finding]:
        out: List[Finding] = []
        for module in project.modules:
            if _looks_like_workload(module.tree):
                out.extend(analyze_workload_module(module.tree,
                                                   module.path))
        return out

    register_project_rule(ProjectRule(
        rule_id="RC001", description=ANALYSIS_RULES["RC001"],
        check=_workload_pass))
    # RC002 rides on the RC001 pass and RC004 on the RC003 pass; the
    # catalog lists all four individually via ANALYSIS_RULES.
    register_project_rule(ProjectRule(
        rule_id="RC003", description=ANALYSIS_RULES["RC003"],
        check=analyze_threads))

    from repro.analysis.protocol import protocol_pass

    # PC002-PC004 ride on the PC001 pass; the catalog lists all four
    # individually via PROTOCOL_RULES.
    register_project_rule(ProjectRule(
        rule_id="PC001", description=PROTOCOL_RULES["PC001"],
        check=protocol_pass))


def _looks_like_workload(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "Section":
            return True
    return False


_register_builtin()

__all__ = ["ModuleRule", "PARSE_ERROR_RULES", "ProjectRule", "all_rules",
           "module_rules", "project_rules", "register_module_rule",
           "register_project_rule", "run_module_scope"]
