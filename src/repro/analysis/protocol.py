"""Protocol-conformance static analyzer (PC001–PC004).

This pass *extracts* each coherence fabric's transition relation from
its source — no execution — and checks it against the declarative spec
in :mod:`repro.analysis.protospec`. The extraction is a path-sensitive
abstract interpretation of the handler methods:

* each handler is enumerated once per **stimulus binding** (``request``
  under ``is_write=False`` is the GETS table row, under ``True`` the
  GETM row; ``l1_evicted`` under ``transactional=True/False`` the
  tx/plain rows);
* conditionals are **partially evaluated** under the binding plus a
  per-path environment of simple local assignments — concretizable
  tests prune, everything else forks the path with a
  :class:`~repro.analysis.protomodel.GuardAtom`;
* helper calls are resolved through
  :meth:`~repro.analysis.callgraph.Project.resolve_method_call`
  and either **spliced** (path-sensitively inlined; the protocol
  skeleton helpers in :data:`~repro.analysis.protospec.SPLICE_HELPERS`)
  or **summarized** (flattened to their effect set, which keeps the
  path count polynomial); a call to another *handler* becomes a
  ``cascade:<STIMULUS>`` effect — its own table row covers it;
* loops fork skip-or-once (set-membership loops carry no
  protocol-relevant iteration structure beyond "the body can run").

The result per fabric class is a
:class:`~repro.analysis.protomodel.TransitionTable` keyed by
``(stimulus, variant, outcome)`` — the identical key space the
model-checker coverage pass (:mod:`repro.mc.coverage`) observes
dynamically, which is what the ``--coverage`` fusion compares.

Soundness posture: the extractor over-approximates paths (forked guards
it cannot decide) and under-approximates nothing it can see textually;
the MC coverage fusion is the soundness self-test — any transition the
bounded model exercises that the extractor missed fails CI.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (ClassInfo, FunctionInfo, ModuleInfo,
                                      Project)
from repro.analysis.findings import Finding, canonical_path
from repro.analysis.protomodel import (DESTRUCTIVE_EFFECTS, GuardAtom,
                                       NETWORK_METHODS, PORT_METHODS,
                                       STATE_ATTRS,
                                       STICKY_OBLIGATION_EFFECTS,
                                       TransitionPath, TransitionTable)
from repro.analysis.protospec import (HandlerSpec, NONFORKING_TESTS,
                                      PC004_EXEMPT, SPLICE_HELPERS,
                                      StimulusBinding, fabric_kind_of,
                                      handlers_for, profiles_for,
                                      required_for, variant_of)

#: Per-handler-binding enumeration cap: beyond it the table is marked
#: truncated and PC001 (missing keys) is suppressed for the class.
PATH_CAP = 3000
_MAX_SPLICE_DEPTH = 6
_MAX_SUMMARY_DEPTH = 3
_MAX_ENV_DEPTH = 3

#: Set/dict mutators: receiving a mutation drops the receiver's
#: environment binding (its literal value is stale afterwards).
_MUTATING_METHODS = frozenset({
    "add", "update", "clear", "discard", "remove", "pop", "extend",
    "append", "insert", "setdefault", "difference_update",
})

#: method name -> state-effect verb (``setdefault`` mutates the env but
#: is not a protocol-visible state change: it installs the empty value).
_SET_METHOD_OPS = {
    "add": "add", "update": "add",
    "clear": "clear", "pop": "clear",
    "discard": "sub", "remove": "sub", "difference_update": "sub",
}

#: env values simple enough to substitute into guard-atom text.
_SUBST_NODES = (ast.Constant, ast.Name, ast.Attribute, ast.Compare,
                ast.BoolOp, ast.UnaryOp)


def _text(node: ast.AST) -> str:
    return " ".join(ast.unparse(node).split())


def _tokens(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            if isinstance(elt, ast.Starred):
                elt = elt.value
            out.extend(_target_names(elt))
        return out
    return []


def _recv_state_attr(node: ast.AST) -> Optional[str]:
    """State attribute a receiver expression denotes, if any.

    Covers ``entry.sticky``, bare local aliases (``sharers.add(...)``
    in the snooping grant applier), the snooping residency dicts
    (``self._owner``/``self._sharers``), and ``.get()/.setdefault()``
    chains over them.
    """
    if isinstance(node, ast.Attribute):
        if node.attr in STATE_ATTRS:
            return node.attr
        if node.attr == "_owner":
            return "owner"
        if node.attr == "_sharers":
            return "sharers"
        return None
    if isinstance(node, ast.Name):
        return node.id if node.id in STATE_ATTRS else None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in ("get", "setdefault"):
        return _recv_state_attr(node.func.value)
    if isinstance(node, ast.Subscript):
        return _recv_state_attr(node.value)
    return None


def _is_falsy_const(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and not node.value


def _mesi_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "MESI":
        return node.attr
    return None


def _body_of(fn: FunctionInfo) -> List[ast.stmt]:
    node = fn.node
    return list(getattr(node, "body", []) or [])


class _PathState:
    """One abstract path through a handler."""

    __slots__ = ("guards", "effects", "effect_set", "env", "trail",
                 "outcome", "done", "dropped", "loop_stop")

    def __init__(self, trail: Tuple[str, ...]) -> None:
        self.guards: List[GuardAtom] = []
        self.effects: List[str] = []
        self.effect_set: Set[str] = set()
        self.env: Dict[str, ast.AST] = {}
        self.trail = trail
        self.outcome: Optional[str] = None
        self.done = False
        self.dropped = False
        self.loop_stop = False

    def clone(self) -> "_PathState":
        other = _PathState(self.trail)
        other.guards = list(self.guards)
        other.effects = list(self.effects)
        other.effect_set = set(self.effect_set)
        other.env = dict(self.env)
        other.outcome = self.outcome
        other.done = self.done
        other.dropped = self.dropped
        other.loop_stop = self.loop_stop
        return other


class FabricExtraction:
    """One fabric class's extracted table plus PC002 branch evidence."""

    def __init__(self, module: ModuleInfo, cls: ClassInfo, kind: str,
                 table: TransitionTable) -> None:
        self.module = module
        self.cls = cls
        self.kind = kind
        self.table = table
        #: (handler, guard text, line) for branch arms dead on *every*
        #: enumerated path (the PC002 convictions).
        self.dead_arms: List[Tuple[str, str, int]] = []


class _Extractor:
    """Walks one fabric class's handlers into a transition table."""

    def __init__(self, project: Project, module: ModuleInfo,
                 cls: ClassInfo, kind: str) -> None:
        self.project = project
        self.module = module
        self.cls = cls
        self.kind = kind
        self.table = TransitionTable(kind, cls.name, module.path,
                                     cls.node.lineno)
        self.bindings: Dict[str, bool] = {}
        self._truncated = False
        #: handler names of this fabric kind -> their stimulus (calls
        #: between handlers become ``cascade:`` effects, not inlined).
        self._handler_stimulus = {
            spec.name: spec.stimuli[0].stimulus
            for spec in handlers_for(kind)}
        self._summary_cache: Dict[str, Set[str]] = {}
        #: branch-site (line, polarity) -> times entered / times the
        #: entry contradicted a stable earlier guard. A site that only
        #: ever contradicts is a dead arm (PC002).
        self._site_alive: Dict[Tuple[int, bool], int] = {}
        self._site_dead: Dict[Tuple[int, bool], Tuple[str, str, int]] = {}

    # -- driver ------------------------------------------------------------

    def extract(self) -> FabricExtraction:
        for spec in handlers_for(self.kind):
            self._extract_handler(spec)
        result = FabricExtraction(self.module, self.cls, self.kind,
                                  self.table)
        for site in sorted(self._site_dead):
            if self._site_alive.get(site, 0) == 0:
                text, handler, line = self._site_dead[site]
                result.dead_arms.append((handler, text, line))
        return result

    def _extract_handler(self, spec: HandlerSpec) -> None:
        fn = self.project.method_of(self.cls, spec.name)
        if fn is None:
            return
        for binding in spec.stimuli:
            self.bindings = dict(binding.bindings)
            self._truncated = False
            start = _PathState(trail=(spec.name,))
            states = self._walk_body(_body_of(fn), [start], 0)
            for st in states:
                if st.dropped:
                    continue
                outcome = st.outcome
                if outcome is None:
                    if spec.kind != "notify":
                        continue
                    outcome = "done"
                variant = binding.variant if binding.variant is not None \
                    else variant_of(self.kind, st.trail)
                self.table.add_path(TransitionPath(
                    stimulus=binding.stimulus, variant=variant,
                    outcome=outcome, guards=tuple(st.guards),
                    effects=tuple(st.effects), handlers=st.trail,
                    line=fn.node.lineno))
            if self._truncated and \
                    spec.name not in self.table.truncated_handlers:
                self.table.truncated_handlers.append(spec.name)

    # -- statement walking -------------------------------------------------

    def _walk_body(self, stmts: Sequence[ast.stmt],
                   states: List[_PathState],
                   depth: int) -> List[_PathState]:
        for stmt in stmts:
            advanced: List[_PathState] = []
            for st in states:
                if st.done or st.dropped or st.loop_stop:
                    advanced.append(st)
                else:
                    advanced.extend(self._walk_stmt(stmt, st, depth))
            states = advanced
            if len(states) > PATH_CAP:
                states = states[:PATH_CAP]
                self._truncated = True
        return states

    def _walk_stmt(self, stmt: ast.stmt, st: _PathState,
                   depth: int) -> List[_PathState]:
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, st, depth)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._walk_for(stmt, st, depth)
        if isinstance(stmt, ast.While):
            return self._walk_while(stmt, st, depth)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, st, depth)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr_effects(item.context_expr, st)
            return self._walk_body(stmt.body, [st], depth)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            st.loop_stop = True
            return [st]
        if isinstance(stmt, ast.Raise):
            st.done = True
            st.dropped = True
            return [st]
        call = self._delegation_call(stmt)
        if call is not None:
            target = self.project.resolve_method_call(call, self.cls)
            if target is not None and _body_of(target):
                return self._walk_delegation(stmt, target, st, depth)
        if isinstance(stmt, ast.Return):
            return self._walk_return(stmt, st)
        self._generic_stmt(stmt, st)
        return [st]

    @staticmethod
    def _delegation_call(stmt: ast.stmt) -> Optional[ast.Call]:
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            value = stmt.value
        elif isinstance(stmt, ast.Return):
            value = stmt.value
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(value, (ast.YieldFrom, ast.Yield)):
            value = value.value
        if isinstance(value, ast.Call):
            return value
        return None

    def _walk_delegation(self, stmt: ast.stmt, target: FunctionInfo,
                         st: _PathState, depth: int) -> List[_PathState]:
        stimulus = self._handler_stimulus.get(target.name)
        if stimulus is not None and target.name != st.trail[0]:
            # A handler invoking another handler: its effects belong to
            # that handler's own table row.
            self._add_effect(st, f"cascade:{stimulus}")
            out: List[_PathState] = [st]
        elif target.name in SPLICE_HELPERS and depth < _MAX_SPLICE_DEPTH:
            if target.name not in st.trail:
                st.trail = st.trail + (target.name,)
            out = self._walk_body(_body_of(target), [st], depth + 1)
            for sub in out:
                if not sub.dropped:
                    sub.done = False
        else:
            self._apply_summary(target, st)
            out = [st]
        if isinstance(stmt, ast.Assign):
            names = set()
            for tgt in stmt.targets:
                names.update(_target_names(tgt))
            for sub in out:
                for name in names:
                    sub.env.pop(name, None)
                self._invalidate(sub, names)
        elif isinstance(stmt, ast.Return):
            for sub in out:
                sub.done = True
        return out

    def _walk_if(self, stmt: ast.If, st: _PathState,
                 depth: int) -> List[_PathState]:
        self._expr_effects(stmt.test, st)
        if _text(stmt.test) in NONFORKING_TESTS:
            return self._walk_body(stmt.body, [st], depth)
        value, reduced = self._eval(stmt.test, st)
        if value is True:
            return self._walk_body(stmt.body, [st], depth)
        if value is False:
            return self._walk_body(stmt.orelse, [st], depth)
        text = _text(reduced)
        tokens = frozenset(_tokens(reduced))
        line = stmt.test.lineno
        other = st.clone()
        out = self._branch(stmt.body, st, text, True, tokens, line, depth)
        out += self._branch(stmt.orelse, other, text, False, tokens,
                            line, depth)
        return out

    def _branch(self, body: Sequence[ast.stmt], st: _PathState, text: str,
                polarity: bool, tokens: "frozenset",
                line: int, depth: int) -> List[_PathState]:
        site = (line, polarity)
        for guard in st.guards:
            if guard.text == text and guard.stable and \
                    guard.polarity != polarity:
                # Contradicts a still-valid earlier test on this path:
                # the combination is infeasible. Prune; PC002 convicts
                # the site only if *no* path ever enters it.
                if site not in self._site_dead:
                    self._site_dead[site] = (text, st.trail[-1], line)
                st.done = True
                st.dropped = True
                return [st]
        self._site_alive[site] = self._site_alive.get(site, 0) + 1
        if not any(g.text == text and g.polarity == polarity and g.stable
                   for g in st.guards):
            st.guards.append(GuardAtom(text, polarity, line, True, tokens))
        return self._walk_body(body, [st], depth)

    def _walk_for(self, stmt: ast.stmt, st: _PathState,
                  depth: int) -> List[_PathState]:
        self._expr_effects(stmt.iter, st)
        skip = st.clone()
        names = set(_target_names(stmt.target))
        for name in names:
            st.env.pop(name, None)
        self._invalidate(st, names)
        once = self._walk_body(stmt.body, [st], depth)
        for sub in once:
            sub.loop_stop = False
        if stmt.orelse:
            return once + self._walk_body(stmt.orelse, [skip], depth)
        return once + [skip]

    def _walk_while(self, stmt: ast.While, st: _PathState,
                    depth: int) -> List[_PathState]:
        self._expr_effects(stmt.test, st)
        value, _reduced = self._eval(stmt.test, st)
        if value is False:
            return self._walk_body(stmt.orelse, [st], depth)
        skip = None if value is True else st.clone()
        once = self._walk_body(stmt.body, [st], depth)
        for sub in once:
            sub.loop_stop = False
        out = once
        if skip is not None:
            out = out + (self._walk_body(stmt.orelse, [skip], depth)
                         if stmt.orelse else [skip])
        return out

    def _walk_try(self, stmt: ast.Try, st: _PathState,
                  depth: int) -> List[_PathState]:
        pre = st.clone()
        states = self._walk_body(stmt.body, [st], depth)
        for handler in stmt.handlers:
            states += self._walk_body(handler.body, [pre.clone()], depth)
        if stmt.orelse:
            states = self._walk_body(stmt.orelse, states, depth)
        if stmt.finalbody:
            states = self._walk_body(stmt.finalbody, states, depth)
        return states

    def _walk_return(self, stmt: ast.Return,
                     st: _PathState) -> List[_PathState]:
        if stmt.value is not None:
            self._expr_effects(stmt.value, st)
            self._note_return_value(stmt.value, st)
        st.done = True
        return [st]

    def _note_return_value(self, value: ast.AST, st: _PathState) -> None:
        if isinstance(value, ast.IfExp):
            decided, _ = self._eval(value.test, st)
            if decided is not False:
                self._note_return_value(value.body, st)
            if decided is not True:
                self._note_return_value(value.orelse, st)
            return
        if isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Name) and \
                value.func.id == "CoherenceResult":
            granted: Optional[bool] = None
            if value.args and isinstance(value.args[0], ast.Constant):
                granted = bool(value.args[0].value)
            for kw in value.keywords:
                if kw.arg == "granted" and \
                        isinstance(kw.value, ast.Constant):
                    granted = bool(kw.value.value)
            if granted is not None and st.outcome is None:
                st.outcome = "grant" if granted else "nack"
            return
        mesi = _mesi_name(value)
        if mesi is not None:
            self._add_effect(st, f"grant:{mesi}")

    # -- simple statements and effects -------------------------------------

    def _generic_stmt(self, stmt: ast.stmt, st: _PathState) -> None:
        if isinstance(stmt, ast.Assign):
            self._expr_effects(stmt.value, st)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, st)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr_effects(stmt.value, st)
                self._assign_target(stmt.target, stmt.value, st)
        elif isinstance(stmt, ast.AugAssign):
            self._expr_effects(stmt.value, st)
            self._augassign(stmt, st)
        elif isinstance(stmt, ast.Expr):
            self._expr_effects(stmt.value, st)
        elif isinstance(stmt, ast.Assert):
            self._expr_effects(stmt.test, st)

    def _assign_target(self, target: ast.AST, value: ast.AST,
                       st: _PathState) -> None:
        attr: Optional[str] = None
        if isinstance(target, ast.Attribute) and \
                target.attr in STATE_ATTRS:
            attr = target.attr
        elif isinstance(target, ast.Subscript):
            attr = _recv_state_attr(target.value)
        if attr is not None:
            verb = "clear" if _is_falsy_const(value) else "set"
            self._state_effect(st, verb, attr)
            return
        names = _target_names(target)
        if names:
            if len(names) == 1 and isinstance(target, ast.Name):
                st.env[names[0]] = self._resolved_value(value, st)
            else:
                for name in names:
                    st.env.pop(name, None)
            self._invalidate(st, set(names))

    def _resolved_value(self, value: ast.AST, st: _PathState) -> ast.AST:
        if isinstance(value, ast.IfExp):
            decided, _ = self._eval(value.test, st)
            if decided is True:
                return self._resolved_value(value.body, st)
            if decided is False:
                return self._resolved_value(value.orelse, st)
        return value

    def _augassign(self, stmt: ast.AugAssign, st: _PathState) -> None:
        target = stmt.target
        if isinstance(target, ast.Attribute) and \
                target.attr in STATE_ATTRS:
            verb = "sub" if isinstance(stmt.op, ast.Sub) else "add"
            self._state_effect(st, verb, target.attr)
        elif isinstance(target, ast.Name):
            st.env.pop(target.id, None)
            self._invalidate(st, {target.id})

    def _expr_effects(self, node: ast.AST, st: _PathState) -> None:
        """Record effects performed anywhere inside an expression (or
        a simple statement's value), resolving nested ``self`` helper
        calls to their effect summaries."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call_effects(sub, st)
            elif isinstance(sub, ast.AugAssign):
                self._augassign(sub, st)

    def _call_effects(self, call: ast.Call, st: _PathState) -> None:
        func = call.func
        resolved = self.project.resolve_method_call(call, self.cls)
        if resolved is not None:
            stimulus = self._handler_stimulus.get(resolved.name)
            if stimulus is not None and resolved.name != st.trail[0]:
                self._add_effect(st, f"cascade:{stimulus}")
            else:
                self._apply_summary(resolved, st)
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        # Counter bump: self._c_x.add(...)
        if func.attr == "add" and isinstance(receiver, ast.Attribute) \
                and receiver.attr.startswith("_c_"):
            self._add_effect(st, f"ctr:{receiver.attr}")
            return
        if func.attr in PORT_METHODS:
            self._add_effect(st, f"call:{func.attr}")
            return
        if func.attr in NETWORK_METHODS:
            for payload in self._msg_payloads(call, st):
                self._add_effect(st, f"msg:{payload}")
            return
        attr = _recv_state_attr(receiver)
        if attr is not None and func.attr in _SET_METHOD_OPS:
            self._state_effect(st, _SET_METHOD_OPS[func.attr], attr)
        if isinstance(receiver, ast.Name) and \
                func.attr in _MUTATING_METHODS:
            # The local's literal value is stale after a mutation.
            st.env.pop(receiver.id, None)
            self._invalidate(st, {receiver.id})

    def _msg_payloads(self, call: ast.Call,
                      st: _PathState) -> List[str]:
        for arg in reversed(call.args):
            values = self._str_values(arg, st, 0)
            if values:
                return values
        return []

    def _str_values(self, node: ast.AST, st: _PathState,
                    depth: int) -> List[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value]
        if isinstance(node, ast.Name) and depth < _MAX_ENV_DEPTH:
            bound = st.env.get(node.id)
            if bound is not None:
                return self._str_values(bound, st, depth + 1)
            return []
        if isinstance(node, ast.IfExp):
            decided, _ = self._eval(node.test, st)
            if decided is True:
                return self._str_values(node.body, st, depth)
            if decided is False:
                return self._str_values(node.orelse, st, depth)
            return (self._str_values(node.body, st, depth)
                    + self._str_values(node.orelse, st, depth))
        return []

    def _state_effect(self, st: _PathState, verb: str, attr: str) -> None:
        self._add_effect(st, f"{verb}:{attr}")
        self._invalidate(st, {attr, "_" + attr})

    def _add_effect(self, st: _PathState, effect: str) -> None:
        if effect not in st.effect_set:
            st.effect_set.add(effect)
            st.effects.append(effect)

    def _invalidate(self, st: _PathState, tokens: Set[str]) -> None:
        if not tokens:
            return
        for index, guard in enumerate(st.guards):
            if guard.stable and (guard.tokens & tokens):
                st.guards[index] = replace(guard, stable=False)

    # -- helper summaries --------------------------------------------------

    def _apply_summary(self, target: FunctionInfo,
                       st: _PathState) -> None:
        effects = self._summarize(target, frozenset({st.trail[0]}), 0)
        written: Set[str] = set()
        for effect in sorted(effects):
            self._add_effect(st, effect)
            verb, _, attr = effect.partition(":")
            if verb in ("set", "clear", "add", "sub"):
                written.update({attr, "_" + attr})
        self._invalidate(st, written)

    def _summarize(self, fn: FunctionInfo, visited: "frozenset",
                   depth: int) -> Set[str]:
        cached = self._summary_cache.get(fn.qualname)
        if cached is not None:
            return cached
        effects: Set[str] = set()
        visited = visited | {fn.name}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                resolved = self.project.resolve_method_call(node, self.cls)
                if resolved is not None:
                    stimulus = self._handler_stimulus.get(resolved.name)
                    if stimulus is not None:
                        effects.add(f"cascade:{stimulus}")
                    elif depth < _MAX_SUMMARY_DEPTH and \
                            resolved.name not in visited:
                        effects |= self._summarize(resolved, visited,
                                                   depth + 1)
                    continue
                effects |= self._flat_call_effects(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    effects |= self._flat_target_effects(target,
                                                         node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Attribute) and \
                        node.target.attr in STATE_ATTRS:
                    verb = "sub" if isinstance(node.op, ast.Sub) else "add"
                    effects.add(f"{verb}:{node.target.attr}")
        self._summary_cache[fn.qualname] = effects
        return effects

    def _flat_call_effects(self, call: ast.Call) -> Set[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return set()
        receiver = func.value
        if func.attr == "add" and isinstance(receiver, ast.Attribute) \
                and receiver.attr.startswith("_c_"):
            return {f"ctr:{receiver.attr}"}
        if func.attr in PORT_METHODS:
            return {f"call:{func.attr}"}
        if func.attr in NETWORK_METHODS:
            return {f"msg:{value}" for arg in call.args
                    for value in _const_strings(arg)}
        attr = _recv_state_attr(receiver)
        if attr is not None and func.attr in _SET_METHOD_OPS:
            return {f"{_SET_METHOD_OPS[func.attr]}:{attr}"}
        return set()

    @staticmethod
    def _flat_target_effects(target: ast.AST,
                             value: ast.AST) -> Set[str]:
        attr: Optional[str] = None
        if isinstance(target, ast.Attribute) and \
                target.attr in STATE_ATTRS:
            attr = target.attr
        elif isinstance(target, ast.Subscript):
            attr = _recv_state_attr(target.value)
        if attr is None:
            return set()
        verb = "clear" if _is_falsy_const(value) else "set"
        return {f"{verb}:{attr}"}

    # -- partial evaluation ------------------------------------------------

    def _eval(self, node: ast.AST, st: _PathState,
              depth: int = 0) -> Tuple[Optional[bool], ast.AST]:
        if isinstance(node, ast.Constant):
            return bool(node.value), node
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return bool(node.elts), node
        if isinstance(node, ast.Dict):
            return bool(node.keys), node
        if isinstance(node, ast.Name):
            if node.id in self.bindings:
                return self.bindings[node.id], node
            bound = st.env.get(node.id)
            if bound is not None and depth < _MAX_ENV_DEPTH:
                value, reduced = self._eval(bound, st, depth + 1)
                if value is not None:
                    return value, reduced
                if isinstance(bound, _SUBST_NODES):
                    return None, reduced
            return None, node
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            value, reduced = self._eval(node.operand, st, depth)
            if value is not None:
                return (not value), node
            if reduced is not node.operand:
                return None, ast.UnaryOp(op=ast.Not(), operand=reduced)
            return None, node
        if isinstance(node, ast.BoolOp):
            is_and = isinstance(node.op, ast.And)
            unknown: List[ast.AST] = []
            for operand in node.values:
                value, reduced = self._eval(operand, st, depth)
                if value is None:
                    unknown.append(reduced)
                elif is_and and value is False:
                    return False, node
                elif not is_and and value is True:
                    return True, node
            if not unknown:
                return is_and, node
            if len(unknown) == 1:
                return None, unknown[0]
            return None, ast.BoolOp(op=node.op, values=unknown)
        if isinstance(node, ast.IfExp):
            decided, _ = self._eval(node.test, st, depth)
            if decided is True:
                return self._eval(node.body, st, depth)
            if decided is False:
                return self._eval(node.orelse, st, depth)
            return None, node
        return None, node


# ---------------------------------------------------------------------------
# Public extraction + rule API
# ---------------------------------------------------------------------------

def extract_tables(project: Project) -> List[FabricExtraction]:
    """Extract a transition table from every fabric class in the
    project, in (path, definition) order."""
    out: List[FabricExtraction] = []
    for module in sorted(project.modules, key=lambda m: m.path):
        for cls in module.classes.values():
            kind = fabric_kind_of(cls.name, cls.methods)
            if kind is None:
                continue
            out.append(_Extractor(project, module, cls, kind).extract())
    return out


#: marker set computed from a transition's extracted effects; compared
#: against :data:`repro.analysis.protospec.STICKY_PROFILES` (PC003).
def profile_of(transition) -> Set[str]:
    union = transition.effect_union
    markers: Set[str] = set()
    if "add:sticky" in union:
        markers.add("STICKY_SET")
    if "add:sticky_chips" in union:
        markers.add("CHIP_STICKY_SET")
    if {"sub:sticky", "clear:sticky"} & union:
        markers.add("STICKY_DISCHARGE_GUARDED"
                    if "call:holds_transactional" in union
                    else "STICKY_DISCHARGE_UNGUARDED")
    if {"sub:sticky_chips", "clear:sticky_chips"} & union:
        markers.add("CHIP_STICKY_DISCHARGE")
    if "set:lost_info" in union:
        markers.add("LOST_INFO")
    if "set:must_check_all" in union:
        markers.add("CHECK_ALL")
    exclusive = [p for p in transition.paths
                 if "grant:EXCLUSIVE" in p.effects]
    # Only *stable* guards count: a sticky test whose operand was
    # mutated before the grant (the eager-E mutant's discharge block)
    # no longer protects the E decision.
    if exclusive:
        if all(any("sticky" in g.text and g.stable for g in p.guards)
               for p in exclusive):
            markers.add("E_STICKY_GUARDED")
        if all(any("holds_transactional" in g.text and g.stable
                   for g in p.guards)
               for p in exclusive):
            markers.add("E_SIG_GUARDED")
    return markers


def _key_text(key: Tuple[str, str, str]) -> str:
    return "/".join(key)


def check_extraction(extraction: FabricExtraction) -> List[Finding]:
    """PC001–PC004 over one fabric's extracted table."""
    findings: List[Finding] = []
    table = extraction.table
    kind = extraction.kind
    cls_name = extraction.cls.name
    path = extraction.module.path

    def finding(rule: str, line: int, message: str, fixit: str,
                context: str) -> None:
        findings.append(Finding(path=path, line=line, rule=rule,
                                message=message, fixit=fixit,
                                context=context))

    required = required_for(kind)
    missing_keys: Set[Tuple[str, str, str]] = set()
    if not table.truncated:
        for key in sorted(required):
            transition = table.get(key)
            if transition is None:
                missing_keys.add(key)
                finding(
                    "PC001", extraction.cls.node.lineno,
                    f"{kind} fabric '{cls_name}' has no "
                    f"({_key_text(key)}) transition",
                    f"add a handling path for the {_key_text(key)} "
                    "stimulus (see docs/analysis.md, protocol "
                    "conformance)",
                    cls_name)
                continue
            absent = required[key] - transition.effect_union
            if absent:
                finding(
                    "PC001", transition.line,
                    f"({_key_text(key)}) transition of {kind} fabric "
                    f"'{cls_name}' omits required action(s): "
                    f"{', '.join(sorted(absent))}",
                    "perform the required action on at least one "
                    "handling path",
                    cls_name)

    for handler, text, line in sorted(extraction.dead_arms):
        finding(
            "PC002", line,
            f"dead transition arm in {kind} fabric '{cls_name}': "
            f"condition '{text}' contradicts an earlier guard on every "
            "path reaching it",
            "remove the unreachable arm or fix the guard it "
            "contradicts",
            f"{cls_name}.{handler}")

    profiles = profiles_for(kind)
    for key in sorted(table.keys()):
        declared = profiles.get(key)
        if declared is None:
            continue
        transition = table.get(key)
        computed = profile_of(transition)
        if computed != frozenset(declared):
            extra = sorted(computed - declared)
            absent = sorted(declared - computed)
            parts = []
            if extra:
                parts.append(f"unexpected {', '.join(extra)}")
            if absent:
                parts.append(f"missing {', '.join(absent)}")
            finding(
                "PC003", transition.line,
                f"({_key_text(key)}) transition of {kind} fabric "
                f"'{cls_name}' diverges from the declared "
                f"sticky/discharge profile: {'; '.join(parts)}",
                "align the transition's sticky bookkeeping with the "
                "fabric's decoupling profile in protospec.py (or "
                "update the spec if the protocol legitimately changed)",
                cls_name)

    if kind not in PC004_EXEMPT:
        for key in sorted(table.keys()):
            transition = table.get(key)
            union = transition.effect_union
            if "call:holds_transactional" in union and \
                    (union & DESTRUCTIVE_EFFECTS) and \
                    not (union & STICKY_OBLIGATION_EFFECTS):
                finding(
                    "PC004", transition.line,
                    f"({_key_text(key)}) transition of {kind} fabric "
                    f"'{cls_name}' consults signatures and destroys "
                    "line state but neither discharges nor converts "
                    "the sticky obligation",
                    "record a sticky/lost-info/check-all obligation "
                    "for surviving signature coverage before dropping "
                    "the line state",
                    cls_name)

    return findings


def protocol_pass(project: Project) -> List[Finding]:
    """The registry entry point: extract + check every fabric class.

    Registered once under PC001; PC002–PC004 ride on the same pass
    (mirroring how RC002 rides on RC001)."""
    findings: List[Finding] = []
    for extraction in extract_tables(project):
        findings.extend(check_extraction(extraction))
    return findings


def tables_json(extractions: Sequence[FabricExtraction]
                ) -> Dict[str, Dict[str, object]]:
    """``--dump-table`` payload: fabric kind -> stable table dict."""
    out: Dict[str, Dict[str, object]] = {}
    for extraction in extractions:
        out[extraction.kind] = extraction.table.to_json_dict(
            canonical_path(extraction.module.path))
    return out


__all__ = [
    "FabricExtraction", "PATH_CAP", "check_extraction", "extract_tables",
    "profile_of", "protocol_pass", "tables_json",
]
