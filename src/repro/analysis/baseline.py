"""Committed findings baseline: CI gates on *new* findings only.

A baseline file records the fingerprints of known, triaged findings
(each carrying an inline justification comment at the source site).
``repro analyze --baseline FILE`` marks matching findings as
``baselined`` and exits nonzero only when an unbaselined finding
appears; ``--update-baseline`` rewrites the file from the current run.

Fingerprints come from :meth:`Finding.fingerprint` — rule + canonical
path + enclosing symbol + message, deliberately line-number-free so
unrelated edits above a finding do not churn the file.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding, canonical_path

#: Default baseline filename, looked up in the working directory.
DEFAULT_BASELINE = "ANALYSIS_BASELINE.json"

_VERSION = 1


class BaselineError(Exception):
    """Unreadable or malformed baseline file."""


def load_baseline(path: str) -> Dict[str, Dict[str, object]]:
    """fingerprint -> recorded entry; raises :class:`BaselineError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not JSON: {exc}")
    if not isinstance(data, dict) or "findings" not in data:
        raise BaselineError(
            f"baseline {path!r}: expected an object with 'findings'")
    out: Dict[str, Dict[str, object]] = {}
    for entry in data["findings"]:
        fingerprint = entry.get("fingerprint")
        if isinstance(fingerprint, str):
            out[fingerprint] = entry
    return out


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Write the baseline for the given findings (sorted, stable)."""
    entries = []
    for finding in sorted(findings,
                          key=lambda f: (canonical_path(f.path), f.rule,
                                         f.context, f.line)):
        entries.append({
            "fingerprint": finding.fingerprint(),
            "rule": finding.rule,
            "path": canonical_path(finding.path),
            "context": finding.context,
            "line": finding.line,
            "message": finding.message,
        })
    payload = {"version": _VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def apply_baseline(findings: List[Finding],
                   baseline: Dict[str, Dict[str, object]]
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split into (all findings with ``baselined`` set, new findings)."""
    marked: List[Finding] = []
    new: List[Finding] = []
    for finding in findings:
        if finding.fingerprint() in baseline:
            marked.append(Finding(
                path=finding.path, line=finding.line, rule=finding.rule,
                message=finding.message, fixit=finding.fixit,
                context=finding.context, baselined=True))
        else:
            marked.append(finding)
            new.append(finding)
    return marked, new


def default_baseline_path(explicit: "str | None" = None) -> "str | None":
    """The baseline to use: explicit flag, else ./ANALYSIS_BASELINE.json
    when present, else None (no baseline)."""
    if explicit:
        return explicit
    if os.path.exists(DEFAULT_BASELINE):
        return DEFAULT_BASELINE
    return None


__all__ = ["BaselineError", "DEFAULT_BASELINE", "apply_baseline",
           "default_baseline_path", "load_baseline", "save_baseline"]
