"""The ``repro analyze`` engine: classify files, run every pass.

For each ``.py`` file under the given paths:

* unparsable -> a parse-error finding (``VR000``);
* contains ``Section(...)`` calls -> *workload* module: VR module
  rules + membership in the RC001/RC002 workload project;
* inside the installed ``repro`` package -> *simulator* module: SR
  module rules;
* every parsed module joins one :class:`Project` over which the
  project rules (RC003/RC004 thread pass, RC001/RC002 workload pass)
  run once.

Module-rule findings inherit the lint suppression-comment semantics
(they *are* the lint, re-homed); project-rule findings are governed by
the committed baseline instead (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.callgraph import ModuleInfo, Project, parse_module
from repro.analysis.findings import Finding
from repro.analysis.registry import (all_rules, project_rules,
                                     run_module_scope)


def _collect_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return files


def _repro_package_dir() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def _module_name(path: str, package_dir: str) -> str:
    absolute = os.path.abspath(path)
    if absolute.startswith(package_dir + os.sep):
        relative = absolute[len(package_dir) + 1:]
        dotted = relative[:-3].replace(os.sep, ".")
        return f"repro.{dotted}"
    base = os.path.basename(path)
    return base[:-3] if base.endswith(".py") else base


def _symbol_index(tree: ast.Module) -> List[Tuple[int, int, str]]:
    """(start line, end line, qualname) spans for enclosing symbols."""
    spans: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qualname = (f"{prefix}.{child.name}" if prefix
                            else child.name)
                end = getattr(child, "end_lineno", child.lineno)
                spans.append((child.lineno, end or child.lineno,
                              qualname))
                visit(child, qualname)
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


def _context_for(spans: List[Tuple[int, int, str]], line: int) -> str:
    best = ""
    best_size = None
    for start, end, qualname in spans:
        if start <= line <= end:
            size = end - start
            if best_size is None or size < best_size:
                best, best_size = qualname, size
    return best


def build_project(paths: Optional[Sequence[str]] = None) -> Project:
    """Parse ``paths`` (default: the repro package) into a Project.

    Unparsable and unreadable files are skipped — callers that need
    parse errors reported as findings use :func:`analyze_paths`. This
    is the entry point for consumers that want the call graph without
    the passes (the protocol extractor, table dumping, tests).
    """
    package_dir = _repro_package_dir()
    if not paths:
        paths = [package_dir]
    modules: List[ModuleInfo] = []
    for path in _collect_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        try:
            modules.append(parse_module(path, source,
                                        name=_module_name(path,
                                                          package_dir)))
        except SyntaxError:
            continue
    return Project(modules)


def analyze_paths(paths: Optional[Sequence[str]] = None
                  ) -> List[Finding]:
    """Run every registered pass over ``paths``; sorted findings.

    Default target is the installed ``repro`` package.
    """
    package_dir = _repro_package_dir()
    if not paths:
        paths = [package_dir]
    files = _collect_files(paths)

    findings: List[Finding] = []
    modules: List[ModuleInfo] = []
    span_index: Dict[str, List[Tuple[int, int, str]]] = {}

    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        name = _module_name(path, package_dir)
        try:
            module = parse_module(path, source, name=name)
        except SyntaxError as exc:
            findings.append(Finding(
                path=path, line=exc.lineno or 1, rule="VR000",
                message=f"syntax error: {exc.msg}",
                fixit="fix the syntax error"))
            continue
        modules.append(module)
        span_index[path] = _symbol_index(module.tree)

        in_package = os.path.abspath(path).startswith(
            package_dir + os.sep)
        scopes: List[str] = []
        if _is_workload_module(module):
            scopes.append("workload")
        if in_package:
            scopes.append("self")
        for scope in scopes:
            for lint_finding in run_module_scope(scope, source, path):
                if lint_finding.rule in ("VR000", "SR000"):
                    continue  # already parsed above
                findings.append(Finding(
                    path=lint_finding.path, line=lint_finding.line,
                    rule=lint_finding.rule,
                    message=lint_finding.message,
                    fixit=lint_finding.fixit,
                    context=_context_for(span_index[path],
                                         lint_finding.line)))

    project = Project(modules)
    for rule in project_rules():
        for finding in rule.check(project):
            context = finding.context
            if not context and finding.path in span_index:
                context = _context_for(span_index[finding.path],
                                       finding.line)
            findings.append(Finding(
                path=finding.path, line=finding.line, rule=finding.rule,
                message=finding.message, fixit=finding.fixit,
                context=context))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _is_workload_module(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "Section":
            return True
    return False


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report with the baselined/new split."""
    lines: List[str] = []
    for finding in findings:
        suffix = "  (baselined)" if finding.baselined else ""
        lines.append(f"{finding}{suffix}")
    baselined = sum(1 for f in findings if f.baselined)
    new = len(findings) - baselined
    if not findings:
        lines.append("analyze: no findings")
    else:
        lines.append(f"analyze: {len(findings)} finding(s), "
                     f"{baselined} baselined, {new} new")
    return "\n".join(lines)


def rules_catalog() -> Dict[str, str]:
    return all_rules()


__all__ = ["analyze_paths", "build_project", "render_text",
           "rules_catalog"]
