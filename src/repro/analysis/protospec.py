"""Declarative protocol-conformance spec for the three fabrics.

This module is the *table of record* the PC rules check extracted
transition tables against. It encodes, per fabric kind:

* which handler methods carry protocol transitions and under which
  stimulus bindings they are enumerated (``HANDLERS``);
* which ``(stimulus, variant, outcome)`` transitions MUST exist, with
  any effects they must perform (``REQUIRED`` — rule PC001);
* the expected sticky/discharge profile of each transition
  (``STICKY_PROFILES`` — rule PC003): the per-fabric bookkeeping the
  LogTM-SE decoupling demands. The profiles *legitimize* cross-fabric
  divergence where the paper does (broadcast snooping needs no sticky
  states because every request reaches every signature; the multichip
  fabric keeps obligations at two levels), and convict it everywhere
  else;
* whether the fabric is exempt from PC004 (``PC004_EXEMPT`` — a
  broadcast-conflict fabric tracks no obligations, so a
  signature-consulting transition that mutates residency state has
  nothing to discharge).

Semantics derive from ``coherence/invariants.py`` (quiescent-point
audit) and the paper's Table 1: a request either NACKs against a
standing signature or is granted with every compatible-but-covering
signature still reachable by later conflict checks — via sticky cores
and sticky chips, lost-info broadcasts, or check-all states.

The spec deliberately names handlers and helpers by *method name*
(``request``, ``_broadcast_check``, ...), so seeded-defect corpus
variants mirror the real fabrics without importing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

#: Rule id -> one-line description (merged into the analyze catalog).
PROTOCOL_RULES: Dict[str, str] = {
    "PC001": "non-exhaustive protocol table: a required (state, "
             "message) transition has no handling path (or omits a "
             "required action)",
    "PC002": "dead transition: handling code guarded by a statically "
             "unsatisfiable condition",
    "PC003": "cross-fabric divergence: a stimulus is handled with "
             "sticky/discharge effects different from the fabric's "
             "declared decoupling profile",
    "PC004": "signature-consulting transition mutates line state "
             "without discharging or converting the sticky obligation",
}

#: Helper methods spliced (path-sensitively inlined) into handler
#: paths; everything else resolvable is flattened to an effect summary.
SPLICE_HELPERS = frozenset({
    "_request_locked", "_broadcast_check", "_targeted_check",
    "_intra_chip", "_inter_chip", "_apply_grant", "_apply_chip_grant",
})

#: Guard tests that never fork a path (pure observability).
NONFORKING_TESTS = frozenset({
    "self.stats.recorder is not None",
})


@dataclass(frozen=True)
class StimulusBinding:
    """One enumeration of a handler: fixed stimulus + parameter values.

    ``variant`` of ``None`` means the variant is derived from the call
    trail by :func:`variant_of` (request handlers); otherwise it is
    fixed (notification handlers).
    """

    stimulus: str
    variant: Optional[str]
    bindings: Mapping[str, bool] = field(default_factory=dict)


@dataclass(frozen=True)
class HandlerSpec:
    """One protocol-carrying handler method of a fabric class."""

    name: str
    kind: str                       # "request" | "notify"
    stimuli: Tuple[StimulusBinding, ...]


_REQUEST_STIMULI = (
    StimulusBinding("GETS", None, {"is_write": False}),
    StimulusBinding("GETM", None, {"is_write": True}),
)
_L1_EVICT_STIMULI = (
    StimulusBinding("L1_EVICT", "tx", {"transactional": True}),
    StimulusBinding("L1_EVICT", "plain", {"transactional": False}),
)

#: fabric kind -> protocol handlers (method name keyed).
HANDLERS: Dict[str, Tuple[HandlerSpec, ...]] = {
    "directory": (
        HandlerSpec("request", "request", _REQUEST_STIMULI),
        HandlerSpec("l1_evicted", "notify", _L1_EVICT_STIMULI),
        HandlerSpec("_l2_victimized", "notify",
                    (StimulusBinding("L2_EVICT", "-"),)),
        HandlerSpec("scrub_block", "notify",
                    (StimulusBinding("SCRUB", "-"),)),
        HandlerSpec("note_relocated_block", "notify",
                    (StimulusBinding("RELOCATE", "-"),)),
    ),
    "snooping": (
        HandlerSpec("request", "request", _REQUEST_STIMULI),
        HandlerSpec("l1_evicted", "notify", _L1_EVICT_STIMULI),
        HandlerSpec("scrub_block", "notify",
                    (StimulusBinding("SCRUB", "-"),)),
    ),
    "multichip": (
        HandlerSpec("request", "request", _REQUEST_STIMULI),
        HandlerSpec("l1_evicted", "notify", _L1_EVICT_STIMULI),
        HandlerSpec("_chip_l2_victimized", "notify",
                    (StimulusBinding("L2_EVICT", "-"),)),
        HandlerSpec("scrub_block", "notify",
                    (StimulusBinding("SCRUB", "-"),)),
        HandlerSpec("note_relocated_block", "notify",
                    (StimulusBinding("RELOCATE", "-"),)),
    ),
}


def variant_of(fabric_kind: str, trail: Tuple[str, ...]) -> str:
    """Request variant from the handler call trail."""
    if fabric_kind == "directory":
        return "broadcast" if "_broadcast_check" in trail else "targeted"
    if fabric_kind == "multichip":
        return "inter" if "_inter_chip" in trail else "intra"
    return "snoop"


# ---------------------------------------------------------------------------
# PC001: required transitions (and required effects within them)
# ---------------------------------------------------------------------------

#: fabric kind -> {(stimulus, variant, outcome): required effect set}.
#: A key missing from the extracted table, or present without every
#: required effect in its union, is a PC001 conviction.
REQUIRED: Dict[str, Dict[Tuple[str, str, str], FrozenSet[str]]] = {
    "directory": {
        ("GETS", "targeted", "grant"): frozenset({"msg:DATA"}),
        ("GETS", "targeted", "nack"): frozenset({"msg:NACK"}),
        ("GETM", "targeted", "grant"): frozenset({"msg:DATA"}),
        ("GETM", "targeted", "nack"): frozenset({"msg:NACK"}),
        ("GETS", "broadcast", "grant"): frozenset({"msg:rebuild"}),
        ("GETS", "broadcast", "nack"): frozenset({"msg:NACK"}),
        ("GETM", "broadcast", "grant"): frozenset({"msg:rebuild"}),
        ("GETM", "broadcast", "nack"): frozenset({"msg:NACK"}),
        ("L1_EVICT", "tx", "done"): frozenset(),
        ("L1_EVICT", "plain", "done"): frozenset(),
        ("L2_EVICT", "-", "done"): frozenset(),
        ("SCRUB", "-", "done"): frozenset({"call:invalidate_block"}),
        ("RELOCATE", "-", "done"): frozenset(),
    },
    "snooping": {
        ("GETS", "snoop", "grant"): frozenset({"msg:snoop"}),
        ("GETS", "snoop", "nack"): frozenset({"msg:snoop"}),
        ("GETM", "snoop", "grant"): frozenset({"msg:snoop"}),
        ("GETM", "snoop", "nack"): frozenset({"msg:snoop"}),
        ("L1_EVICT", "tx", "done"): frozenset(),
        ("L1_EVICT", "plain", "done"): frozenset(),
        ("SCRUB", "-", "done"): frozenset({"call:invalidate_block"}),
    },
    "multichip": {
        ("GETS", "intra", "grant"): frozenset({"msg:DATA"}),
        ("GETS", "intra", "nack"): frozenset({"msg:NACK"}),
        ("GETM", "intra", "grant"): frozenset({"msg:DATA"}),
        ("GETM", "intra", "nack"): frozenset({"msg:NACK"}),
        ("GETS", "inter", "grant"): frozenset(),
        ("GETS", "inter", "nack"): frozenset(),
        ("GETM", "inter", "grant"): frozenset(),
        ("GETM", "inter", "nack"): frozenset(),
        ("L1_EVICT", "tx", "done"): frozenset(),
        ("L1_EVICT", "plain", "done"): frozenset(),
        ("L2_EVICT", "-", "done"): frozenset(),
        ("SCRUB", "-", "done"): frozenset({"call:invalidate_block"}),
        ("RELOCATE", "-", "done"): frozenset(),
    },
}


# ---------------------------------------------------------------------------
# PC003: sticky/discharge profiles
# ---------------------------------------------------------------------------

#: Profile markers (computed by ``repro.analysis.protocol.profile_of``):
#:
#: ``STICKY_SET`` / ``CHIP_STICKY_SET``      new per-core / per-chip
#:     sticky obligations are recorded;
#: ``STICKY_DISCHARGE_GUARDED``              per-core sticky state is
#:     discharged *and* the transition consults
#:     ``holds_transactional`` (selective discharge);
#: ``STICKY_DISCHARGE_UNGUARDED``            per-core sticky state is
#:     discharged with no signature consultation (always a
#:     divergence on the fabrics that declare the guarded form);
#: ``CHIP_STICKY_DISCHARGE``                 memory-level sticky chips
#:     are discharged;
#: ``LOST_INFO`` / ``CHECK_ALL``             the broadcast-rebuild
#:     obligations are set;
#: ``E_STICKY_GUARDED``                      every path that grants
#:     EXCLUSIVE branched on a sticky predicate;
#: ``E_SIG_GUARDED``                         every path that grants
#:     EXCLUSIVE branched on a ``holds_transactional`` consultation.
STICKY_PROFILES: Dict[str, Dict[Tuple[str, str, str], FrozenSet[str]]] = {
    "directory": {
        ("GETS", "targeted", "grant"): frozenset(
            {"STICKY_DISCHARGE_GUARDED", "E_STICKY_GUARDED"}),
        ("GETM", "targeted", "grant"): frozenset(
            {"STICKY_DISCHARGE_GUARDED"}),
        ("GETS", "targeted", "nack"): frozenset(),
        ("GETM", "targeted", "nack"): frozenset(),
        ("GETS", "broadcast", "grant"): frozenset(
            {"STICKY_SET", "CHECK_ALL", "STICKY_DISCHARGE_GUARDED",
             "E_STICKY_GUARDED"}),
        ("GETM", "broadcast", "grant"): frozenset(
            {"STICKY_SET", "CHECK_ALL", "STICKY_DISCHARGE_GUARDED"}),
        ("GETS", "broadcast", "nack"): frozenset(
            {"STICKY_SET", "CHECK_ALL"}),
        ("GETM", "broadcast", "nack"): frozenset(
            {"STICKY_SET", "CHECK_ALL"}),
        ("L1_EVICT", "tx", "done"): frozenset({"STICKY_SET"}),
        ("L1_EVICT", "plain", "done"): frozenset(),
        ("L2_EVICT", "-", "done"): frozenset(
            {"LOST_INFO", "STICKY_DISCHARGE_GUARDED"}),
        ("SCRUB", "-", "done"): frozenset({"STICKY_SET"}),
        ("RELOCATE", "-", "done"): frozenset({"CHECK_ALL"}),
    },
    "snooping": {
        # Broadcast conflict checks reach every signature on every
        # request: the legitimate profile is *no* sticky bookkeeping
        # anywhere, with E grants guarded by a live signature snoop.
        ("GETS", "snoop", "grant"): frozenset({"E_SIG_GUARDED"}),
        ("GETM", "snoop", "grant"): frozenset(),
        ("GETS", "snoop", "nack"): frozenset(),
        ("GETM", "snoop", "nack"): frozenset(),
        ("L1_EVICT", "tx", "done"): frozenset(),
        ("L1_EVICT", "plain", "done"): frozenset(),
        ("SCRUB", "-", "done"): frozenset(),
    },
    "multichip": {
        ("GETS", "intra", "grant"): frozenset(
            {"STICKY_DISCHARGE_GUARDED", "E_STICKY_GUARDED"}),
        ("GETM", "intra", "grant"): frozenset(
            {"STICKY_DISCHARGE_GUARDED"}),
        ("GETS", "intra", "nack"): frozenset(),
        ("GETM", "intra", "nack"): frozenset(),
        ("GETS", "inter", "grant"): frozenset(
            {"STICKY_DISCHARGE_GUARDED", "E_STICKY_GUARDED",
             "CHIP_STICKY_DISCHARGE"}),
        ("GETM", "inter", "grant"): frozenset(
            {"STICKY_DISCHARGE_GUARDED", "CHIP_STICKY_DISCHARGE"}),
        ("GETS", "inter", "nack"): frozenset(),
        ("GETM", "inter", "nack"): frozenset(),
        ("L1_EVICT", "tx", "done"): frozenset({"STICKY_SET"}),
        ("L1_EVICT", "plain", "done"): frozenset(),
        ("L2_EVICT", "-", "done"): frozenset(
            {"STICKY_SET", "CHIP_STICKY_SET",
             "STICKY_DISCHARGE_GUARDED"}),
        ("SCRUB", "-", "done"): frozenset(
            {"STICKY_SET", "CHIP_STICKY_SET"}),
        ("RELOCATE", "-", "done"): frozenset(
            {"STICKY_SET", "CHIP_STICKY_SET"}),
    },
}

#: Fabrics where PC004 does not apply: conflict checks are broadcast,
#: so there is no obligation to discharge or convert.
PC004_EXEMPT = frozenset({"snooping"})


# ---------------------------------------------------------------------------
# Fabric-kind detection
# ---------------------------------------------------------------------------

#: A class is treated as a fabric when it defines at least this many of
#: the handler names below (keeps ``DirectoryEntry``/shims out).
_FABRIC_MARKER_METHODS = frozenset({"request", "l1_evicted",
                                    "scrub_block"})
_FABRIC_MIN_MARKERS = 2

_KIND_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("multichip", "multichip"),
    ("chip", "multichip"),
    ("directory", "directory"),
    ("snoop", "snooping"),
)


def fabric_kind_of(class_name: str, method_names) -> Optional[str]:
    """The fabric kind a class implements, or None when it is not a
    fabric (or its kind cannot be identified)."""
    methods = set(method_names)
    if len(_FABRIC_MARKER_METHODS & methods) < _FABRIC_MIN_MARKERS:
        return None
    lowered = class_name.lower()
    for pattern, kind in _KIND_PATTERNS:
        if pattern in lowered:
            return kind
    return None


def handlers_for(kind: str) -> Tuple[HandlerSpec, ...]:
    return HANDLERS[kind]


def required_for(kind: str) -> Dict[Tuple[str, str, str],
                                    FrozenSet[str]]:
    return REQUIRED[kind]


def profiles_for(kind: str) -> Dict[Tuple[str, str, str],
                                    FrozenSet[str]]:
    return STICKY_PROFILES[kind]


__all__ = [
    "HANDLERS", "HandlerSpec", "NONFORKING_TESTS", "PC004_EXEMPT",
    "PROTOCOL_RULES", "REQUIRED", "SPLICE_HELPERS", "STICKY_PROFILES",
    "StimulusBinding", "fabric_kind_of", "handlers_for",
    "profiles_for", "required_for", "variant_of",
]
