"""Control-flow graphs and dataflow over stdlib-``ast`` functions.

The analyses in :mod:`repro.analysis` (lockset inference, section
consistency, reaching definitions) all want the same substrate: a
per-function control-flow graph whose nodes are small straight-line
blocks of statements, plus a generic forward dataflow solver over it.
This module provides exactly that — no third-party dependencies, no
bytecode, just the AST.

Granularity: a block holds a list of *elements*, each an ``ast`` node.
Simple statements appear as themselves; compound statements contribute
their *head* (the ``If``/``While`` test expression, the ``For`` node,
the ``With`` node) to a block while their bodies flow through successor
blocks — except ``With``, whose body is control-flow-linear and stays
in line after the ``With`` head element. Analyses that need a compound
node's head-only effects (e.g. the names a ``For`` target binds) use
:func:`element_defs`, which never descends into bodies.

The graph is deliberately conservative where Python is dynamic:
``try`` bodies may jump to their handlers from the top or the bottom of
the protected region, loop ``else`` clauses are merged into the exit
path, and anything after a ``return``/``raise``/``break``/``continue``
lands in an unreachable block that keeps the element-to-block map
total.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

FunctionNode = ast.FunctionDef  # AsyncFunctionDef accepted at runtime too


class Param:
    """A function parameter definition (reaching-defs pseudo-element)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Param({self.name})"


class Block:
    """One straight-line run of elements."""

    __slots__ = ("index", "elements", "succs", "preds")

    def __init__(self, index: int) -> None:
        self.index = index
        self.elements: List[ast.AST] = []
        self.succs: List[int] = []
        self.preds: List[int] = []

    def __repr__(self) -> str:
        return (f"Block({self.index}, n={len(self.elements)}, "
                f"succs={self.succs})")


class CFG:
    """Control-flow graph of one function/generator body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self._elem_block: Dict[int, int] = {}
        builder = _Builder(self)
        builder.build(getattr(func, "body", []))

    # -- construction helpers (used by _Builder) --------------------------

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _add_edge(self, src: Block, dst: Block) -> None:
        if dst.index not in src.succs:
            src.succs.append(dst.index)
            dst.preds.append(src.index)

    def _place(self, block: Block, node: ast.AST) -> None:
        block.elements.append(node)
        self._elem_block[id(node)] = block.index

    # -- queries -----------------------------------------------------------

    def block_of(self, node: ast.AST) -> Optional[int]:
        """Index of the block holding ``node`` as an element, if any."""
        return self._elem_block.get(id(node))

    def elements(self) -> Iterable[ast.AST]:
        for block in self.blocks:
            for elem in block.elements:
                yield elem

    def reachable_from(self, start: int) -> Set[int]:
        """Block indices reachable from ``start`` (excluding itself
        unless it sits on a cycle)."""
        seen: Set[int] = set()
        frontier = list(self.blocks[start].succs)
        while frontier:
            index = frontier.pop()
            if index in seen:
                continue
            seen.add(index)
            frontier.extend(self.blocks[index].succs)
        return seen

    def element_reaches(self, src: ast.AST, dst: ast.AST) -> bool:
        """Whether execution can flow from element ``src`` to ``dst``.

        Same-block elements are ordered by position; across blocks the
        block reachability relation (including loop back-edges) decides.
        """
        src_block = self.block_of(src)
        dst_block = self.block_of(dst)
        if src_block is None or dst_block is None:
            return False
        if src_block == dst_block:
            elems = self.blocks[src_block].elements
            positions = {id(e): i for i, e in enumerate(elems)}
            if positions[id(src)] < positions[id(dst)]:
                return True
            return src_block in self.reachable_from(src_block)
        return dst_block in self.reachable_from(src_block)


class _LoopFrame:
    __slots__ = ("head", "after")

    def __init__(self, head: Block, after: Block) -> None:
        self.head = head
        self.after = after


class _Builder:
    """Fills a CFG from a statement list (recursive descent)."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.current = cfg.blocks[cfg.entry.index]
        self.loops: List[_LoopFrame] = []

    def build(self, body: List[ast.stmt]) -> None:
        self._stmts(body)
        self.cfg._add_edge(self.current, self.cfg.exit)

    # -- plumbing ----------------------------------------------------------

    def _start_block(self) -> Block:
        block = self.cfg._new_block()
        self.cfg._add_edge(self.current, block)
        self.current = block
        return block

    def _fresh_unlinked(self) -> Block:
        block = self.cfg._new_block()
        self.current = block
        return block

    # -- statement dispatch ------------------------------------------------

    def _stmts(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self.cfg._place(self.current, stmt)
            self.cfg._add_edge(self.current, self.cfg.exit)
            self._fresh_unlinked()
        elif isinstance(stmt, ast.Break):
            self.cfg._place(self.current, stmt)
            if self.loops:
                self.cfg._add_edge(self.current, self.loops[-1].after)
            self._fresh_unlinked()
        elif isinstance(stmt, ast.Continue):
            self.cfg._place(self.current, stmt)
            if self.loops:
                self.cfg._add_edge(self.current, self.loops[-1].head)
            self._fresh_unlinked()
        else:
            # Simple statements — including nested FunctionDef/ClassDef,
            # whose bodies are separate scopes and not traversed here.
            self.cfg._place(self.current, stmt)

    def _if(self, stmt: ast.If) -> None:
        self.cfg._place(self.current, stmt.test)
        head = self.current
        after = self.cfg._new_block()

        then = self.cfg._new_block()
        self.cfg._add_edge(head, then)
        self.current = then
        self._stmts(stmt.body)
        self.cfg._add_edge(self.current, after)

        if stmt.orelse:
            orelse = self.cfg._new_block()
            self.cfg._add_edge(head, orelse)
            self.current = orelse
            self._stmts(stmt.orelse)
            self.cfg._add_edge(self.current, after)
        else:
            self.cfg._add_edge(head, after)
        self.current = after

    def _while(self, stmt: ast.While) -> None:
        head = self._start_block()
        self.cfg._place(head, stmt.test)
        after = self.cfg._new_block()
        infinite = isinstance(stmt.test, ast.Constant) and bool(
            stmt.test.value)
        if not infinite:
            self.cfg._add_edge(head, after)

        body = self.cfg._new_block()
        self.cfg._add_edge(head, body)
        self.current = body
        self.loops.append(_LoopFrame(head, after))
        self._stmts(stmt.body)
        self.loops.pop()
        self.cfg._add_edge(self.current, head)
        # ``orelse`` runs on normal exit; merge it into the exit path.
        if stmt.orelse:
            self.current = after
            self._stmts(stmt.orelse)
        else:
            self.current = after

    def _for(self, stmt: ast.stmt) -> None:
        head = self._start_block()
        self.cfg._place(head, stmt)  # head element: target+iter effects
        after = self.cfg._new_block()
        self.cfg._add_edge(head, after)

        body = self.cfg._new_block()
        self.cfg._add_edge(head, body)
        self.current = body
        self.loops.append(_LoopFrame(head, after))
        self._stmts(stmt.body)
        self.loops.pop()
        self.cfg._add_edge(self.current, head)
        if stmt.orelse:
            self.current = after
            self._stmts(stmt.orelse)
        else:
            self.current = after

    def _with(self, stmt: ast.stmt) -> None:
        # The With head evaluates the context managers and binds any
        # ``as`` names; the body is control-flow-linear after it.
        self.cfg._place(self.current, stmt)
        self._stmts(stmt.body)

    def _try(self, stmt: ast.Try) -> None:
        # Conservative: handlers are reachable from the top of the
        # protected region and from its end; finally joins every path.
        pre = self.current
        body = self.cfg._new_block()
        self.cfg._add_edge(pre, body)
        self.current = body
        self._stmts(stmt.body)
        body_end = self.current

        after = self.cfg._new_block()
        if stmt.orelse:
            orelse = self.cfg._new_block()
            self.cfg._add_edge(body_end, orelse)
            self.current = orelse
            self._stmts(stmt.orelse)
            self.cfg._add_edge(self.current, after)
        else:
            self.cfg._add_edge(body_end, after)

        for handler in stmt.handlers:
            hblock = self.cfg._new_block()
            self.cfg._add_edge(body, hblock)
            self.cfg._add_edge(body_end, hblock)
            self.current = hblock
            if handler.name:
                # Bind the exception name as a definition element.
                self.cfg._place(hblock, handler)
            self._stmts(handler.body)
            self.cfg._add_edge(self.current, after)

        self.current = after
        if stmt.finalbody:
            self._stmts(stmt.finalbody)


# ---------------------------------------------------------------------------
# Element-level def/use extraction (head-only, never descends into bodies)
# ---------------------------------------------------------------------------

def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def element_defs(elem: ast.AST) -> Set[str]:
    """Local names an element (re)binds — head effects only."""
    if isinstance(elem, ast.Assign):
        out: Set[str] = set()
        for target in elem.targets:
            if isinstance(target, (ast.Name, ast.Tuple, ast.List)):
                out |= _target_names(target)
        return out
    if isinstance(elem, ast.AnnAssign) and isinstance(elem.target, ast.Name):
        return {elem.target.id} if elem.value is not None else set()
    if isinstance(elem, ast.AugAssign) and isinstance(elem.target, ast.Name):
        return {elem.target.id}
    if isinstance(elem, (ast.For, ast.AsyncFor)):
        return _target_names(elem.target)
    if isinstance(elem, (ast.With, ast.AsyncWith)):
        out = set()
        for item in elem.items:
            if item.optional_vars is not None:
                out |= _target_names(item.optional_vars)
        return out
    if isinstance(elem, ast.ExceptHandler) and elem.name:
        return {elem.name}
    if isinstance(elem, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return {elem.name}
    if isinstance(elem, ast.Import):
        return {(a.asname or a.name.split(".")[0]) for a in elem.names}
    if isinstance(elem, ast.ImportFrom):
        return {(a.asname or a.name) for a in elem.names}
    return set()


def element_value(elem: ast.AST, name: str) -> Optional[ast.AST]:
    """The expression assigned to ``name`` by ``elem``, when that is a
    plain (non-destructuring) assignment; None for opaque bindings."""
    if isinstance(elem, ast.Assign):
        for target in elem.targets:
            if isinstance(target, ast.Name) and target.id == name:
                return elem.value
    if isinstance(elem, ast.AnnAssign) and \
            isinstance(elem.target, ast.Name) and \
            elem.target.id == name:
        return elem.value
    return None


# ---------------------------------------------------------------------------
# Generic forward dataflow
# ---------------------------------------------------------------------------

def dataflow_forward(cfg: CFG, init, entry_state,
                     transfer: Callable[[object, ast.AST], object],
                     meet: Callable[[object, object], object],
                     equals: Callable[[object, object], bool]
                     ) -> Dict[int, object]:
    """Worklist forward dataflow; returns block-index -> entry state.

    ``init`` seeds non-entry blocks (top); ``entry_state`` seeds the
    entry block. ``transfer`` maps (state, element) -> state; ``meet``
    joins predecessor exit states.
    """
    states: Dict[int, object] = {b.index: init for b in cfg.blocks}
    states[cfg.entry.index] = entry_state

    def block_exit(index: int) -> object:
        state = states[index]
        for elem in cfg.blocks[index].elements:
            state = transfer(state, elem)
        return state

    work = [b.index for b in cfg.blocks]
    iterations = 0
    limit = max(64, len(cfg.blocks) * len(cfg.blocks) * 4)
    while work and iterations < limit:
        iterations += 1
        index = work.pop(0)
        block = cfg.blocks[index]
        if block.preds:
            incoming = None
            for pred in block.preds:
                ex = block_exit(pred)
                incoming = ex if incoming is None else meet(incoming, ex)
            if index == cfg.entry.index:
                incoming = meet(incoming, entry_state)
        else:
            incoming = states[index]
        if incoming is not None and not equals(incoming, states[index]):
            states[index] = incoming
            for succ in block.succs:
                if succ not in work:
                    work.append(succ)
    return states


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

#: A reaching-defs environment: name -> set of defining elements
#: (``ast`` nodes or :class:`Param` markers), keyed by identity.
Env = Dict[str, Tuple[object, ...]]


class ReachingDefs:
    """Intraprocedural reaching definitions for one function's CFG.

    ``resolve(name, at)`` returns the set of assignment *value
    expressions* that may flow into ``name`` at element ``at``; opaque
    bindings (loop targets, ``with ... as``, parameters, destructuring)
    resolve to the binding element itself so callers can classify them.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        entry: Env = {}
        args = getattr(cfg.func, "args", None)
        if args is not None:
            names = [a.arg for a in
                     list(getattr(args, "posonlyargs", []) or [])
                     + list(args.args)
                     + list(args.kwonlyargs)]
            if args.vararg:
                names.append(args.vararg.arg)
            if args.kwarg:
                names.append(args.kwarg.arg)
            for name in names:
                entry[name] = (Param(name),)

        def transfer(state: Env, elem: ast.AST) -> Env:
            defs = element_defs(elem)
            if not defs:
                return state
            new = dict(state)
            for name in defs:
                new[name] = (elem,)
            return new

        def meet(a: Env, b: Env) -> Env:
            out = dict(a)
            for name, defs in b.items():
                if name in out:
                    merged = tuple(dict.fromkeys(out[name] + defs))
                    out[name] = merged
                else:
                    out[name] = defs
            return out

        self._block_entry = dataflow_forward(
            cfg, init={}, entry_state=entry, transfer=transfer,
            meet=meet, equals=lambda a, b: a == b)

    def env_at(self, elem: ast.AST) -> Env:
        """The environment in force just before ``elem`` executes."""
        index = self.cfg.block_of(elem)
        if index is None:
            return {}
        state = dict(self._block_entry.get(index, {}))
        for candidate in self.cfg.blocks[index].elements:
            if candidate is elem:
                break
            defs = element_defs(candidate)
            for name in defs:
                state[name] = (candidate,)
        return state

    def resolve(self, name: str, at: ast.AST) -> List[object]:
        """Defining elements for ``name`` at ``at`` (possibly empty)."""
        return list(self.env_at(at).get(name, ()))


__all__ = ["CFG", "Block", "Param", "ReachingDefs", "dataflow_forward",
           "element_defs", "element_value"]
