"""SARIF 2.1.0 serialization for analyzer findings.

Emits the minimal conforming subset CI viewers consume: one run, a
tool driver with the full rule catalog, and one result per finding
with a physical location and a stable ``partialFingerprints`` entry
(the same fingerprint the baseline uses, so a SARIF diff and a
baseline diff agree). :func:`findings_from_sarif` inverts it for the
round-trip tests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.analysis.findings import Finding, canonical_path

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-analyze"


def to_sarif(findings: Iterable[Finding],
             rules: Dict[str, str]) -> Dict[str, Any]:
    """A SARIF 2.1.0 log object for ``findings``."""
    findings = list(findings)
    used = sorted({f.rule for f in findings} | set(rules))
    rule_objects = [
        {"id": rule_id,
         "shortDescription": {"text": rules.get(rule_id, rule_id)}}
        for rule_id in used]
    index = {rule_id: i for i, rule_id in enumerate(used)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": canonical_path(finding.path)},
                    "region": {"startLine": max(finding.line, 1)},
                },
                "logicalLocations": [{
                    "fullyQualifiedName": finding.context}],
            }],
            "partialFingerprints": {
                "reproAnalyze/v1": finding.fingerprint()},
            "properties": {"fixit": finding.fixit,
                           "baselined": finding.baselined},
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "informationUri": "https://example.invalid/repro",
                "rules": rule_objects,
            }},
            "results": results,
        }],
    }


def findings_from_sarif(log: Dict[str, Any]) -> List[Finding]:
    """Reconstruct findings from a SARIF log (round-trip inverse)."""
    out: List[Finding] = []
    for run in log.get("runs", []):
        for result in run.get("results", []):
            location = (result.get("locations") or [{}])[0]
            physical = location.get("physicalLocation", {})
            logical = (location.get("logicalLocations") or [{}])[0]
            properties = result.get("properties", {})
            out.append(Finding(
                path=physical.get("artifactLocation", {}).get("uri", ""),
                line=physical.get("region", {}).get("startLine", 1),
                rule=result.get("ruleId", ""),
                message=result.get("message", {}).get("text", ""),
                fixit=properties.get("fixit", ""),
                context=logical.get("fullyQualifiedName", ""),
                baselined=bool(properties.get("baselined", False))))
    return out


def render_sarif(findings: Iterable[Finding],
                 rules: Dict[str, str]) -> str:
    return json.dumps(to_sarif(findings, rules), indent=2,
                      sort_keys=True)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "TOOL_NAME",
           "findings_from_sarif", "render_sarif", "to_sarif"]
