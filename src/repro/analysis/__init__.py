"""Static dataflow analysis framework (``repro analyze``).

A stdlib-``ast`` framework — per-function CFGs, reaching definitions,
a cross-module call graph — carrying three analysis passes:

* :mod:`repro.analysis.locksets` — Eraser-style lockset and section-
  consistency analysis for workload programs (RC001, RC002);
* :mod:`repro.analysis.threads` — thread-safety lockset inference for
  threaded service classes (RC003, RC004);
* :mod:`repro.analysis.registry` — the plugin rule registry that also
  re-homes the ``repro lint`` VR rules and the ``--self`` SR rules, so
  every static check in the repo runs on one substrate.

Output formats: text, JSON, and SARIF 2.1.0
(:mod:`repro.analysis.sarif`); CI gating goes through the committed
findings baseline (:mod:`repro.analysis.baseline`). See
``docs/analysis.md`` for the rule catalog and triage workflow.
"""

from repro.analysis.baseline import (DEFAULT_BASELINE, apply_baseline,
                                     default_baseline_path,
                                     load_baseline, save_baseline)
from repro.analysis.cfg import CFG, ReachingDefs
from repro.analysis.engine import analyze_paths, render_text, rules_catalog
from repro.analysis.findings import ANALYSIS_RULES, Finding
from repro.analysis.sarif import (findings_from_sarif, render_sarif,
                                  to_sarif)

__all__ = [
    "ANALYSIS_RULES", "CFG", "DEFAULT_BASELINE", "Finding",
    "ReachingDefs", "analyze_paths", "apply_baseline",
    "default_baseline_path", "findings_from_sarif", "load_baseline",
    "render_sarif", "render_text", "rules_catalog", "save_baseline",
    "to_sarif",
]
