"""Per-thread read/write signature pair.

An actual LogTM-SE signature "needs two copies of the illustrated hardware
for read- and write-sets, respectively" (Section 5). This class bundles the
pair and implements the paper's conflict semantics:

* ``CONFLICT(read, A)``  — would a *read* of A by someone else conflict?
  Yes iff A may be in our **write** set.
* ``CONFLICT(write, A)`` — would a *write* of A by someone else conflict?
  Yes iff A may be in our **read or write** set.
"""

from __future__ import annotations

from typing import Tuple

from repro.signatures.base import Signature, Snapshot

#: Snapshot of a full pair: (read snapshot, write snapshot).
PairSnapshot = Tuple[Snapshot, Snapshot]


class ReadWriteSignature:
    """The (read-set, write-set) signature pair of one thread context."""

    __slots__ = ("read", "write")

    def __init__(self, read: Signature, write: Signature) -> None:
        self.read = read
        self.write = write

    # -- hardware interface -------------------------------------------------

    def insert_read(self, block_addr: int) -> None:
        self.read.insert(block_addr)

    def insert_write(self, block_addr: int) -> None:
        self.write.insert(block_addr)

    def conflicts_with_read(self, block_addr: int) -> bool:
        """CONFLICT(read, A): an external read hits our write-set."""
        return self.write.contains(block_addr)

    def conflicts_with_write(self, block_addr: int) -> bool:
        """CONFLICT(write, A): an external write hits read- or write-set."""
        return self.read.contains(block_addr) or self.write.contains(block_addr)

    def conflicts(self, is_write: bool, block_addr: int) -> bool:
        # Inlined (no delegation): this is the per-NACK hot path — every
        # remote access probes every transactional thread through here.
        if is_write:
            return (self.read.contains(block_addr)
                    or self.write.contains(block_addr))
        return self.write.contains(block_addr)

    def clear(self) -> None:
        self.read.clear()
        self.write.clear()

    @property
    def is_empty(self) -> bool:
        return self.read.is_empty and self.write.is_empty

    # -- observability -------------------------------------------------------

    def conflict_is_false_positive(self, is_write: bool,
                                   block_addr: int) -> bool:
        """True when the filter reports a conflict the exact sets refute."""
        if is_write:
            real = (self.read.contains_exact(block_addr)
                    or self.write.contains_exact(block_addr))
        else:
            real = self.write.contains_exact(block_addr)
        return self.conflicts(is_write, block_addr) and not real

    # -- software accessibility ----------------------------------------------

    def snapshot(self) -> PairSnapshot:
        return (self.read.snapshot(), self.write.snapshot())

    def restore(self, snap: PairSnapshot) -> None:
        read_snap, write_snap = snap
        self.read.restore(read_snap)
        self.write.restore(write_snap)

    def union_update(self, other: "ReadWriteSignature") -> None:
        self.read.union_update(other.read)
        self.write.union_update(other.write)

    def union_snapshot(self, snap: PairSnapshot) -> None:
        read_snap, write_snap = snap
        self.read.union_snapshot(read_snap)
        self.write.union_snapshot(write_snap)

    def spawn_empty(self) -> "ReadWriteSignature":
        return ReadWriteSignature(self.read.spawn_empty(),
                                  self.write.spawn_empty())

    def __repr__(self) -> str:
        return f"ReadWriteSignature(read={self.read!r}, write={self.write!r})"
