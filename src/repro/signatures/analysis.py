"""Analytic false-positive models for the signature designs.

Closed-form Bloom-filter mathematics for each Figure 3 design, used to
sanity-check the empirical measurements (a property test asserts the two
agree) and to size signatures without running a simulation — the practical
question Result 3 answers empirically ("given the well-known birthday
paradox, one might expect small signatures to perform poorly").

Models (N filter bits, n inserted *distinct* block addresses):

* **bit-select**: with uniformly distributed addresses the filter behaves
  as a 1-hash Bloom filter: P(fp) = 1 - (1 - 1/N)^n.
* **double-bit-select**: two independent fields of N/2 bits each, both of
  which must hit: P(fp) = p_half(n, N/2)^2 with p_half the 1-hash formula.
* **coarse-bit-select**: the macroblock ratio g (macroblock/block) shrinks
  the distinct-inserted count to ~n_macro = expected occupied macroblocks,
  but any probe that shares an occupied macroblock aliases; for uniform
  probes the filter term dominates: P(fp) = 1 - (1 - 1/N)^n_macro.
* **hashed (k hashes)**: the textbook k-hash Bloom bound
  P(fp) = (1 - (1 - 1/N)^(k n))^k.
"""

from __future__ import annotations

import math

from repro.common.config import SignatureConfig, SignatureKind
from repro.common.errors import ConfigError


def _one_hash_fp(n: int, bits: int) -> float:
    """P(random probe hits a set bit) for a 1-hash filter."""
    if bits <= 0:
        raise ConfigError("bits must be positive")
    if n <= 0:
        return 0.0
    return 1.0 - (1.0 - 1.0 / bits) ** n


def expected_occupied_macroblocks(n: int, granularity_blocks: int,
                                  address_space_blocks: int = 1 << 24
                                  ) -> float:
    """E[# distinct macroblocks] covering n uniform random blocks."""
    if granularity_blocks <= 1:
        return float(n)
    macroblocks = max(address_space_blocks // granularity_blocks, 1)
    # Balls-into-bins: expected occupied bins.
    return macroblocks * (1.0 - (1.0 - 1.0 / macroblocks) ** n)


def false_positive_rate(cfg: SignatureConfig, inserted_blocks: int,
                        block_bytes: int = 64) -> float:
    """Predicted aliasing probability for a uniform random probe."""
    n = inserted_blocks
    if cfg.kind is SignatureKind.PERFECT:
        return 0.0
    if cfg.kind is SignatureKind.BIT_SELECT:
        return _one_hash_fp(n, cfg.bits)
    if cfg.kind is SignatureKind.DOUBLE_BIT_SELECT:
        half = cfg.bits // 2
        return _one_hash_fp(n, half) ** 2
    if cfg.kind is SignatureKind.COARSE_BIT_SELECT:
        g = max(cfg.granularity // block_bytes, 1)
        n_macro = expected_occupied_macroblocks(n, g)
        return _one_hash_fp(math.ceil(n_macro), cfg.bits)
    if cfg.kind is SignatureKind.HASHED:
        k = cfg.hashes
        return (1.0 - (1.0 - 1.0 / cfg.bits) ** (k * n)) ** k
    raise ConfigError(f"unknown signature kind {cfg.kind}")


def bits_for_target_rate(kind: SignatureKind, inserted_blocks: int,
                         target_rate: float, block_bytes: int = 64,
                         granularity: int = 1024, hashes: int = 4,
                         max_bits: int = 1 << 20) -> int:
    """Smallest power-of-two signature meeting a false-positive budget.

    The sizing question a hardware designer actually asks: "my largest
    expected read set is R blocks; how many bits keep aliasing under x%?"
    """
    if not 0.0 < target_rate < 1.0:
        raise ConfigError("target_rate must be in (0, 1)")
    bits = 8
    while bits <= max_bits:
        cfg = SignatureConfig(kind=kind, bits=bits, granularity=granularity,
                              hashes=hashes)
        if false_positive_rate(cfg, inserted_blocks,
                               block_bytes) <= target_rate:
            return bits
        bits *= 2
    raise ConfigError(
        f"no signature up to {max_bits} bits meets {target_rate:.3%} "
        f"for {inserted_blocks} blocks")


def optimal_hash_count(bits: int, inserted_blocks: int) -> int:
    """The textbook Bloom optimum k = (N/n) ln 2, clamped to >= 1."""
    if inserted_blocks <= 0:
        return 1
    return max(1, round(bits / inserted_blocks * math.log(2)))
