"""Signatures: the Figure 3 read/write-set summaries."""

from repro.signatures.base import Signature
from repro.signatures.bitselect import BitSelectSignature
from repro.signatures.coarsebitselect import CoarseBitSelectSignature
from repro.signatures.counting import CountingPair, CountingSignature
from repro.signatures.doublebitselect import DoubleBitSelectSignature
from repro.signatures.factory import make_rw_pair, make_signature
from repro.signatures.hashed import HashedSignature
from repro.signatures.perfect import PerfectSignature
from repro.signatures.rwpair import ReadWriteSignature

__all__ = ["BitSelectSignature", "CoarseBitSelectSignature",
           "CountingPair", "CountingSignature", "DoubleBitSelectSignature",
           "HashedSignature", "PerfectSignature", "ReadWriteSignature",
           "Signature", "make_rw_pair", "make_signature"]
