"""Counting signature: the OS's summary-maintenance structure.

Footnote 1 of the paper: "To efficiently compute summary signatures, the OS
could maintain a counting signature data structure to track the number of
suspended threads setting each summary signature bit, similar to VTM's XF
data structure." This is that structure.

A :class:`CountingSignature` keeps an integer counter per filter position.
Merging a descheduled thread's signature increments the counters its bits
cover; removing it (at the commit trap) decrements them. The plain bit
summary to install in hardware is "counter > 0" — so the OS never has to
re-union every saved signature from scratch on each change, turning the
summary update from O(saved threads) into O(1) signature operations.

It works over any filter whose state is an integer bit mask (bit-select,
coarse-bit-select, hashed, DBS via its two halves) and falls back to exact
multiset counting for perfect signatures.
"""

from __future__ import annotations

from collections import Counter as Multiset
from typing import Dict, Tuple

from repro.common.errors import TransactionError
from repro.signatures.base import Signature, Snapshot


def _mask_bits(mask: int):
    """Yield set-bit positions of an integer mask."""
    position = 0
    while mask:
        if mask & 1:
            yield position
        mask >>= 1
        position += 1


class CountingSignature:
    """Per-bit reference counts over one signature's filter positions."""

    def __init__(self, template: Signature) -> None:
        #: Prototype used to build result signatures and interpret state.
        self._template = template.spawn_empty()
        self._bit_counts: Dict[Tuple[int, int], int] = {}
        self._exact_counts: Multiset = Multiset()
        self.members = 0

    def _state_masks(self, snap: Snapshot):
        """Normalize a snapshot's filter state into (field, mask) pairs."""
        filter_state, _exact = snap
        if filter_state is None:
            return []  # perfect signature: exact multiset carries it
        if isinstance(filter_state, tuple):
            return list(enumerate(filter_state))  # e.g. DBS halves
        return [(0, int(filter_state))]

    def add(self, snap: Snapshot) -> None:
        """Merge one saved signature into the counts."""
        for field, mask in self._state_masks(snap):
            for bit in _mask_bits(mask):
                key = (field, bit)
                self._bit_counts[key] = self._bit_counts.get(key, 0) + 1
        self._exact_counts.update(snap[1])
        self.members += 1

    def remove(self, snap: Snapshot) -> None:
        """Remove a previously added signature (its thread committed)."""
        if self.members <= 0:
            raise TransactionError("remove from empty counting signature")
        for field, mask in self._state_masks(snap):
            for bit in _mask_bits(mask):
                key = (field, bit)
                count = self._bit_counts.get(key, 0)
                if count <= 0:
                    raise TransactionError(
                        f"counting signature underflow at bit {key}")
                if count == 1:
                    del self._bit_counts[key]
                else:
                    self._bit_counts[key] = count - 1
        self._exact_counts.subtract(snap[1])
        self._exact_counts += Multiset()  # drop zero/negative entries
        self.members -= 1

    def summary(self) -> Signature:
        """Materialize the current union as a plain signature."""
        result = self._template.spawn_empty()
        fields: Dict[int, int] = {}
        for (field, bit), _count in self._bit_counts.items():
            fields[field] = fields.get(field, 0) | (1 << bit)
        probe = self._template.snapshot()[0]
        if probe is None:
            state = None
        elif isinstance(probe, tuple):
            state = tuple(fields.get(i, 0) for i in range(len(probe)))
        else:
            state = fields.get(0, 0)
        result.restore((state, frozenset(self._exact_counts.keys())))
        return result

    @property
    def is_empty(self) -> bool:
        return self.members == 0

    def copy(self) -> "CountingSignature":
        clone = CountingSignature(self._template)
        clone._bit_counts = dict(self._bit_counts)
        clone._exact_counts = Multiset(self._exact_counts)
        clone.members = self.members
        return clone

    def __repr__(self) -> str:
        return (f"CountingSignature(members={self.members}, "
                f"bits={len(self._bit_counts)})")


class CountingPair:
    """Counting structure over (read, write) signature pairs.

    This is what :class:`~repro.core.manager.TMManager` keeps per address
    space: descheduling a thread adds its saved pair; the commit trap
    removes it; installing a context's summary materializes the union —
    optionally excluding one member's own contribution (a rescheduled
    thread must not conflict with itself, Section 4.1).
    """

    def __init__(self, template_pair) -> None:
        self._read = CountingSignature(template_pair.read)
        self._write = CountingSignature(template_pair.write)

    def add(self, pair_snapshot) -> None:
        read_snap, write_snap = pair_snapshot
        self._read.add(read_snap)
        self._write.add(write_snap)

    def remove(self, pair_snapshot) -> None:
        read_snap, write_snap = pair_snapshot
        self._read.remove(read_snap)
        self._write.remove(write_snap)

    def summary_into(self, target_pair, exclude=None) -> None:
        """Install the union into ``target_pair`` (a ReadWriteSignature).

        ``exclude`` is an optional pair snapshot whose contribution is
        subtracted before materializing.
        """
        read_counts, write_counts = self._read, self._write
        if exclude is not None:
            read_counts = read_counts.copy()
            write_counts = write_counts.copy()
            read_counts.remove(exclude[0])
            write_counts.remove(exclude[1])
        target_pair.restore((read_counts.summary().snapshot(),
                             write_counts.summary().snapshot()))

    @property
    def members(self) -> int:
        return self._read.members

    @property
    def is_empty(self) -> bool:
        return self._read.is_empty
