"""Hashed (k-hash Bloom-filter) signatures.

Section 5 closes with "more creative signatures may prove necessary if
larger transactions and deep nesting become the norm" — the direction the
follow-on signature literature took (H3-class universal hashing, multiple
independent hash functions over one bit array). This implementation
provides that generalization: ``k`` independent hashes over an ``N``-bit
register; INSERT sets k bits, CONFLICT requires all k set.

The hash family is H3-style: each hash function is a fixed random binary
matrix applied to the block-address bits (XOR of matrix rows selected by
set address bits), which is cheap in hardware (an XOR tree per output bit)
and gives near-universal behaviour. Matrices are derived deterministically
from a seed so signatures are reproducible and two signatures with the same
parameters are *compatible* (union/snapshot work across them).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.common.errors import ConfigError, TransactionError
from repro.common.rng import make_rng
from repro.signatures.base import Signature

#: Width of the address slice hashed (block-index bits).
_ADDRESS_BITS = 32


def _h3_matrix(seed: int, hash_index: int, out_bits: int) -> List[int]:
    """Random binary matrix: one ``out_bits``-wide row per address bit."""
    rng = make_rng(seed, "h3", hash_index, out_bits)
    return [rng.getrandbits(out_bits) for _ in range(_ADDRESS_BITS)]


class _HashFamily:
    """Precomputed H3 machinery shared by every signature with one
    ``(seed, hashes, index_bits)`` parameter set.

    The per-bit XOR fold over 32 matrix rows is replaced by byte-sliced
    tables: ``tables[k][j][b]`` is the XOR of rows ``8j .. 8j+7`` of hash
    ``k`` selected by the set bits of byte value ``b``, so hashing an
    address is four table lookups and three XORs per hash function —
    bit-for-bit identical to the row fold. Results are additionally
    memoized per block index, since workloads revisit a small address set.
    """

    __slots__ = ("matrices", "_tables", "_memo")

    def __init__(self, seed: int, hashes: int, index_bits: int) -> None:
        self.matrices = [_h3_matrix(seed, k, index_bits)
                         for k in range(hashes)]
        self._tables = []
        for matrix in self.matrices:
            per_hash = []
            for j in range(_ADDRESS_BITS // 8):
                rows = matrix[8 * j: 8 * j + 8]
                table = [0] * 256
                for value in range(256):
                    acc = 0
                    bits = value
                    row = 0
                    while bits:
                        if bits & 1:
                            acc ^= rows[row]
                        bits >>= 1
                        row += 1
                    table[value] = acc
                per_hash.append(table)
            self._tables.append(per_hash)
        self._memo: dict = {}

    def indices(self, idx: int) -> Tuple[int, ...]:
        out = self._memo.get(idx)
        if out is None:
            b0 = idx & 0xFF
            b1 = (idx >> 8) & 0xFF
            b2 = (idx >> 16) & 0xFF
            b3 = (idx >> 24) & 0xFF
            out = tuple(t[0][b0] ^ t[1][b1] ^ t[2][b2] ^ t[3][b3]
                        for t in self._tables)
            self._memo[idx] = out
        return out


_FAMILIES: dict = {}


def _family(seed: int, hashes: int, index_bits: int) -> _HashFamily:
    key = (seed, hashes, index_bits)
    fam = _FAMILIES.get(key)
    if fam is None:
        fam = _FAMILIES[key] = _HashFamily(seed, hashes, index_bits)
    return fam


class HashedSignature(Signature):
    """k independent H3 hashes over one N-bit filter."""

    __slots__ = ("bits", "hashes", "block_bytes", "seed",
                 "_mask", "_family", "_index_bits", "_block_shift")

    def __init__(self, bits: int = 2048, hashes: int = 4,
                 block_bytes: int = 64, seed: int = 0) -> None:
        super().__init__()
        if bits <= 0 or bits & (bits - 1):
            raise ConfigError(f"signature bits must be a power of two: {bits}")
        if hashes < 1:
            raise ConfigError(f"need at least one hash function: {hashes}")
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigError(
                f"block size must be a power of two: {block_bytes}")
        self.bits = bits
        self.hashes = hashes
        self.block_bytes = block_bytes
        self.seed = seed
        self._mask = 0
        self._index_bits = bits.bit_length() - 1
        self._block_shift = block_bytes.bit_length() - 1
        self._family = _family(seed, hashes, self._index_bits)

    def _indices(self, block_addr: int) -> List[int]:
        idx = (block_addr >> self._block_shift) & ((1 << _ADDRESS_BITS) - 1)
        return list(self._family.indices(idx))

    # Flattened hot-path overrides: hash via the shared byte-sliced tables,
    # no template-method indirection. The exact shadow is still maintained.
    def insert(self, block_addr: int) -> None:
        mask = self._mask
        for index in self._family.indices(
                (block_addr >> self._block_shift) & 0xFFFFFFFF):
            mask |= 1 << index
        self._mask = mask
        self._exact.add(block_addr)

    def contains(self, block_addr: int) -> bool:
        mask = self._mask
        for index in self._family.indices(
                (block_addr >> self._block_shift) & 0xFFFFFFFF):
            if not mask >> index & 1:
                return False
        return True

    def spawn_empty(self) -> "HashedSignature":
        return HashedSignature(self.bits, self.hashes, self.block_bytes,
                               self.seed)

    def _insert_filter(self, block_addr: int) -> None:
        for index in self._indices(block_addr):
            self._mask |= 1 << index

    def _test_filter(self, block_addr: int) -> bool:
        return all(self._mask >> index & 1
                   for index in self._indices(block_addr))

    def _clear_filter(self) -> None:
        self._mask = 0

    def _filter_state(self) -> Any:
        return self._mask

    def _load_filter_state(self, state: Any) -> None:
        self._mask = int(state)

    def _union_filter(self, other: Signature) -> None:
        if not isinstance(other, HashedSignature):
            # Explicit raise (not ``assert``): this guards a hot
            # correctness path and must survive ``python -O``.
            raise TransactionError(
                f"cannot union {type(other).__name__} into HashedSignature")
        if (other.bits, other.hashes, other.seed) != (
                self.bits, self.hashes, self.seed):
            raise ConfigError(
                "cannot union hashed signatures with different parameters")
        self._mask |= other._mask

    @property
    def popcount(self) -> int:
        return bin(self._mask).count("1")

    def __repr__(self) -> str:
        return (f"HashedSignature(bits={self.bits}, k={self.hashes}, "
                f"set={self.popcount}, exact={len(self._exact)})")
