"""Double-bit-select (DBS) signature — Figure 3(b).

INSERT decodes *two* fields of the block address — the low bits and the next
group of bits — into two independent halves of the register, setting one bit
in each. CONFLICT reports a hit only when *both* bits are set, which is a
two-hash Bloom filter and is "similar to Bulk's default signature mechanism"
(Section 5). For 2Kb total, each half is 1Kb (10 decoded bits), matching the
paper's "separately decodes the 10 least-significant bits of a block address
and the next 10 address bits".
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.common.errors import ConfigError, TransactionError
from repro.signatures.base import Signature


class DoubleBitSelectSignature(Signature):
    """Two-field decode; conflict requires both decoded bits set."""

    __slots__ = ("bits", "block_bytes", "_lo", "_hi",
                 "_half_bits", "_half_mask", "_field_shift", "_block_shift")

    def __init__(self, bits: int = 2048, block_bytes: int = 64) -> None:
        super().__init__()
        if bits < 4 or bits & (bits - 1):
            raise ConfigError(
                f"DBS bits must be a power of two >= 4, got {bits}")
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigError(
                f"block size must be a power of two: {block_bytes}")
        self.bits = bits
        self.block_bytes = block_bytes
        self._half_bits = bits // 2
        self._half_mask = self._half_bits - 1
        self._field_shift = self._half_bits.bit_length() - 1  # log2(half)
        self._block_shift = block_bytes.bit_length() - 1
        self._lo = 0
        self._hi = 0

    def _indices(self, block_addr: int) -> Tuple[int, int]:
        idx = block_addr >> self._block_shift
        return idx & self._half_mask, (idx >> self._field_shift) & self._half_mask

    # Flattened hot-path overrides (see BitSelectSignature for rationale).
    def insert(self, block_addr: int) -> None:
        idx = block_addr >> self._block_shift
        self._lo |= 1 << (idx & self._half_mask)
        self._hi |= 1 << ((idx >> self._field_shift) & self._half_mask)
        self._exact.add(block_addr)

    def contains(self, block_addr: int) -> bool:
        idx = block_addr >> self._block_shift
        return bool((self._lo >> (idx & self._half_mask) & 1)
                    and (self._hi
                         >> ((idx >> self._field_shift) & self._half_mask)
                         & 1))

    def spawn_empty(self) -> "DoubleBitSelectSignature":
        return DoubleBitSelectSignature(self.bits, self.block_bytes)

    def _insert_filter(self, block_addr: int) -> None:
        lo, hi = self._indices(block_addr)
        self._lo |= 1 << lo
        self._hi |= 1 << hi

    def _test_filter(self, block_addr: int) -> bool:
        lo, hi = self._indices(block_addr)
        return bool((self._lo >> lo & 1) and (self._hi >> hi & 1))

    def _clear_filter(self) -> None:
        self._lo = 0
        self._hi = 0

    def _filter_state(self) -> Any:
        return (self._lo, self._hi)

    def _load_filter_state(self, state: Any) -> None:
        self._lo, self._hi = state

    def _union_filter(self, other: Signature) -> None:
        if not isinstance(other, DoubleBitSelectSignature):
            # Explicit raise (not ``assert``): this guards a hot
            # correctness path and must survive ``python -O``.
            raise TransactionError(
                f"cannot union {type(other).__name__} into DoubleBitSelectSignature")
        if other.bits != self.bits:
            raise ConfigError(
                f"cannot union {other.bits}-bit into {self.bits}-bit signature")
        self._lo |= other._lo
        self._hi |= other._hi

    @property
    def popcount(self) -> int:
        return bin(self._lo).count("1") + bin(self._hi).count("1")

    def __repr__(self) -> str:
        return (f"DoubleBitSelectSignature(bits={self.bits}, "
                f"set={self.popcount}, exact={len(self._exact)})")
