"""Construct signatures from a :class:`~repro.common.config.SignatureConfig`."""

from __future__ import annotations

from repro.common.config import SignatureConfig, SignatureKind
from repro.common.errors import ConfigError
from repro.signatures.base import Signature
from repro.signatures.bitselect import BitSelectSignature
from repro.signatures.coarsebitselect import CoarseBitSelectSignature
from repro.signatures.doublebitselect import DoubleBitSelectSignature
from repro.signatures.hashed import HashedSignature
from repro.signatures.perfect import PerfectSignature
from repro.signatures.rwpair import ReadWriteSignature


def make_signature(cfg: SignatureConfig, block_bytes: int = 64) -> Signature:
    """Build one signature (a read-set OR a write-set summary)."""
    if cfg.kind is SignatureKind.PERFECT:
        return PerfectSignature()
    if cfg.kind is SignatureKind.BIT_SELECT:
        return BitSelectSignature(bits=cfg.bits, block_bytes=block_bytes)
    if cfg.kind is SignatureKind.DOUBLE_BIT_SELECT:
        return DoubleBitSelectSignature(bits=cfg.bits, block_bytes=block_bytes)
    if cfg.kind is SignatureKind.COARSE_BIT_SELECT:
        macro = max(cfg.granularity, block_bytes)
        return CoarseBitSelectSignature(bits=cfg.bits, macroblock_bytes=macro)
    if cfg.kind is SignatureKind.HASHED:
        return HashedSignature(bits=cfg.bits, hashes=cfg.hashes,
                               block_bytes=block_bytes)
    raise ConfigError(f"unknown signature kind: {cfg.kind}")


def make_rw_pair(cfg: SignatureConfig,
                 block_bytes: int = 64) -> ReadWriteSignature:
    """Build the read/write pair for one thread context."""
    return ReadWriteSignature(make_signature(cfg, block_bytes),
                              make_signature(cfg, block_bytes))
