"""Coarse-bit-select (CBS) signature — Figure 3(c).

Identical decode to bit-select, but applied at *macroblock* granularity —
the paper's configuration tracks 1 KB macroblocks (sixteen 64-byte blocks).
Coarser granularity means large read/write sets occupy fewer filter bits
(helping transactions like Raytrace's 550-block read set), at the price of
false conflicts between distinct blocks inside one macroblock.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigError, TransactionError
from repro.signatures.base import Signature


class CoarseBitSelectSignature(Signature):
    """Bit-select over macroblock (default 1 KB) addresses."""

    __slots__ = ("bits", "macroblock_bytes", "_mask", "_index_mask",
                 "_macro_shift")

    def __init__(self, bits: int = 2048, macroblock_bytes: int = 1024) -> None:
        super().__init__()
        if bits <= 0 or bits & (bits - 1):
            raise ConfigError(f"signature bits must be a power of two: {bits}")
        if macroblock_bytes <= 0 or macroblock_bytes & (macroblock_bytes - 1):
            raise ConfigError(
                f"macroblock size must be a power of two: {macroblock_bytes}")
        self.bits = bits
        self.macroblock_bytes = macroblock_bytes
        self._mask = 0
        self._index_mask = bits - 1
        self._macro_shift = macroblock_bytes.bit_length() - 1

    def _bit_index(self, block_addr: int) -> int:
        return (block_addr >> self._macro_shift) & self._index_mask

    # Flattened hot-path overrides (see BitSelectSignature for rationale).
    def insert(self, block_addr: int) -> None:
        self._mask |= 1 << ((block_addr >> self._macro_shift)
                            & self._index_mask)
        self._exact.add(block_addr)

    def contains(self, block_addr: int) -> bool:
        return bool(self._mask
                    >> ((block_addr >> self._macro_shift) & self._index_mask)
                    & 1)

    def spawn_empty(self) -> "CoarseBitSelectSignature":
        return CoarseBitSelectSignature(self.bits, self.macroblock_bytes)

    def _insert_filter(self, block_addr: int) -> None:
        self._mask |= 1 << self._bit_index(block_addr)

    def _test_filter(self, block_addr: int) -> bool:
        return bool(self._mask >> self._bit_index(block_addr) & 1)

    def _clear_filter(self) -> None:
        self._mask = 0

    def _filter_state(self) -> Any:
        return self._mask

    def _load_filter_state(self, state: Any) -> None:
        self._mask = int(state)

    def _union_filter(self, other: Signature) -> None:
        if not isinstance(other, CoarseBitSelectSignature):
            # Explicit raise (not ``assert``): this guards a hot
            # correctness path and must survive ``python -O``.
            raise TransactionError(
                f"cannot union {type(other).__name__} into CoarseBitSelectSignature")
        if (other.bits != self.bits
                or other.macroblock_bytes != self.macroblock_bytes):
            raise ConfigError("cannot union CBS signatures with different "
                              "geometry")
        self._mask |= other._mask

    @property
    def popcount(self) -> int:
        return bin(self._mask).count("1")

    def __repr__(self) -> str:
        return (f"CoarseBitSelectSignature(bits={self.bits}, "
                f"macro={self.macroblock_bytes}, set={self.popcount})")
