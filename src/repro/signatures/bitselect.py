"""Bit-select (BS) signature — Figure 3(a).

INSERT decodes the ``n`` least-significant bits of the *block* address (the
address divided by the block size) and ORs the decoded one-hot value into an
``N = 2**n`` bit register. CONFLICT tests the corresponding bit; CLEAR zeros
the register. The filter state is kept as a Python integer bit mask, which
makes union (bitwise OR) and snapshot (the integer itself) trivial.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigError, TransactionError
from repro.signatures.base import Signature


class BitSelectSignature(Signature):
    """Single-field decode of low block-address bits into an N-bit register."""

    __slots__ = ("bits", "block_bytes", "_mask", "_index_mask", "_block_shift")

    def __init__(self, bits: int = 2048, block_bytes: int = 64) -> None:
        super().__init__()
        if bits <= 0 or bits & (bits - 1):
            raise ConfigError(f"signature bits must be a power of two: {bits}")
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigError(
                f"block size must be a power of two: {block_bytes}")
        self.bits = bits
        self.block_bytes = block_bytes
        self._mask = 0
        self._index_mask = bits - 1
        self._block_shift = block_bytes.bit_length() - 1

    def _bit_index(self, block_addr: int) -> int:
        return (block_addr >> self._block_shift) & self._index_mask

    # Flattened hot-path overrides of the base-class insert/contains: one
    # shift-and-mask on a Python int, no template-method indirection. The
    # exact shadow is still maintained, matching Signature.insert.
    def insert(self, block_addr: int) -> None:
        self._mask |= 1 << ((block_addr >> self._block_shift)
                            & self._index_mask)
        self._exact.add(block_addr)

    def contains(self, block_addr: int) -> bool:
        return bool(self._mask
                    >> ((block_addr >> self._block_shift) & self._index_mask)
                    & 1)

    def spawn_empty(self) -> "BitSelectSignature":
        return BitSelectSignature(self.bits, self.block_bytes)

    def _insert_filter(self, block_addr: int) -> None:
        self._mask |= 1 << self._bit_index(block_addr)

    def _test_filter(self, block_addr: int) -> bool:
        return bool(self._mask >> self._bit_index(block_addr) & 1)

    def _clear_filter(self) -> None:
        self._mask = 0

    def _filter_state(self) -> Any:
        return self._mask

    def _load_filter_state(self, state: Any) -> None:
        self._mask = int(state)

    def _union_filter(self, other: Signature) -> None:
        if not isinstance(other, BitSelectSignature):
            # Explicit raise (not ``assert``): this guards a hot
            # correctness path and must survive ``python -O``.
            raise TransactionError(
                f"cannot union {type(other).__name__} into BitSelectSignature")
        if other.bits != self.bits:
            raise ConfigError(
                f"cannot union {other.bits}-bit into {self.bits}-bit signature")
        self._mask |= other._mask

    @property
    def popcount(self) -> int:
        """Number of set filter bits (occupancy; drives false positives)."""
        return bin(self._mask).count("1")

    def __repr__(self) -> str:
        return (f"BitSelectSignature(bits={self.bits}, "
                f"set={self.popcount}, exact={len(self._exact)})")
