"""Signature abstraction (Section 2).

A signature conservatively summarizes a set of block-aligned physical
addresses. The contract mirrors the paper's operations:

* ``INSERT(O, A)``  → :meth:`Signature.insert`
* ``CONFLICT(O, A)`` → :meth:`Signature.contains` (may return false
  positives, never false negatives)
* ``CLEAR(O)``      → :meth:`Signature.clear`

Beyond the paper's hardware interface, signatures here are *software
accessible* — they can be snapshotted, restored, and unioned — because that
accessibility is exactly the property LogTM-SE exploits for virtualization
(nesting saves to the log, descheduling merges into a summary signature).

Every implementation also maintains an exact shadow set. The shadow is a
simulator-observability feature (it is how the harness counts *false
positive* conflicts for Table 3); the modeled hardware never consults it for
conflict decisions.
"""

from __future__ import annotations

import abc
from typing import Any, FrozenSet, Iterable, Set, Tuple

from repro.common.errors import TransactionError

#: Opaque snapshot of a signature's state: (filter-state, exact-shadow).
Snapshot = Tuple[Any, FrozenSet[int]]


class Signature(abc.ABC):
    """One conservative address-set summary (a read-set OR a write-set)."""

    __slots__ = ("_exact",)

    def __init__(self) -> None:
        self._exact: Set[int] = set()

    # -- hardware interface -------------------------------------------------

    def insert(self, block_addr: int) -> None:
        """INSERT: add a block-aligned physical address to the set."""
        self._insert_filter(block_addr)
        self._exact.add(block_addr)

    def contains(self, block_addr: int) -> bool:
        """CONFLICT test: True if the address *may* be in the set."""
        return self._test_filter(block_addr)

    def clear(self) -> None:
        """CLEAR: empty the set (a local, single-cycle operation)."""
        self._clear_filter()
        self._exact.clear()

    @property
    def is_empty(self) -> bool:
        """Whether nothing was inserted since the last clear."""
        return not self._exact

    # -- software accessibility (virtualization) ----------------------------

    def snapshot(self) -> Snapshot:
        """Copy the state out (e.g. into a log frame's signature-save area)."""
        return (self._filter_state(), frozenset(self._exact))

    def restore(self, snap: Snapshot) -> None:
        """Overwrite this signature with a previously saved snapshot."""
        filter_state, exact = snap
        self._load_filter_state(filter_state)
        self._exact = set(exact)

    def union_update(self, other: "Signature") -> None:
        """OR another signature of the same type into this one.

        Used by the OS to build summary signatures (Section 4.1).
        """
        if type(other) is not type(self):
            raise TransactionError(
                f"cannot union {type(other).__name__} into "
                f"{type(self).__name__}")
        self._union_filter(other)
        self._exact |= other._exact

    def union_snapshot(self, snap: Snapshot) -> None:
        """OR a saved snapshot into this signature."""
        scratch = self.spawn_empty()
        scratch.restore(snap)
        self.union_update(scratch)

    # -- observability (harness only; not modeled hardware) -----------------

    def contains_exact(self, block_addr: int) -> bool:
        """Ground truth for false-positive accounting."""
        return block_addr in self._exact

    def exact_set(self) -> FrozenSet[int]:
        return frozenset(self._exact)

    @property
    def exact_size(self) -> int:
        return len(self._exact)

    def false_positive(self, block_addr: int) -> bool:
        """Whether a CONFLICT hit on this address would be spurious."""
        return self.contains(block_addr) and not self.contains_exact(block_addr)

    # -- implementation hooks ------------------------------------------------

    @abc.abstractmethod
    def spawn_empty(self) -> "Signature":
        """A fresh, empty signature with identical parameters."""

    @abc.abstractmethod
    def _insert_filter(self, block_addr: int) -> None: ...

    @abc.abstractmethod
    def _test_filter(self, block_addr: int) -> bool: ...

    @abc.abstractmethod
    def _clear_filter(self) -> None: ...

    @abc.abstractmethod
    def _filter_state(self) -> Any: ...

    @abc.abstractmethod
    def _load_filter_state(self, state: Any) -> None: ...

    @abc.abstractmethod
    def _union_filter(self, other: "Signature") -> None: ...

    def insert_many(self, block_addrs: Iterable[int]) -> None:
        for addr in block_addrs:
            self.insert(addr)
