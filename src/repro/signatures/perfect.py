"""Perfect (idealized) signature.

Records exact read/write sets regardless of size — the paper's "P" bars in
Figure 4. Unimplementable in hardware (it is an unbounded associative
search), but the reference point every realistic signature is compared to.
A perfect signature never produces false positives.
"""

from __future__ import annotations

from typing import Any, FrozenSet

from repro.signatures.base import Signature


class PerfectSignature(Signature):
    """Exact set membership; the filter *is* the exact shadow set."""

    __slots__ = ()

    # Flattened hot-path overrides: the exact shadow *is* the filter, so
    # insert/contains collapse to one set operation each.
    def insert(self, block_addr: int) -> None:
        self._exact.add(block_addr)

    def contains(self, block_addr: int) -> bool:
        return block_addr in self._exact

    def spawn_empty(self) -> "PerfectSignature":
        return PerfectSignature()

    def _insert_filter(self, block_addr: int) -> None:
        pass  # the exact shadow maintained by the base class is the state

    def _test_filter(self, block_addr: int) -> bool:
        return block_addr in self._exact

    def _clear_filter(self) -> None:
        pass

    def _filter_state(self) -> Any:
        return None  # fully captured by the exact shadow

    def _load_filter_state(self, state: Any) -> None:
        pass

    def _union_filter(self, other: Signature) -> None:
        pass

    def __repr__(self) -> str:
        return f"PerfectSignature(n={len(self._exact)})"
