"""Experiment definitions: one function per table/figure of the paper.

Each experiment returns structured data (plus a ``render`` helper) so the
benchmarks can print the same rows the paper reports and EXPERIMENTS.md can
record paper-vs-measured values. Scales:

* ``QUICK`` — small thread counts / unit counts for CI and tests;
* ``FULL`` — the 32-thread machine of Table 1 with enough units of work for
  stable shapes (used by the benchmark harness).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import (CoherenceStyle, SignatureKind, SyncMode,
                                 SystemConfig, figure4_variants)
from repro.common.rng import DEFAULT_SEED, make_rng, perturbed_seeds
from repro.common.stats import ConfidenceInterval
from repro.harness.parallel import RunTask, execute_tasks
from repro.harness.report import render_series, render_table
from repro.harness.runner import RunResult, run_perturbed, run_workload
from repro.harness.sweep import run_sweep
from repro.signatures.factory import make_signature
from repro.common.config import SignatureConfig
from repro.workloads import (BerkeleyDB, BigFootprint, Cholesky, Mp3d,
                             Radiosity, Raytrace, Workload)


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run the workloads."""

    threads: int = 32
    units: Dict[str, int] = field(default_factory=dict)
    runs: int = 1
    default_units: int = 4
    #: Whether runs at this scale produce statistically meaningful shapes
    #: (quick/CI scales run the code paths but skip shape assertions).
    asserts_shapes: bool = True

    def units_for(self, name: str) -> int:
        return self.units.get(name, self.default_units)


QUICK = ExperimentScale(threads=8, default_units=2, runs=1,
                        asserts_shapes=False)
FULL = ExperimentScale(
    threads=32,
    units={"BerkeleyDB": 4, "Cholesky": 6, "Radiosity": 10,
           "Raytrace": 24, "Mp3d": 10},
    runs=3,
    default_units=6,
)

#: Paper reference values used by EXPERIMENTS.md (Table 2 columns).
PAPER_TABLE2 = {
    "BerkeleyDB": dict(read_avg=8.1, read_max=30, write_avg=6.8, write_max=28),
    "Cholesky": dict(read_avg=4.0, read_max=4, write_avg=2.0, write_max=2),
    "Radiosity": dict(read_avg=2.0, read_max=25, write_avg=1.5, write_max=45),
    "Raytrace": dict(read_avg=5.8, read_max=550, write_avg=2.0, write_max=3),
    "Mp3d": dict(read_avg=2.2, read_max=18, write_avg=1.7, write_max=10),
}

WORKLOAD_CLASSES: Dict[str, type] = {
    "BerkeleyDB": BerkeleyDB,
    "Cholesky": Cholesky,
    "Radiosity": Radiosity,
    "Raytrace": Raytrace,
    "Mp3d": Mp3d,
}


def make_workload(name: str, scale: ExperimentScale,
                  seed: int = DEFAULT_SEED) -> Workload:
    cls = WORKLOAD_CLASSES[name]
    return cls(num_threads=scale.threads,
               units_per_thread=scale.units_for(name), seed=seed)


# ---------------------------------------------------------------------------
# Table 1 — system model parameters
# ---------------------------------------------------------------------------

def table1_rows(cfg: Optional[SystemConfig] = None) -> List[Tuple[str, str]]:
    cfg = cfg or SystemConfig.default()
    return [
        ("Processor Cores",
         f"{cfg.num_cores} cores, {cfg.threads_per_core}-way SMT "
         f"({cfg.total_threads} thread contexts)"),
        ("L1 Cache",
         f"{cfg.l1.size_bytes // 1024} KB {cfg.l1.associativity}-way, "
         f"{cfg.l1.block_bytes}-byte blocks, "
         f"{cfg.l1.latency} cycle uncontended latency"),
        ("L2 Cache",
         f"{cfg.l2.size_bytes // (1024 * 1024)} MB "
         f"{cfg.l2.associativity}-way, {cfg.l2_banks} banks, "
         f"{cfg.l2.latency}-cycle uncontended latency"),
        ("Memory",
         f"{cfg.memory_bytes // (1024 ** 3)} GB, "
         f"{cfg.memory_latency}-cycle latency"),
        ("L2-Directory",
         f"Full sharer bit-vector; {cfg.directory_latency}-cycle latency"),
        ("Interconnection Network",
         f"{cfg.mesh_dims[0]}x{cfg.mesh_dims[1]} grid, "
         f"{cfg.link_latency}-cycle link latency"),
    ]


def render_table1(cfg: Optional[SystemConfig] = None) -> str:
    return render_table(["Parameter", "Setting"], table1_rows(cfg),
                        title="Table 1: System Model Parameters")


# ---------------------------------------------------------------------------
# Table 2 — benchmark characteristics
# ---------------------------------------------------------------------------

@dataclass
class Table2Row:
    name: str
    input_desc: str
    unit_name: str
    units: int
    transactions: int
    read_avg: float
    read_max: int
    write_avg: float
    write_max: int


def table2(scale: ExperimentScale = QUICK, seed: int = DEFAULT_SEED,
           cfg: Optional[SystemConfig] = None) -> List[Table2Row]:
    """Run every workload with perfect signatures; measure footprints."""
    cfg = cfg or SystemConfig.default()
    cfg = cfg.with_signature(SignatureKind.PERFECT)
    rows = []
    for name in WORKLOAD_CLASSES:
        workload = make_workload(name, scale, seed)
        result = run_workload(cfg, workload, seed=seed)
        reads = result.histograms.get("tm.read_set_blocks")
        writes = result.histograms.get("tm.write_set_blocks")
        rows.append(Table2Row(
            name=name,
            input_desc=workload.input_desc,
            unit_name=workload.unit_name,
            units=result.units,
            transactions=result.commits,
            read_avg=reads.mean if reads else 0.0,
            read_max=reads.maximum if reads else 0,
            write_avg=writes.mean if writes else 0.0,
            write_max=writes.maximum if writes else 0,
        ))
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    return render_table(
        ["Benchmark", "Input", "Unit of Work", "Units",
         "Transactions", "Read Avg", "Read Max", "Write Avg", "Write Max"],
        [(r.name, r.input_desc, r.unit_name, r.units, r.transactions,
          r.read_avg, r.read_max, r.write_avg, r.write_max) for r in rows],
        title="Table 2: Benchmarks and Inputs (measured)")


# ---------------------------------------------------------------------------
# Figure 3 — signature implementations (false-positive behaviour)
# ---------------------------------------------------------------------------

@dataclass
class Figure3Point:
    kind: str
    bits: int
    inserted: int
    false_positive_rate: float


def figure3(set_sizes: Sequence[int] = (2, 8, 32, 128, 512),
            bit_sizes: Sequence[int] = (64, 256, 1024, 2048),
            probes: int = 2000, seed: int = DEFAULT_SEED
            ) -> List[Figure3Point]:
    """Measure each Figure 3 design's false-positive rate directly.

    Inserts ``n`` random block addresses and probes addresses *not*
    inserted; the hit rate on those is the pure aliasing rate of the design
    at that occupancy — the property that drives Results 2 and 3.
    """
    rng = make_rng(seed, "figure3")
    points: List[Figure3Point] = []
    kinds = [(SignatureKind.BIT_SELECT, "BS", 64),
             (SignatureKind.DOUBLE_BIT_SELECT, "DBS", 64),
             (SignatureKind.COARSE_BIT_SELECT, "CBS", 1024)]
    for kind, label, granularity in kinds:
        for bits in bit_sizes:
            for n in set_sizes:
                sig = make_signature(
                    SignatureConfig(kind=kind, bits=bits,
                                    granularity=granularity))
                inserted = set()
                while len(inserted) < n:
                    inserted.add(rng.randrange(1 << 26) * 64)
                for addr in inserted:
                    sig.insert(addr)
                false_hits = 0
                tested = 0
                while tested < probes:
                    addr = rng.randrange(1 << 26) * 64
                    if addr in inserted:
                        continue
                    tested += 1
                    if sig.contains(addr):
                        false_hits += 1
                points.append(Figure3Point(
                    kind=label, bits=bits, inserted=n,
                    false_positive_rate=false_hits / tested))
    return points


def render_figure3(points: Sequence[Figure3Point]) -> str:
    return render_table(
        ["Design", "Bits", "Inserted blocks", "False-positive rate"],
        [(p.kind, p.bits, p.inserted, p.false_positive_rate)
         for p in points],
        title="Figure 3: signature designs, measured aliasing")


@dataclass
class Figure3AttributionRow:
    """Abort attribution of one signature variant on the stress microbench."""

    signature: str
    commits: int
    aborts: int
    aborts_true_conflict: int
    aborts_false_positive: int
    aborts_other: int


def figure3_attribution(seed: int = DEFAULT_SEED,
                        base_cfg: Optional[SystemConfig] = None,
                        num_threads: int = 4, units: int = 2,
                        blocks_per_sweep: int = 96,
                        bit_sizes: Sequence[int] = (64, 2048)
                        ) -> List[Figure3AttributionRow]:
    """In-simulation companion to :func:`figure3`: *where aborts come from*.

    Runs the large-footprint microbench (write sets that fill small
    signatures) under a perfect signature and bit-select signatures of the
    Figure 3 sizes, then splits each variant's aborts with the
    :mod:`repro.obs.analysis` attribution counters. The snooping substrate
    is used so every request probes every remote signature — with disjoint
    per-thread write sets a perfect signature therefore cannot abort at
    all, and every abort that appears under BS is aliasing: the cost
    Figure 3's false-positive rates predict.
    """
    base = base_cfg or dataclasses.replace(
        SystemConfig.small(), coherence=CoherenceStyle.SNOOPING)
    variants = [("Perfect", base.with_signature(SignatureKind.PERFECT))]
    for bits in bit_sizes:
        variants.append((f"BS_{bits}",
                         base.with_signature(SignatureKind.BIT_SELECT,
                                             bits=bits)))
    rows: List[Figure3AttributionRow] = []
    for label, cfg in variants:
        workload = BigFootprint(num_threads=num_threads,
                                units_per_thread=units,
                                blocks_per_sweep=blocks_per_sweep,
                                seed=seed)
        result = run_workload(cfg, workload, seed=seed, config_label=label)
        rows.append(Figure3AttributionRow(
            signature=label,
            commits=result.commits,
            aborts=result.aborts,
            aborts_true_conflict=result.aborts_true_conflict,
            aborts_false_positive=result.aborts_false_positive,
            aborts_other=(result.aborts - result.aborts_true_conflict
                          - result.aborts_false_positive)))
    return rows


def render_figure3_attribution(rows: Sequence[Figure3AttributionRow]) -> str:
    return render_table(
        ["Signature", "Commits", "Aborts", "True conflict",
         "False positive", "Other"],
        [(r.signature, r.commits, r.aborts, r.aborts_true_conflict,
          r.aborts_false_positive, r.aborts_other) for r in rows],
        title="Figure 3 companion: abort attribution (BigFootprint)")


# ---------------------------------------------------------------------------
# Figure 4 — speedup over locks
# ---------------------------------------------------------------------------

@dataclass
class Figure4Cell:
    workload: str
    variant: str
    speedup: float
    ci_half_width: float
    cycles: float


def figure4(scale: ExperimentScale = QUICK, seed: int = DEFAULT_SEED,
            base_cfg: Optional[SystemConfig] = None,
            workloads: Optional[Sequence[str]] = None,
            jobs: Optional[int] = 1, cache=None) -> List[Figure4Cell]:
    """Run every (workload x variant) pair; speedup is vs. the Lock bars.

    ``jobs``/``cache`` fan the (workload x variant x perturbed-run) cells
    out over the parallel sweep engine; the serial path (``jobs=1``, no
    cache) is unchanged and the parallel one returns identical cells.
    """
    base = base_cfg or SystemConfig.default()
    names = list(workloads or WORKLOAD_CLASSES)
    variant_list = list(figure4_variants(base))
    cells: List[Figure4Cell] = []

    if jobs == 1 and cache is None:
        for name in names:
            lock_cycles: Optional[float] = None
            for label, cfg in variant_list:
                factory = lambda: make_workload(name, scale, seed)
                results, ci = run_perturbed(cfg, factory, runs=scale.runs,
                                            seed=seed, config_label=label)
                if label == "Lock":
                    lock_cycles = ci.mean
                speedup = (lock_cycles / ci.mean) if lock_cycles else 0.0
                rel_hw = ((ci.half_width / ci.mean) * speedup
                          if ci.mean else 0.0)
                cells.append(Figure4Cell(workload=name, variant=label,
                                         speedup=speedup,
                                         ci_half_width=rel_hw,
                                         cycles=ci.mean))
        return cells

    # Parallel path: every (workload, variant, perturbed run) is one
    # independent cell. Same seeds run_perturbed would use.
    run_seeds = perturbed_seeds(seed, scale.runs)
    tasks = [RunTask(key=f"{name}/{label}#{i}", label=label, cfg=cfg,
                     make_workload=(
                         lambda name=name: make_workload(name, scale, seed)),
                     seed=run_seed)
             for name in names
             for label, cfg in variant_list
             for i, run_seed in enumerate(run_seeds)]
    outcomes = execute_tasks(tasks, jobs=jobs, cache=cache)
    for name in names:
        lock_cycles = None
        for label, _ in variant_list:
            samples = [float(outcomes[f"{name}/{label}#{i}"].result.cycles)
                       for i in range(len(run_seeds))]
            ci = ConfidenceInterval.from_samples(samples)
            if label == "Lock":
                lock_cycles = ci.mean
            speedup = (lock_cycles / ci.mean) if lock_cycles else 0.0
            rel_hw = (ci.half_width / ci.mean) * speedup if ci.mean else 0.0
            cells.append(Figure4Cell(workload=name, variant=label,
                                     speedup=speedup, ci_half_width=rel_hw,
                                     cycles=ci.mean))
    return cells


def render_figure4(cells: Sequence[Figure4Cell]) -> str:
    return render_table(
        ["Benchmark", "Variant", "Speedup vs locks", "±95% CI", "Cycles"],
        [(c.workload, c.variant, c.speedup, c.ci_half_width, c.cycles)
         for c in cells],
        title="Figure 4: speedup normalized to locks")


# ---------------------------------------------------------------------------
# Table 3 — impact of signature size on conflict detection
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    workload: str
    signature: str
    transactions: int
    aborts: int
    stalls: int
    false_positive_pct: float


TABLE3_SIGNATURES: List[Tuple[str, SignatureKind, int, int]] = [
    ("Perfect", SignatureKind.PERFECT, 0, 64),
    ("BS_2Kb", SignatureKind.BIT_SELECT, 2048, 64),
    ("CBS_2Kb", SignatureKind.COARSE_BIT_SELECT, 2048, 1024),
    ("DBS_2Kb", SignatureKind.DOUBLE_BIT_SELECT, 2048, 64),
    ("BS_64", SignatureKind.BIT_SELECT, 64, 64),
    ("CBS_64", SignatureKind.COARSE_BIT_SELECT, 64, 1024),
    ("DBS_64", SignatureKind.DOUBLE_BIT_SELECT, 64, 64),
]


def table3(scale: ExperimentScale = QUICK, seed: int = DEFAULT_SEED,
           workloads: Sequence[str] = ("BerkeleyDB", "Raytrace"),
           base_cfg: Optional[SystemConfig] = None,
           jobs: Optional[int] = 1, cache=None) -> List[Table3Row]:
    """One sweep per workload over the Table 3 signature family.

    ``jobs``/``cache`` are forwarded to :func:`repro.harness.run_sweep`
    (``jobs=1`` without a cache is the serial path).
    """
    base = base_cfg or SystemConfig.default()
    rows: List[Table3Row] = []
    for name in workloads:
        variants = []
        for label, kind, bits, granularity in TABLE3_SIGNATURES:
            if kind is SignatureKind.PERFECT:
                cfg = base.with_signature(kind)
            else:
                cfg = base.with_signature(kind, bits=bits,
                                          granularity=granularity)
            variants.append((label, cfg))
        sweep = run_sweep(variants,
                          lambda name=name: make_workload(name, scale, seed),
                          seed=seed, jobs=jobs, cache=cache)
        for label, _ in variants:
            result = sweep.results[label]
            rows.append(Table3Row(
                workload=name, signature=label,
                transactions=result.commits, aborts=result.aborts,
                stalls=result.stalls,
                false_positive_pct=result.false_positive_pct))
    return rows


def render_table3(rows: Sequence[Table3Row]) -> str:
    return render_table(
        ["Benchmark", "Signature", "Transactions", "Aborts", "Stalls",
         "False Positive %"],
        [(r.workload, r.signature, r.transactions, r.aborts, r.stalls,
          r.false_positive_pct) for r in rows],
        title="Table 3: Impact of Signature Size on Conflict Detection")


# ---------------------------------------------------------------------------
# Result 4 — victimization of transactional data
# ---------------------------------------------------------------------------

@dataclass
class VictimizationRow:
    workload: str
    transactions: int
    l1_victimizations: int
    l2_victimizations: int
    sticky_created: int


def victimization(scale: ExperimentScale = QUICK, seed: int = DEFAULT_SEED,
                  base_cfg: Optional[SystemConfig] = None
                  ) -> List[VictimizationRow]:
    cfg = (base_cfg or SystemConfig.default()).with_signature(
        SignatureKind.PERFECT)
    # Victimization is a tail event (the paper observed 481 in 48K
    # Raytrace transactions): Raytrace needs a larger transaction sample
    # for its over-L1-capacity traversals to show up.
    units = dict(scale.units)
    units["Raytrace"] = max(units.get("Raytrace", scale.default_units) * 5,
                            scale.default_units * 5)
    boosted = ExperimentScale(threads=scale.threads, units=units,
                              runs=scale.runs,
                              default_units=scale.default_units,
                              asserts_shapes=scale.asserts_shapes)
    rows = []
    for name in WORKLOAD_CLASSES:
        result = run_workload(cfg, make_workload(name, boosted, seed),
                              seed=seed)
        rows.append(VictimizationRow(
            workload=name,
            transactions=result.commits,
            l1_victimizations=result.counters.get("victimization.l1_tx", 0),
            l2_victimizations=result.counters.get("victimization.l2_tx", 0),
            sticky_created=result.counters.get("coherence.sticky_created", 0)))
    return rows


def render_victimization(rows: Sequence[VictimizationRow]) -> str:
    return render_table(
        ["Benchmark", "Transactions", "L1 victimizations",
         "L2 victimizations", "Sticky states created"],
        [(r.workload, r.transactions, r.l1_victimizations,
          r.l2_victimizations, r.sticky_created) for r in rows],
        title="Result 4: victimization of transactional data")


# ---------------------------------------------------------------------------
# Table 4 — virtualization-technique comparison
# ---------------------------------------------------------------------------

#: The paper's qualitative event/action matrix, verbatim. Legend:
#: '-' simple hardware, H complex hardware, S software, A abort,
#: C copy values, W walk cache, V validate read set, B block others.
TABLE4_MATRIX: Dict[str, Dict[str, str]] = {
    "UTM":            dict(before="- / - / -", eviction="H", miss="H",
                           commit="H", abort="HC", paging="H", switch="H"),
    "VTM":            dict(before="- / - / -", eviction="S", miss="S",
                           commit="S C", abort="S", paging="S", switch="SWV"),
    "UnrestrictedTM": dict(before="- / - / -", eviction="A", miss="B",
                           commit="B", abort="B", paging="AS", switch="AS"),
    "XTM":            dict(before="- / - / -", eviction="ASC", miss="-",
                           commit="SCV", abort="S", paging="SC", switch="AS"),
    "XTM-g":          dict(before="- / - / -", eviction="SC", miss="-",
                           commit="SCV", abort="S", paging="SC", switch="AS"),
    "PTM-Copy":       dict(before="- / - / -", eviction="SC", miss="S",
                           commit="S", abort="SC", paging="S", switch="S"),
    "PTM-Select":     dict(before="- / - / -", eviction="S", miss="H",
                           commit="S", abort="S", paging="S", switch="S"),
    "LogTM-SE":       dict(before="- / - / SC", eviction="-", miss="-",
                           commit="S", abort="SC", paging="S", switch="S"),
}


def render_table4() -> str:
    headers = ["System", "Before virt. ($miss/commit/abort)", "$Eviction",
               "$Miss", "Commit", "Abort", "Paging", "Thread switch"]
    rows = [(name, row["before"], row["eviction"], row["miss"],
             row["commit"], row["abort"], row["paging"], row["switch"])
            for name, row in TABLE4_MATRIX.items()]
    return render_table(headers, rows,
                        title="Table 4: HTM Virtualization Techniques")
