"""Workload runner: executes a workload on a system and collects results.

``run_workload`` is the harness's single entry point: build a machine from a
config, place one hardware context per workload thread, execute every
thread's program to completion, and return cycles + statistics. The paper's
throughput metric is "units of work per unit time"; with a fixed amount of
work per run, *total cycles* is the inverse metric and speedup is a cycle
ratio.

``run_perturbed`` repeats a run with pseudo-randomly perturbed seeds to
produce the 95% confidence intervals of the paper's methodology [2].
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.events import Event

from repro.common.config import SyncMode, SystemConfig
from repro.common.rng import DEFAULT_SEED, make_rng, perturbed_seeds
from repro.common.stats import ConfidenceInterval, Histogram
from repro.cpu.executor import ThreadExecutor
from repro.harness.system import System
from repro.workloads.base import Workload

#: Hard per-run cycle ceiling: a run exceeding this is a model bug, not a
#: slow workload.
DEFAULT_CYCLE_LIMIT = 500_000_000


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    workload: str
    config_label: str
    cycles: int
    units: int
    counters: Dict[str, int]
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    system: Optional[System] = None
    #: Observability events captured during the run (``trace=True``); not
    #: part of equality or the JSON record — use the exporters in
    #: :mod:`repro.obs.export` to persist them.
    events: Optional[List[Event]] = field(default=None, compare=False,
                                          repr=False)
    #: Checkers that ran when ``verify`` was requested (empty otherwise,
    #: or when the config disables verification — e.g. lazy mode).
    verify_checks_run: List[str] = field(default_factory=list)
    #: JSON-safe records of every violation the checkers found.
    verify_violations: List[Dict] = field(default_factory=list)
    #: The full report object (not serialized, not compared).
    verify_report: Optional[object] = field(default=None, compare=False,
                                            repr=False)

    @property
    def commits(self) -> int:
        return self.counters.get("tm.commits", 0)

    @property
    def aborts(self) -> int:
        return self.counters.get("tm.aborts", 0)

    @property
    def aborts_true_conflict(self) -> int:
        """Outer aborts attributed to a real data conflict."""
        return self.counters.get("tm.aborts.true_conflict", 0)

    @property
    def aborts_false_positive(self) -> int:
        """Outer aborts attributed purely to signature aliasing."""
        return self.counters.get("tm.aborts.false_positive", 0)

    @property
    def stalls(self) -> int:
        return self.counters.get("tm.stalls", 0)

    @property
    def false_positive_pct(self) -> float:
        total = self.counters.get("tm.conflicts_total", 0)
        if not total:
            return 0.0
        return 100.0 * self.counters.get("tm.conflicts_false_positive", 0) / total

    @property
    def victimizations(self) -> int:
        return (self.counters.get("victimization.l1_tx", 0)
                + self.counters.get("victimization.l2_tx", 0))

    def cycles_per_unit(self) -> float:
        return self.cycles / self.units if self.units else float("inf")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe record of this run (``system`` is never included).

        Carries the raw measurements (counters, histograms) plus the derived
        headline metrics so downstream tooling does not need to re-derive
        them; :meth:`from_dict` rebuilds an equal ``RunResult`` from it.
        """
        return {
            "workload": self.workload,
            "config_label": self.config_label,
            "cycles": self.cycles,
            "units": self.units,
            "commits": self.commits,
            "aborts": self.aborts,
            "aborts_true_conflict": self.aborts_true_conflict,
            "aborts_false_positive": self.aborts_false_positive,
            "stalls": self.stalls,
            "false_positive_pct": self.false_positive_pct,
            "victimizations": self.victimizations,
            "counters": dict(self.counters),
            "histograms": {name: hist.to_dict()
                           for name, hist in sorted(self.histograms.items())},
            "verify_checks_run": list(self.verify_checks_run),
            "verify_violations": [dict(v) for v in self.verify_violations],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RunResult":
        """Inverse of :meth:`to_dict` (derived metrics are recomputed)."""
        return RunResult(
            workload=str(data["workload"]),
            config_label=str(data["config_label"]),
            cycles=int(data["cycles"]),
            units=int(data["units"]),
            counters={str(k): int(v)
                      for k, v in dict(data["counters"]).items()},
            histograms={str(name): Histogram.from_dict(h)
                        for name, h in dict(data["histograms"]).items()},
            verify_checks_run=[str(c) for c in
                               data.get("verify_checks_run", [])],
            verify_violations=[dict(v) for v in
                               data.get("verify_violations", [])],
        )


def default_config_label(cfg: SystemConfig) -> str:
    """Label used when the caller does not name a config: the signature's
    table name for TM runs, ``"locks"`` for the lock baseline (whose
    signature config is irrelevant and would mislabel the run)."""
    if cfg.sync is SyncMode.LOCKS:
        return "locks"
    return cfg.tm.signature.describe()


def run_workload(cfg: SystemConfig, workload: Workload,
                 seed: int = DEFAULT_SEED,
                 cycle_limit: int = DEFAULT_CYCLE_LIMIT,
                 config_label: str = "",
                 start_skew: int = 1000,
                 keep_system: bool = False,
                 trace: bool = False,
                 trace_max_events: int = 1_000_000,
                 trace_kinds: Optional[List[str]] = None,
                 verify=False) -> RunResult:
    """Execute one workload to completion on a freshly built system.

    ``start_skew`` staggers thread start times uniformly over that many
    cycles, modeling thread-creation skew (real programs never release all
    threads in the same cycle; a perfectly symmetric start is a simulation
    artifact that manufactures worst-case conflicts).

    ``trace=True`` attaches an event bus + ring-buffer log for the run and
    returns the captured events on ``RunResult.events`` (``trace_kinds``
    restricts what is kept — exact kinds or whole namespaces like
    ``"tm"``). Tracing slows simulation; leave it off for measurement
    sweeps unless artifacts are wanted.

    ``verify`` attaches the correctness checkers of
    :mod:`repro.verify.checkers` (signature oracle, undo-log oracle,
    isolation shadow, serializability) and records their findings on
    ``RunResult.verify_checks_run`` / ``verify_violations``. Pass
    ``"strict"`` to raise :class:`repro.common.errors.VerificationError`
    on any violation instead of merely reporting it. Verification slows
    the run (it attaches the event bus); it never changes simulated
    cycle counts.
    """
    system = System(cfg, seed=seed)
    trace_log = None
    suite = None
    bus = None
    if trace:
        bus, trace_log = system.attach_bus(max_events=trace_max_events,
                                           kinds=trace_kinds)
    if verify:
        from repro.verify.checkers import VerificationSuite
        if bus is None:
            bus, _ = system.attach_bus(with_log=False)
        suite = VerificationSuite(system).attach(bus)
    threads = system.place_threads(workload.num_threads)
    procs = []
    executors: List[ThreadExecutor] = []

    def staggered(executor: ThreadExecutor, delay: int):
        if delay:
            yield delay
        result = yield from executor.run()
        return result

    for index, thread in enumerate(threads):
        rng = make_rng(seed, "workload", workload.name, index)
        sections = workload.program(index, rng)
        executor = ThreadExecutor(cfg, thread, system.manager,
                                  sections, rng, system.stats)
        executors.append(executor)
        delay = rng.randrange(start_skew) if start_skew else 0
        # A zero delay makes the wrapper a pure pass-through; spawning the
        # executor directly keeps one frame out of every resume chain.
        gen = staggered(executor, delay) if delay else executor.run()
        procs.append(system.sim.spawn(gen,
                                      name=f"{workload.name}.t{index}"))
    # Pause cyclic GC for the simulation proper: the event loop allocates
    # generators and heap entries at a rate that triggers frequent gen-0
    # collections, none of which find garbage the refcounter misses. Purely
    # a wall-clock effect — allocation order and results are unchanged.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        system.sim.run_until_done(procs, limit=cycle_limit)
    finally:
        if gc_was_enabled:
            gc.enable()
    units = sum(e.units_done for e in executors)
    report = suite.finish() if suite is not None else None
    if report is not None and verify == "strict" and not report.ok:
        from repro.common.errors import VerificationError
        raise VerificationError(report.summary())
    return RunResult(
        workload=workload.name,
        config_label=config_label or default_config_label(cfg),
        cycles=system.sim.now,
        units=units,
        counters=system.stats.snapshot(),
        histograms=system.stats.histograms(),
        system=system if keep_system else None,
        events=trace_log.events() if trace_log is not None else None,
        verify_checks_run=list(report.checks_run) if report else [],
        verify_violations=[v.to_dict() for v in report.violations]
        if report else [],
        verify_report=report,
    )


def run_perturbed(cfg: SystemConfig, make_workload, runs: int = 3,
                  seed: int = DEFAULT_SEED, config_label: str = "",
                  cycle_limit: int = DEFAULT_CYCLE_LIMIT):
    """Run ``runs`` perturbed instances; returns (results, cycles CI).

    ``make_workload`` is a zero-argument factory (workload generators hold
    RNG-derived layout, so each run rebuilds the workload).
    """
    results = []
    for run_seed in perturbed_seeds(seed, runs):
        results.append(run_workload(cfg, make_workload(), seed=run_seed,
                                    config_label=config_label,
                                    cycle_limit=cycle_limit))
    ci = ConfidenceInterval.from_samples([float(r.cycles) for r in results])
    return results, ci
