"""Experiment harness: system builder, runner, experiments, reports."""

from repro.harness.runner import RunResult, run_perturbed, run_workload
from repro.harness.sweep import (SweepResult, run_sweep,
                                 signature_design_variants,
                                 signature_size_variants)
from repro.harness.system import System
from repro.harness.trace import TraceEvent, TraceRecorder

__all__ = ["RunResult", "SweepResult", "System", "TraceEvent",
           "TraceRecorder", "run_perturbed", "run_sweep",
           "run_workload", "signature_design_variants",
           "signature_size_variants"]
