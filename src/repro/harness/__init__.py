"""Experiment harness: system builder, runner, experiments, reports,
parallel sweep execution and the on-disk result cache."""

from repro.harness.parallel import (ResultCache, RunTask,
                                    SweepExecutionError, TaskOutcome,
                                    execute_tasks, run_parallel_sweep)
from repro.harness.runner import RunResult, run_perturbed, run_workload
from repro.harness.sweep import (SweepResult, run_sweep,
                                 signature_design_variants,
                                 signature_size_variants)
from repro.harness.system import System
from repro.harness.trace import TraceEvent, TraceRecorder

__all__ = ["ResultCache", "RunResult", "RunTask", "SweepExecutionError",
           "SweepResult", "System", "TaskOutcome", "TraceEvent",
           "TraceRecorder", "execute_tasks", "run_parallel_sweep",
           "run_perturbed", "run_sweep", "run_workload",
           "signature_design_variants", "signature_size_variants"]
