"""Plain-text table/series rendering for the experiment harness.

The benchmarks print the same rows the paper reports; this module keeps the
formatting in one place so benchmark output stays uniform and testable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep.replace("-+-", "---")))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Dict[str, float],
                  unit: str = "") -> str:
    """Render one named series (a figure's data points) as text."""
    lines = [f"{name}" + (f" [{unit}]" if unit else "")]
    width = max((len(k) for k in points), default=0)
    for key, value in points.items():
        lines.append(f"  {key.ljust(width)} : {value:.3f}")
    return "\n".join(lines)


def render_bar(value: float, scale: float = 1.0, width: int = 40) -> str:
    """Tiny ASCII bar for speedup charts."""
    filled = max(0, min(width, int(round(value / scale * width))))
    return "#" * filled
