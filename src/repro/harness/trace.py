"""Transaction-lifecycle tracing.

A :class:`TraceRecorder` attached to a system's :class:`StatsRegistry`
captures timestamped events — transaction begins/commits/aborts, stalls,
OS virtualization events — into a bounded ring buffer. It is an
observability tool for debugging model behaviour and for the examples'
timelines; recording is off unless a recorder is attached, so the hot path
costs one attribute check.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from repro.harness.report import render_table


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time}] {self.kind} {details}".rstrip()


class TraceRecorder:
    """Bounded ring buffer of simulation events."""

    def __init__(self, clock: Callable[[], int], max_events: int = 100_000,
                 kinds: Optional[Iterable[str]] = None) -> None:
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self._clock = clock
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        #: When set, only these event kinds are recorded.
        self._kinds = set(kinds) if kinds is not None else None
        self.dropped = 0

    def record(self, kind: str, **fields: Any) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(TraceEvent(self._clock(), kind, fields))

    # -- queries -------------------------------------------------------------

    def events(self, kind: Optional[str] = None,
               thread: Optional[int] = None) -> List[TraceEvent]:
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if thread is not None and event.fields.get("thread") != thread:
                continue
            out.append(event)
        return out

    def __len__(self) -> int:
        return len(self._events)

    def counts(self) -> Dict[str, int]:
        return dict(Counter(e.kind for e in self._events))

    def transactions(self, thread: int) -> List[Dict[str, Any]]:
        """Reconstruct one thread's transaction attempts.

        Returns one record per outer begin: start/end time and outcome
        ("commit" / "abort" / "open" if the trace ends mid-transaction).
        """
        records: List[Dict[str, Any]] = []
        current: Optional[Dict[str, Any]] = None
        for event in self._events:
            if event.fields.get("thread") != thread:
                continue
            if event.kind == "tm.begin" and event.fields.get("depth") == 1:
                current = {"start": event.time, "end": None,
                           "outcome": "open", "stalls": 0}
                records.append(current)
            elif current is not None:
                if event.kind == "tm.stall":
                    current["stalls"] += 1
                elif event.kind == "tm.commit" and \
                        event.fields.get("outer"):
                    current.update(end=event.time, outcome="commit")
                    current = None
                elif event.kind == "tm.abort":
                    current.update(end=event.time, outcome="abort")
                    current = None
        return records

    def render(self, limit: int = 50) -> str:
        """Human-readable tail of the trace."""
        tail = list(self._events)[-limit:]
        return "\n".join(str(e) for e in tail)

    def summary_table(self, threads: Iterable[int]) -> str:
        rows = []
        for tid in threads:
            attempts = self.transactions(tid)
            commits = sum(1 for a in attempts if a["outcome"] == "commit")
            aborts = sum(1 for a in attempts if a["outcome"] == "abort")
            stalls = sum(a["stalls"] for a in attempts)
            durations = [a["end"] - a["start"] for a in attempts
                         if a["end"] is not None]
            mean_dur = sum(durations) / len(durations) if durations else 0.0
            rows.append((tid, len(attempts), commits, aborts, stalls,
                         mean_dur))
        return render_table(
            ["Thread", "Attempts", "Commits", "Aborts", "Stalls",
             "Mean cycles"],
            rows, title="Per-thread transaction summary")
