"""Deprecated shim: transaction-lifecycle tracing moved to ``repro.obs``.

The pre-observability API lived here: a ``TraceRecorder`` attached to a
system's :class:`~repro.common.stats.StatsRegistry` captured timestamped
``TraceEvent`` records into a bounded ring buffer. That machinery is now
the :mod:`repro.obs` subsystem (typed taxonomy, event bus, analyzers,
exporters); this module re-exports the two legacy names so existing
imports — ``from repro.harness.trace import TraceRecorder`` and
``System.attach_tracer()`` — keep working unchanged.

New code should use ``System.attach_bus()`` and :mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.bus import TraceRecorder
from repro.obs.events import TraceEvent

__all__ = ["TraceEvent", "TraceRecorder"]
