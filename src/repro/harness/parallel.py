"""Parallel sweep execution with an on-disk result cache.

The paper's evaluation artifacts are all "one workload x many configs"
grids, and every cell is an independent, deterministic function of
``(config, workload, seed)``. This module exploits both properties:

* :func:`execute_tasks` fans :class:`RunTask` cells out over
  ``multiprocessing`` workers (``jobs`` at a time), with a per-task
  wall-clock ``timeout`` and retry-on-worker-crash. A task that fails is
  recorded and its siblings keep running; the error raised at the end
  (:class:`SweepExecutionError`) carries every completed result.
* :class:`ResultCache` is a content-addressed on-disk cache keyed by
  ``(code version, config, workload, seed, label, cycle limit)``:
  re-running a sweep — or resuming one that was interrupted — only
  executes the missing cells. Any change to the ``repro`` sources
  invalidates the whole cache (the key embeds a hash of the package).

``run_parallel_sweep`` is the engine behind ``run_sweep(..., jobs=N)``;
see :mod:`repro.harness.sweep` for the serial semantics it preserves.

Worker processes are started with the ``fork`` method where available
(Linux/macOS-with-fork), so workload factories may be arbitrary closures.
On spawn-only platforms the factory must be picklable.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ReproError
from repro.common.rng import DEFAULT_SEED
from repro.harness.runner import (DEFAULT_CYCLE_LIMIT, RunResult,
                                  run_workload)
from repro.workloads.base import Workload

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class SweepExecutionError(ReproError):
    """One or more sweep cells failed; sibling results are preserved.

    ``completed`` maps task key -> :class:`RunResult` for every cell that
    did finish; ``failures`` maps task key -> human-readable reason.
    """

    def __init__(self, message: str,
                 completed: Optional[Dict[str, RunResult]] = None,
                 failures: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.completed = dict(completed or {})
        self.failures = dict(failures or {})


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of every ``.py`` file in the installed ``repro`` package.

    Used as the cache key's code component: any source change invalidates
    all cached results (conservative, but sweeps are cheap to re-run next
    to the cost of trusting a stale model). Computed once per process.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def workload_fingerprint(workload: Workload) -> str:
    """Cache-key component identifying a workload instance.

    ``describe()`` covers the thread/unit geometry; class identity and the
    construction seed cover the generated layout (workload generators are
    deterministic functions of their constructor arguments).
    """
    cls = type(workload)
    return (f"{cls.__module__}.{cls.__qualname__}"
            f"|{workload.describe()}|seed={workload.seed}")


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


class ResultCache:
    """Content-addressed on-disk store of pickled :class:`RunResult`.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the SHA-256 of
    the canonical ``(code version, config repr, workload fingerprint, seed,
    label, cycle limit)`` tuple. Writes are atomic (temp file + rename), so
    concurrent sweeps sharing a cache directory are safe. Corrupt or
    unreadable entries count as misses and are re-executed.

    ``max_entries`` bounds on-disk growth for long-running users (the
    sweep service): once the store exceeds the cap, the least-recently
    used entries (by mtime — hits touch their entry) are evicted back
    down to it. ``None`` (the default) keeps the historical unbounded
    behaviour; :meth:`prune` is also callable directly and backs
    ``repro cache prune``.
    """

    def __init__(self, root: Optional[object] = None,
                 max_entries: Optional[int] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self._entry_count: Optional[int] = None  # lazily scanned

    def key(self, cfg: SystemConfig, fingerprint: str, seed: int,
            label: str, cycle_limit: int = DEFAULT_CYCLE_LIMIT,
            verify: object = False) -> str:
        payload = "\n".join([code_version(), repr(cfg), fingerprint,
                             str(seed), label, str(cycle_limit),
                             f"verify={verify!r}"])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (counted as hit/miss)."""
        try:
            with open(self._path(key), "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(result, RunResult):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(self._path(key))  # LRU touch: hits refresh recency
        except OSError:
            pass
        return result

    def store(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        existed = path.exists()
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        if self.max_entries is not None:
            if self._entry_count is None:
                self._entry_count = self._scan_count()
            elif not existed:
                self._entry_count += 1
            if self._entry_count > self.max_entries:
                self.prune()

    def _entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return [p for p in self.root.glob("*/*.pkl")
                if not p.name.startswith(".")]

    def _scan_count(self) -> int:
        return len(self._entries())

    def entry_count(self) -> int:
        """Number of entries currently on disk (always a fresh scan)."""
        self._entry_count = self._scan_count()
        return self._entry_count

    def size_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def prune(self, max_entries: Optional[int] = None) -> int:
        """Evict least-recently-used entries beyond the cap; return count.

        ``max_entries`` overrides the instance cap for this call (so
        ``repro cache prune --max-entries N`` works on any cache dir).
        Entries are ranked by mtime: loads touch their file, so recency
        reflects use, not just creation. Races with concurrent writers
        are benign — a vanished file is simply skipped.
        """
        cap = self.max_entries if max_entries is None else max_entries
        if cap is None:
            raise ValueError("prune needs a max_entries cap")
        entries = []
        for path in self._entries():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                pass
        entries.sort(key=lambda pair: pair[0])
        evicted = 0
        excess = len(entries) - cap
        for _mtime, path in entries[:max(excess, 0)]:
            try:
                path.unlink()
                evicted += 1
            except OSError:
                pass
        self.evicted += evicted
        self._entry_count = len(entries) - evicted
        return evicted

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


# ---------------------------------------------------------------------------
# Task execution
# ---------------------------------------------------------------------------

@dataclass
class RunTask:
    """One independent sweep cell: run ``make_workload()`` under ``cfg``.

    With ``trace_dir`` set, the cell runs traced and writes its trace
    artifacts (``<key>.trace.json`` Chrome trace + ``<key>.jsonl`` raw
    events) into that directory *inside the worker* — events never travel
    through the result pipe or the cache.
    """

    key: str                                  # unique id within the batch
    label: str                                # RunResult.config_label
    cfg: SystemConfig
    make_workload: Callable[[], Workload]
    seed: int = DEFAULT_SEED
    cycle_limit: int = DEFAULT_CYCLE_LIMIT
    trace_dir: Optional[str] = None
    #: ``run_workload``'s ``verify`` argument (False / True / "strict").
    verify: object = False


def _artifact_stem(key: str) -> str:
    """Filesystem-safe artifact name for a task key."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in key)


@dataclass
class TaskOutcome:
    """How one task finished: its result plus execution metadata."""

    key: str
    result: RunResult
    wall_time: float = 0.0     # seconds spent executing (0.0 for cache hits)
    cached: bool = False
    attempts: int = 1          # worker launches consumed (0 for cache hits)
    retries: int = 0           # relaunches after a crash/timeout (attempts-1)
    timeouts: int = 0          # attempts that hit the wall-clock timeout


def _run_task(task: RunTask) -> RunResult:
    result = run_workload(task.cfg, task.make_workload(), seed=task.seed,
                          cycle_limit=task.cycle_limit,
                          config_label=task.label,
                          trace=task.trace_dir is not None,
                          verify=task.verify)
    # The report object holds live references into the simulated system;
    # the JSON-safe fields (checks_run, violations) already carry the
    # findings, so drop it before pickling into a pipe or the cache.
    result.verify_report = None
    if task.trace_dir is not None and result.events is not None:
        from repro.obs.export import export_chrome_trace, export_jsonl
        out = Path(task.trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        stem = _artifact_stem(task.key)
        label = f"{result.workload} [{task.label}]"
        export_chrome_trace(result.events, str(out / f"{stem}.trace.json"),
                            label=label)
        export_jsonl(result.events, str(out / f"{stem}.jsonl"))
        # Events stay on disk; shipping them through the result pipe (or
        # pickling them into the cache) would cost far more than the run.
        result.events = None
    return result


def _worker(task: RunTask, conn) -> None:  # pragma: no cover - child process
    try:
        conn.send(("ok", _run_task(task)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except BaseException:
            pass
    finally:
        conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None``/``0`` means one worker per CPU; negative is rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def execute_tasks(tasks: Iterable[RunTask],
                  jobs: Optional[int] = 1,
                  timeout: Optional[float] = None,
                  retries: int = 1,
                  cache: Optional[ResultCache] = None,
                  retry_timeouts: bool = False
                  ) -> Dict[str, TaskOutcome]:
    """Execute every task; return outcomes keyed by task key, in task order.

    * Cache hits never launch a worker.
    * A worker that dies without reporting (crash, OOM-kill) is relaunched
      up to ``retries`` extra times; a task exceeding ``timeout`` seconds
      is terminated and by default not retried (a deterministic simulation
      that timed out once will time out again). ``retry_timeouts=True``
      relaunches timed-out tasks against the same ``retries`` budget — the
      sweep service uses this because wall-clock timeouts on a loaded box
      are *not* deterministic.
    * Failures do not abort the batch: remaining tasks still run, then one
      :class:`SweepExecutionError` summarises every failure and carries the
      completed sibling results.
    * Each :class:`TaskOutcome` carries the execution metadata — wall
      time, cache flag, ``attempts``/``retries``/``timeouts`` — that
      ``run_parallel_sweep`` surfaces in ``SweepResult.meta``.
    """
    tasks = list(tasks)
    if len({t.key for t in tasks}) != len(tasks):
        raise ValueError("duplicate task keys in batch")
    jobs = resolve_jobs(jobs)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")

    outcomes: Dict[str, TaskOutcome] = {}
    failures: Dict[str, str] = {}
    pending: List[Tuple[RunTask, Optional[str]]] = []
    for task in tasks:
        cache_key = None
        if cache is not None:
            cache_key = cache.key(task.cfg,
                                  workload_fingerprint(task.make_workload()),
                                  task.seed, task.label, task.cycle_limit,
                                  verify=task.verify)
            result = cache.load(cache_key)
            if result is not None:
                outcomes[task.key] = TaskOutcome(task.key, result,
                                                 wall_time=0.0, cached=True,
                                                 attempts=0)
                continue
        pending.append((task, cache_key))

    if pending:
        if jobs == 1 and timeout is None:
            _execute_inline(pending, cache, outcomes, failures)
        else:
            _execute_in_processes(pending, jobs, timeout, retries, cache,
                                  outcomes, failures,
                                  retry_timeouts=retry_timeouts)

    if failures:
        done = {key: out.result for key, out in outcomes.items()}
        detail = "; ".join(f"{key}: {reason.strip().splitlines()[-1]}"
                           for key, reason in failures.items())
        raise SweepExecutionError(
            f"{len(failures)} of {len(tasks)} sweep cell(s) failed "
            f"({len(done)} completed): {detail}",
            completed=done, failures=failures)
    return {task.key: outcomes[task.key] for task in tasks}


def _execute_inline(pending, cache, outcomes, failures) -> None:
    """jobs=1 with no timeout: run in-process (no worker overhead)."""
    for task, cache_key in pending:
        start = time.perf_counter()
        try:
            result = _run_task(task)
        except Exception:
            failures[task.key] = traceback.format_exc()
            continue
        wall = time.perf_counter() - start
        outcomes[task.key] = TaskOutcome(task.key, result, wall_time=wall)
        if cache is not None and cache_key is not None:
            cache.store(cache_key, result)


def _execute_in_processes(pending, jobs, timeout, retries, cache,
                          outcomes, failures,
                          retry_timeouts: bool = False) -> None:
    ctx = _mp_context()
    queue: List[Tuple[RunTask, Optional[str]]] = list(pending)
    attempts: Dict[str, int] = {}
    timeout_counts: Dict[str, int] = {}
    running: Dict[str, dict] = {}

    def start(task: RunTask, cache_key: Optional[str]) -> None:
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker, args=(task, send),
                           name=f"sweep-{task.key}")
        proc.start()
        send.close()  # child holds the write end
        attempts[task.key] = attempts.get(task.key, 0) + 1
        running[task.key] = dict(task=task, cache_key=cache_key, proc=proc,
                                 conn=recv, started=time.perf_counter())

    def finish(key: str) -> dict:
        worker = running.pop(key)
        worker["conn"].close()
        worker["proc"].join()
        return worker

    try:
        while queue or running:
            while queue and len(running) < jobs:
                start(*queue.pop(0))
            mp_connection.wait([w["conn"] for w in running.values()],
                               timeout=0.05)
            for key in list(running):
                worker = running[key]
                task = worker["task"]
                message = None
                if worker["conn"].poll():
                    try:
                        message = worker["conn"].recv()
                    except (EOFError, OSError):
                        message = None  # died mid-send: treat as a crash
                if message is not None:
                    wall = time.perf_counter() - worker["started"]
                    finish(key)
                    status, payload = message
                    if status == "ok":
                        outcomes[key] = TaskOutcome(
                            key, payload, wall_time=wall,
                            attempts=attempts[key],
                            retries=attempts[key] - 1,
                            timeouts=timeout_counts.get(key, 0))
                        if cache is not None and worker["cache_key"]:
                            cache.store(worker["cache_key"], payload)
                    else:
                        failures[key] = (f"variant {task.label!r} raised in "
                                         f"worker:\n{payload}")
                    continue
                if not worker["proc"].is_alive():
                    exitcode = worker["proc"].exitcode
                    finish(key)
                    if attempts[key] <= retries:
                        queue.append((task, worker["cache_key"]))
                    else:
                        failures[key] = (
                            f"variant {task.label!r}: worker crashed with "
                            f"exit code {exitcode} "
                            f"({attempts[key]} attempt(s))")
                    continue
                if (timeout is not None
                        and time.perf_counter() - worker["started"] > timeout):
                    worker["proc"].terminate()
                    finish(key)
                    timeout_counts[key] = timeout_counts.get(key, 0) + 1
                    if retry_timeouts and attempts[key] <= retries:
                        queue.append((task, worker["cache_key"]))
                    else:
                        failures[key] = (
                            f"variant {task.label!r}: timed out after "
                            f"{timeout:g}s ({attempts[key]} attempt(s))")
    finally:
        for worker in running.values():
            worker["proc"].terminate()
            worker["conn"].close()
            worker["proc"].join()


# ---------------------------------------------------------------------------
# Sweep front end
# ---------------------------------------------------------------------------

def run_parallel_sweep(variants, workload_factory,
                       seed: int = DEFAULT_SEED,
                       baseline_label: Optional[str] = None,
                       jobs: Optional[int] = None,
                       cache: Optional[ResultCache] = None,
                       timeout: Optional[float] = None,
                       retries: int = 1,
                       trace_dir: Optional[str] = None,
                       verify: object = False,
                       retry_timeouts: bool = False):
    """Parallel/cached engine behind ``run_sweep(..., jobs=N)``.

    Produces a ``SweepResult`` equal to the serial one (results are stored
    in variant order regardless of completion order), with execution
    metadata in ``SweepResult.meta``: per-variant wall time, cache-hit
    flags, attempt/retry/timeout counts, plus batch totals.

    ``trace_dir`` writes per-variant trace artifacts (Chrome trace JSON +
    JSONL) into that directory and disables the cache for the batch — a
    cache hit would skip the run that produces the artifacts.
    """
    from repro.harness.sweep import SweepResult  # circular at import time

    variants = list(variants)
    labels = [label for label, _ in variants]
    if len(set(labels)) != len(labels):
        dup = sorted({x for x in labels if labels.count(x) > 1})[0]
        raise ValueError(f"duplicate variant label {dup!r}")
    if baseline_label is not None and baseline_label not in labels:
        raise ValueError(f"baseline {baseline_label!r} not in sweep")
    if trace_dir is not None:
        cache = None

    tasks = [RunTask(key=label, label=label, cfg=cfg,
                     make_workload=workload_factory, seed=seed,
                     trace_dir=trace_dir, verify=verify)
             for label, cfg in variants]
    started = time.perf_counter()
    outcomes = execute_tasks(tasks, jobs=jobs, timeout=timeout,
                             retries=retries, cache=cache,
                             retry_timeouts=retry_timeouts)
    wall = time.perf_counter() - started

    sweep = SweepResult(baseline_label=baseline_label)
    for label in labels:
        sweep.results[label] = outcomes[label].result
    hits = sum(1 for o in outcomes.values() if o.cached)
    sweep.meta = {
        "jobs": resolve_jobs(jobs),
        "wall_time": wall,
        "cache": {"hits": hits, "misses": len(outcomes) - hits,
                  "enabled": cache is not None},
        "retries": sum(o.retries for o in outcomes.values()),
        "timeouts": sum(o.timeouts for o in outcomes.values()),
        "variants": {label: {"cached": outcomes[label].cached,
                             "wall_time": outcomes[label].wall_time,
                             "attempts": outcomes[label].attempts,
                             "retries": outcomes[label].retries,
                             "timeouts": outcomes[label].timeouts}
                     for label in labels},
    }
    return sweep
