"""Parameter sweeps: run a workload across a family of configurations.

The evaluation and its ablations are all "one workload x many configs"
grids; this module gives that pattern one tested implementation, used by
the benchmark harness, the CLI, and downstream users sizing their own
design points.

``run_sweep`` executes serially by default (``jobs=1``) and is then
byte-for-byte the historical implementation; ``jobs>1`` — or passing a
:class:`~repro.harness.parallel.ResultCache` — routes through the parallel
engine in :mod:`repro.harness.parallel`, which returns an equal
``SweepResult`` (cells are independent, deterministic functions of
``(config, workload, seed)``) annotated with execution metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.common.config import SignatureKind, SystemConfig
from repro.common.rng import DEFAULT_SEED
from repro.harness.report import render_table
from repro.harness.runner import RunResult, run_workload
from repro.workloads.base import Workload

#: A config variant: label plus the configuration to run.
Variant = Tuple[str, SystemConfig]


@dataclass
class SweepResult:
    """All runs of one sweep, keyed by variant label.

    ``meta`` (parallel/cached sweeps only) holds execution metadata —
    per-variant wall time, cache hit flags, attempt counts, batch wall
    time — and is excluded from equality: a cached re-run compares equal
    to the run that populated the cache.
    """

    results: Dict[str, RunResult] = field(default_factory=dict)
    baseline_label: Optional[str] = None
    meta: Optional[Dict[str, Any]] = field(default=None, compare=False,
                                           repr=False)

    def cycles(self, label: str) -> int:
        return self.results[label].cycles

    def speedup(self, label: str) -> float:
        """Speedup of a variant relative to the sweep's baseline."""
        if self.baseline_label is None:
            raise ValueError("sweep has no baseline variant")
        return self.results[self.baseline_label].cycles / max(
            self.results[label].cycles, 1)

    def labels(self) -> List[str]:
        return list(self.results)

    def table(self, title: str = "Sweep") -> str:
        rows = []
        for label, result in self.results.items():
            row = [label, result.cycles, result.commits, result.aborts,
                   result.stalls,
                   round(result.false_positive_pct, 1)]
            if self.baseline_label is not None:
                row.append(round(self.speedup(label), 3))
            rows.append(tuple(row))
        headers = ["Variant", "Cycles", "Commits", "Aborts", "Stalls",
                   "FP %"]
        if self.baseline_label is not None:
            headers.append(f"Speedup vs {self.baseline_label}")
        return render_table(headers, rows, title=title)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe record of the whole sweep (results + ``meta``)."""
        out: Dict[str, Any] = {
            "baseline_label": self.baseline_label,
            "results": {label: result.to_dict()
                        for label, result in self.results.items()},
        }
        if self.meta is not None:
            out["meta"] = self.meta
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        sweep = SweepResult(baseline_label=data.get("baseline_label"))
        for label, record in dict(data["results"]).items():
            sweep.results[label] = RunResult.from_dict(record)
        sweep.meta = data.get("meta")
        return sweep


def run_sweep(variants: Iterable[Variant],
              workload_factory: Callable[[], Workload],
              seed: int = DEFAULT_SEED,
              baseline_label: Optional[str] = None,
              jobs: Optional[int] = 1,
              cache=None,
              timeout: Optional[float] = None,
              retries: int = 1,
              trace_dir: Optional[str] = None,
              verify: object = False,
              retry_timeouts: bool = False) -> SweepResult:
    """Run the factory's workload under every variant configuration.

    ``jobs=1`` with no cache/timeout is the exact serial implementation.
    ``jobs>1`` (or ``jobs=None``/``0`` for one worker per CPU), a
    ``cache`` (:class:`repro.harness.parallel.ResultCache`), or a per-cell
    ``timeout`` route through the parallel engine, which returns an equal
    ``SweepResult`` plus execution metadata in ``.meta``. ``retries``
    bounds relaunches after a worker crash (parallel engine only).
    ``trace_dir`` writes per-variant observability artifacts (Chrome trace
    JSON + JSONL) into that directory; it routes through the parallel
    engine and disables the cache (cached hits produce no artifacts).
    ``verify`` attaches the correctness checkers to every cell (see
    :func:`repro.harness.runner.run_workload`); findings land on each
    cell's ``RunResult.verify_violations`` and are part of the cached
    record (the cache key includes the verify mode).
    ``retry_timeouts`` relaunches timed-out cells against the ``retries``
    budget instead of failing them outright (parallel engine only; see
    :func:`repro.harness.parallel.execute_tasks`).
    """
    if (jobs != 1 or cache is not None or timeout is not None
            or trace_dir is not None):
        from repro.harness.parallel import run_parallel_sweep
        return run_parallel_sweep(variants, workload_factory, seed=seed,
                                  baseline_label=baseline_label, jobs=jobs,
                                  cache=cache, timeout=timeout,
                                  retries=retries, trace_dir=trace_dir,
                                  verify=verify,
                                  retry_timeouts=retry_timeouts)
    sweep = SweepResult(baseline_label=baseline_label)
    for label, cfg in variants:
        if label in sweep.results:
            raise ValueError(f"duplicate variant label {label!r}")
        sweep.results[label] = run_workload(
            cfg, workload_factory(), seed=seed, config_label=label,
            verify=verify)
    if baseline_label is not None and baseline_label not in sweep.results:
        raise ValueError(f"baseline {baseline_label!r} not in sweep")
    return sweep


def signature_size_variants(kind: SignatureKind,
                            sizes: Sequence[int],
                            base: Optional[SystemConfig] = None,
                            granularity: int = 1024) -> List[Variant]:
    """BS_64-style size series for one signature design."""
    base = base or SystemConfig.default()
    out: List[Variant] = []
    for bits in sizes:
        cfg = base.with_signature(kind, bits=bits, granularity=granularity)
        out.append((cfg.tm.signature.describe(), cfg))
    return out


def signature_design_variants(bits: int,
                              base: Optional[SystemConfig] = None
                              ) -> List[Variant]:
    """All realistic designs at one size (plus perfect as reference)."""
    base = base or SystemConfig.default()
    return [
        ("Perfect", base.with_signature(SignatureKind.PERFECT)),
        (f"BS_{bits}", base.with_signature(SignatureKind.BIT_SELECT,
                                           bits=bits)),
        (f"DBS_{bits}", base.with_signature(
            SignatureKind.DOUBLE_BIT_SELECT, bits=bits)),
        (f"CBS_{bits}", base.with_signature(
            SignatureKind.COARSE_BIT_SELECT, bits=bits, granularity=1024)),
        (f"H4_{bits}", base.with_signature(SignatureKind.HASHED,
                                           bits=bits)),
    ]
