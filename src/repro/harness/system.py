"""System builder: assembles a full simulated machine from a config.

A :class:`System` wires together the simulation kernel, functional memory,
frame allocator, interconnect, coherence fabric (directory or snooping),
cores with their SMT slots, and the TM manager — the complete machine of
Figure 2 plus the LogTM-SE additions of Figure 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import CoherenceStyle, SystemConfig
from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, make_rng
from repro.common.stats import StatsRegistry
from repro.coherence.directory import DirectoryFabric
from repro.coherence.multichip import MultiChipFabric
from repro.coherence.snooping import SnoopingFabric
from repro.core.conflict import BackoffPolicy
from repro.core.manager import TMManager
from repro.core.txcontext import TxContext
from repro.cpu.core import Core
from repro.cpu.thread import HardwareSlot, SoftwareThread
from repro.interconnect.network import Network
from repro.interconnect.topology import GridTopology
from repro.mem.address import AddressMap
from repro.mem.physical import PhysicalMemory
from repro.mem.vm import FrameAllocator, PageTable
from repro.sim.engine import Simulator
from repro.signatures.factory import make_rw_pair
from repro.signatures.rwpair import ReadWriteSignature


class System:
    """One fully assembled simulated machine."""

    def __init__(self, cfg: SystemConfig, seed: int = DEFAULT_SEED) -> None:
        self.cfg = cfg
        self.seed = seed
        self.sim = Simulator()
        self.stats = StatsRegistry()
        self.memory = PhysicalMemory(capacity_bytes=cfg.memory_bytes)
        self.amap = AddressMap(block_bytes=cfg.block_bytes,
                               page_bytes=cfg.page_bytes,
                               num_banks=cfg.l2_banks)
        self.frame_allocator = FrameAllocator(self.amap, cfg.memory_bytes)
        rows, cols = cfg.mesh_dims
        self.topology = GridTopology(rows, cols, cfg.num_cores, cfg.l2_banks)
        self.network = Network(self.topology, cfg.link_latency, self.stats)
        if cfg.num_chips > 1:
            # Section 7's multiple-CMP system: one intra-chip network per
            # chip plus the full-map memory directory fabric.
            networks = [self.network] + [
                Network(self.topology, cfg.link_latency, self.stats)
                for _ in range(cfg.num_chips - 1)]
            self.fabric = MultiChipFabric(cfg, networks, self.stats)
        elif cfg.coherence is CoherenceStyle.DIRECTORY:
            self.fabric = DirectoryFabric(cfg, self.network, self.stats)
        elif cfg.coherence is CoherenceStyle.SNOOPING:
            self.fabric = SnoopingFabric(cfg, self.network, self.stats)
        else:  # pragma: no cover - exhaustive enum
            raise ConfigError(f"unknown coherence style {cfg.coherence}")
        backoff_rng = make_rng(seed, "backoff")
        self.backoff = BackoffPolicy(cfg.tm, backoff_rng)
        self.cores: List[Core] = [
            Core(core_id, cfg, self.fabric, self.memory, self.stats,
                 self.backoff, summary_factory=self._make_pair)
            for core_id in range(cfg.total_cores)]
        self.manager = TMManager(cfg, self.sim, self.memory, self.cores,
                                 self.stats, pair_factory=self._make_pair)
        self._page_tables: Dict[int, PageTable] = {}
        self._next_tid = 0
        #: Every software thread ever created, keyed by tid — the lookup
        #: the verification checkers use to resolve event ``thread`` fields
        #: back to contexts and translations.
        self.threads: Dict[int, SoftwareThread] = {}

    def _make_pair(self) -> ReadWriteSignature:
        return make_rw_pair(self.cfg.tm.signature, self.cfg.block_bytes)

    # ------------------------------------------------------------------
    # Processes and threads
    # ------------------------------------------------------------------

    def page_table(self, asid: int = 0) -> PageTable:
        """The (shared) page table of one address space."""
        table = self._page_tables.get(asid)
        if table is None:
            table = PageTable(self.amap, self.frame_allocator, asid=asid)
            self._page_tables[asid] = table
        return table

    def new_thread(self, asid: int = 0) -> SoftwareThread:
        """Create an unscheduled software thread in the given process."""
        tid = self._next_tid
        self._next_tid += 1
        ctx = TxContext(
            thread_id=tid,
            signature=self._make_pair(),
            summary=self._make_pair(),
            stats=self.stats,
            asid=asid,
            block_bytes=self.cfg.block_bytes,
            log_filter_entries=self.cfg.tm.log_filter_entries)
        thread = SoftwareThread(tid, self.page_table(asid), ctx)
        self.threads[tid] = thread
        return thread

    def all_slots(self) -> List[HardwareSlot]:
        return [slot for core in self.cores for slot in core.slots]

    def free_slots(self) -> List[HardwareSlot]:
        return [slot for slot in self.all_slots() if not slot.occupied]

    def place_threads(self, count: int, asid: int = 0
                      ) -> List[SoftwareThread]:
        """Create and bind ``count`` threads, spreading across cores first.

        Thread i lands on core ``i % num_cores``, SMT slot ``i // num_cores``
        — the natural OS placement that fills every core before doubling up.
        """
        if count > len(self.all_slots()):
            raise ConfigError(
                f"{count} threads exceed {len(self.all_slots())} contexts")
        threads = []
        for i in range(count):
            thread = self.new_thread(asid)
            core = self.cores[i % self.cfg.total_cores]
            slot = core.slots[i // self.cfg.total_cores]
            slot.bind(thread)
            threads.append(thread)
        return threads

    def attach_tracer(self, max_events: int = 100_000, kinds=None):
        """Attach a TraceRecorder capturing TM/OS lifecycle events.

        Legacy single-sink path (see :meth:`attach_bus` for the full
        observability subsystem); also wires the simulation kernel's
        tracer hook so ``sim.*`` events are captured.
        """
        from repro.obs.bus import TraceRecorder
        recorder = TraceRecorder(clock=lambda: self.sim.now,
                                 max_events=max_events, kinds=kinds)
        self.stats.recorder = recorder
        self.sim.tracer = recorder
        return recorder

    def attach_bus(self, max_events: int = 100_000, kinds=None,
                   strict: bool = False, with_log: bool = True):
        """Attach an :class:`repro.obs.bus.EventBus` plus a ring-buffer log.

        Every component's ``stats.emit(...)`` (and the sim kernel's
        process events) then publish on the bus; the returned
        ``(bus, log)`` pair gives both the fan-out point for extra
        subscribers (metrics, streaming exporters) and a bounded buffer of
        what happened. ``kinds`` filters what the *log* keeps (exact kinds
        or whole namespaces); the bus itself sees everything.
        ``with_log=False`` attaches the bare bus and returns ``(bus,
        None)`` — for subscribers (e.g. the verification checkers) that
        consume events without buffering them.
        """
        from repro.obs.bus import EventBus, RingBufferLog
        bus = EventBus(clock=lambda: self.sim.now, strict=strict)
        log = None
        if with_log:
            log = RingBufferLog(max_events=max_events, kinds=kinds)
            bus.subscribe(log)
        self.stats.recorder = bus
        self.sim.tracer = bus
        return bus, log

    def slot_of(self, thread: SoftwareThread) -> HardwareSlot:
        if thread.slot is None:
            raise ConfigError(f"thread {thread.tid} is not scheduled")
        return thread.slot
