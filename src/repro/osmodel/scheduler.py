"""OS scheduler model: time slicing, oversubscription, and migration.

The paper's Section 4.1 requires transactions to survive descheduling and
rescheduling on any thread context. This scheduler drives exactly that: it
periodically preempts running threads (which may be mid-transaction) and
places waiting threads on freed contexts — by default on a *different*
context when one is available, so migration is exercised, not just
suspension.

It cooperates with :class:`~repro.cpu.executor.ThreadExecutor` through the
thread's ``preempt_requested`` flag and ``parked`` / ``resumed`` signals;
the actual transactional state movement (signature save/restore, summary
signature installs) happens in :class:`~repro.core.manager.TMManager`.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional

from repro.cpu.thread import HardwareSlot, SoftwareThread
from repro.harness.system import System


class TimeSliceScheduler:
    """Round-robin preemptive scheduler over a system's hardware contexts."""

    def __init__(self, system: System, threads: List[SoftwareThread],
                 quantum: int = 5_000, rng: Optional[random.Random] = None,
                 prefer_migration: bool = True) -> None:
        if quantum < 1:
            raise ValueError("quantum must be positive")
        self.system = system
        self.threads = threads
        self.quantum = quantum
        self.rng = rng or random.Random(0)
        self.prefer_migration = prefer_migration
        self._ready: Deque[SoftwareThread] = deque(
            t for t in threads if t.slot is None)
        self._stop = False
        self.preemptions = 0
        self.placements = 0

    def stop(self) -> None:
        """Ask the scheduler process to wind down after the current slice."""
        self._stop = True

    def _pick_slot(self, exclude: Optional[HardwareSlot]) -> Optional[HardwareSlot]:
        free = self.system.free_slots()
        if not free:
            return None
        if self.prefer_migration and exclude is not None:
            others = [s for s in free if s is not exclude]
            if others:
                return self.rng.choice(others)
        return self.rng.choice(free)

    def _place_ready(self):
        """Schedule ready threads onto free contexts."""
        while self._ready:
            thread = self._ready.popleft()
            if thread.finished:
                continue
            slot = self._pick_slot(exclude=None)
            if slot is None:
                self._ready.appendleft(thread)
                return
            yield from self.system.manager.schedule(thread, slot)
            self.placements += 1
            thread.resumed.fire(thread)

    def run(self):
        """Scheduler process: preempt one running thread per quantum."""
        yield from self._place_ready()
        while not self._stop:
            yield self.quantum
            if self._stop:
                break
            self._ready = deque(t for t in self._ready if not t.finished)
            # Contexts freed by finished threads are refilled first.
            yield from self._place_ready()
            running = [t for t in self.threads
                       if t.slot is not None and not t.preempt_requested
                       and not t.finished]
            # Nothing to rotate if nobody is waiting and nothing to migrate.
            if not running or (not self._ready and len(running) < 2):
                continue
            victim = self.rng.choice(running)
            victim.preempt_requested = True
            self.preemptions += 1
            parked = victim.parked.wait()
            yield parked
            # The victim saved its state and unbound; queue it and refill
            # the freed contexts.
            self._ready.append(victim)
            yield from self._place_ready()
        # Wind-down: make sure nothing is left parked forever.
        yield from self._place_ready()

    def drain(self):
        """Keep placing ready threads until none remain (post-run cleanup)."""
        while self._ready:
            yield from self._place_ready()
            if self._ready:
                yield self.quantum
