"""OS paging daemon: relocates pages while transactions run.

Section 4.2's requirement: a page in the read/write set of an *active*
transaction may be paged out and back in at a different physical address,
and no isolation may be lost. The daemon periodically picks a mapped page
(optionally biased toward pages that transactions actually touched) and
relocates it through :meth:`~repro.core.manager.TMManager.relocate_page`,
which copies the data and rewrites every affected signature.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.harness.system import System
from repro.mem.vm import PageTable


class PagingDaemon:
    """Periodically relocates pages of one address space."""

    def __init__(self, system: System, page_table: PageTable,
                 period: int = 20_000, rng: Optional[random.Random] = None,
                 max_moves: int = 0) -> None:
        if period < 1:
            raise ValueError("period must be positive")
        self.system = system
        self.page_table = page_table
        self.period = period
        self.rng = rng or random.Random(0)
        #: 0 = run until stopped; otherwise stop after this many moves.
        self.max_moves = max_moves
        self.moves = 0
        self._stop = False

    def stop(self) -> None:
        self._stop = True

    def _candidate_pages(self) -> List[int]:
        return sorted(self.page_table.mapped_pages())

    def run(self):
        """Daemon process: one relocation per period."""
        while not self._stop:
            yield self.period
            if self._stop:
                break
            pages = self._candidate_pages()
            if not pages:
                continue
            vpage = self.rng.choice(pages)
            yield from self.system.manager.relocate_page(
                self.page_table, vpage)
            self.moves += 1
            if self.max_moves and self.moves >= self.max_moves:
                break
