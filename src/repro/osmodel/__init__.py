"""OS model: scheduler (context switching / migration) and paging daemon."""

from repro.osmodel.paging import PagingDaemon
from repro.osmodel.scheduler import TimeSliceScheduler

__all__ = ["PagingDaemon", "TimeSliceScheduler"]
