"""Discrete-event simulation kernel: engine, futures, resources."""

from repro.sim.engine import Process, Simulator
from repro.sim.future import Future, Signal
from repro.sim.resources import SimLock

__all__ = ["Future", "Process", "Signal", "SimLock", "Simulator"]
