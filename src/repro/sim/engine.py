"""Discrete-event simulation engine.

The engine owns virtual time (an integer cycle count) and a priority queue of
scheduled actions. Model components are *processes*: plain Python generators
that ``yield`` either

* a non-negative ``int`` — advance virtual time by that many cycles, or
* a :class:`~repro.sim.future.Future` — block until it resolves; the
  resolved value is sent back into the generator.

Processes compose with ``yield from``, which is how a CPU access "calls into"
the cache hierarchy while accumulating latency.

Internally the queue is split in two: a binary heap for timed actions and a
FIFO deque for zero-delay actions scheduled at the current cycle (future
resolutions and ``yield 0`` handoffs, which dominate synchronization-heavy
runs). Both structures honour the same global ``(when, seq)`` order — every
schedule still draws a fresh sequence number — so execution order, and
therefore every simulation result, is identical to a single-heap engine;
the split only avoids heap churn for actions that would be popped
immediately. See ``docs/performance.md``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.common.errors import DeadlockError, SimulationError
from repro.sim.future import Future

#: What a process generator may yield.
ProcessGen = Generator[Any, Any, Any]


class Process:
    """A running generator registered with the simulator."""

    __slots__ = ("gen", "name", "done", "sim", "_alive",
                 "_resume", "_on_resolved", "_next_value")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        #: Resolves with the generator's return value when it finishes.
        self.done = Future(f"{name}.done")
        self._alive = True
        # Prebound continuations: scheduling a step reuses these callables
        # instead of allocating a closure per yield. A process waits on at
        # most one future at a time, so a single ``_next_value`` cell is
        # enough to carry the resolved value into the next step.
        self._next_value: Any = None
        self._resume = self._step_next
        self._on_resolved = self._future_resolved

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Terminate the process without resolving its ``done`` future value.

        Used by tests and by the OS model when tearing a system down early.
        """
        if self._alive:
            self._alive = False
            self.gen.close()
            if not self.done.done:
                self.done.resolve(None)

    def _step_next(self) -> None:
        """Advance the generator one yield and reschedule accordingly.

        This is the scheduled continuation for every event — one call per
        event, with the send/reschedule logic inline (a separate ``_step``
        helper would double the per-event call count).
        """
        send_value, self._next_value = self._next_value, None
        if not self._alive:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            if self.sim.tracer is not None:
                self.sim.tracer.record("sim.process_done", process=self.name)
            self.done.resolve(stop.value)
            return
        if type(yielded) is int or isinstance(yielded, int):
            if yielded < 0:
                self._alive = False
                raise SimulationError(
                    f"process {self.name} yielded negative delay {yielded}")
            sim = self.sim
            sim._seq += 1
            if yielded:
                heapq.heappush(sim._queue,
                               (sim.now + yielded, sim._seq, self._resume))
            elif not sim._ready:
                sim._ready_when = sim.now
                sim._ready.append((sim._seq, self._resume))
            elif sim._ready_when == sim.now:
                sim._ready.append((sim._seq, self._resume))
            else:  # pragma: no cover - time moved past pending ready entries
                heapq.heappush(sim._queue, (sim.now, sim._seq, self._resume))
        elif isinstance(yielded, Future):
            yielded.add_callback(self._on_resolved)
        else:
            self._alive = False
            raise SimulationError(
                f"process {self.name} yielded {type(yielded).__name__}; "
                "only int delays and Futures are allowed")

    def _future_resolved(self, value: Any) -> None:
        self._next_value = value
        sim = self.sim
        sim._seq += 1
        if not sim._ready:
            sim._ready_when = sim.now
            sim._ready.append((sim._seq, self._resume))
        elif sim._ready_when == sim.now:
            sim._ready.append((sim._seq, self._resume))
        else:  # pragma: no cover - time moved past pending ready entries
            heapq.heappush(sim._queue, (sim.now, sim._seq, self._resume))

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"Process({self.name}, {state})"


class Simulator:
    """The event loop: integer virtual time plus a heap of pending actions."""

    def __init__(self) -> None:
        self.now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        #: Zero-delay actions scheduled at cycle ``_ready_when`` (always the
        #: current cycle while non-empty), FIFO by sequence number.
        self._ready: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._ready_when = 0
        self._processes: List[Process] = []
        self.events_executed = 0
        #: Optional observability sink with a ``record(kind, **fields)``
        #: method (an :class:`repro.obs.bus.EventBus` or recorder). The
        #: kernel reports process spawn/finish on it; None means untraced.
        self.tracer = None

    def schedule(self, delay: int, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` cycles (FIFO among equal times)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._seq += 1
        if delay:
            heapq.heappush(self._queue, (self.now + delay, self._seq, action))
        elif not self._ready:
            self._ready_when = self.now
            self._ready.append((self._seq, action))
        elif self._ready_when == self.now:
            self._ready.append((self._seq, action))
        else:  # pragma: no cover - time moved past pending ready entries
            heapq.heappush(self._queue, (self.now, self._seq, action))

    def _next_entry(self) -> Tuple[int, int, Callable[[], None], bool]:
        """Peek the globally smallest ``(when, seq, action)`` without
        popping; the flag says whether it lives on the heap."""
        queue, ready = self._queue, self._ready
        if ready:
            rseq, raction = ready[0]
            rwhen = self._ready_when
            if queue:
                hwhen, hseq, haction = queue[0]
                if hwhen < rwhen or (hwhen == rwhen and hseq < rseq):
                    return hwhen, hseq, haction, True
            return rwhen, rseq, raction, False
        hwhen, hseq, haction = queue[0]
        return hwhen, hseq, haction, True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, virtual time would pass ``until``, or
        ``max_events`` actions have run. Returns the final virtual time.
        """
        queue, ready = self._queue, self._ready
        while queue or ready:
            when, _seq, action, from_heap = self._next_entry()
            if until is not None and when > until:
                self.now = until
                break
            if from_heap:
                heapq.heappop(queue)
            else:
                ready.popleft()
            self.now = when
            self.events_executed += 1
            action()
            if max_events is not None and self.events_executed >= max_events:
                break
        return self.now

    def run_until_done(self, procs: List[Process],
                       limit: Optional[int] = None) -> int:
        """Run until every process in ``procs`` finished.

        Raises :class:`DeadlockError` if the event queue drains first (some
        process is blocked on a future nobody will resolve) or if ``limit``
        cycles elapse.
        """
        remaining = 0
        for p in procs:
            if not p.done.done:
                remaining += 1

                def _finished(_value):
                    nonlocal remaining
                    remaining -= 1

                p.done.add_callback(_finished)
        queue, ready = self._queue, self._ready
        heappop = heapq.heappop
        while remaining:
            if not queue and not ready:
                stuck = [p.name for p in procs if not p.done.done]
                raise DeadlockError(
                    f"no pending events but processes blocked: {stuck}")
            if ready:
                rseq, action = ready[0]
                when = self._ready_when
                if queue:
                    head = queue[0]
                    if head[0] < when or (head[0] == when and head[1] < rseq):
                        when, action = head[0], head[2]
                        if limit is not None and when > limit:
                            self._limit_exceeded(procs, limit)
                        heappop(queue)
                    else:
                        if limit is not None and when > limit:
                            self._limit_exceeded(procs, limit)
                        ready.popleft()
                else:
                    if limit is not None and when > limit:
                        self._limit_exceeded(procs, limit)
                    ready.popleft()
            else:
                when, _seq, action = queue[0]
                if limit is not None and when > limit:
                    self._limit_exceeded(procs, limit)
                heappop(queue)
            self.now = when
            self.events_executed += 1
            action()
        return self.now

    def _limit_exceeded(self, procs: List[Process], limit: int) -> None:
        stuck = [p.name for p in procs if not p.done.done]
        raise DeadlockError(
            f"cycle limit {limit} exceeded; still running: {stuck}")

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a generator as a process; it starts at the current time."""
        proc = Process(self, gen, name)
        self._processes.append(proc)
        if self.tracer is not None:
            self.tracer.record("sim.spawn", process=name)
        self.schedule(0, proc._resume)
        return proc

    @property
    def pending_events(self) -> int:
        return len(self._queue) + len(self._ready)

    def processes(self) -> List[Process]:
        """All processes ever spawned (including finished ones)."""
        return list(self._processes)
