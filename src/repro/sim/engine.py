"""Discrete-event simulation engine.

The engine owns virtual time (an integer cycle count) and a priority queue of
scheduled actions. Model components are *processes*: plain Python generators
that ``yield`` either

* a non-negative ``int`` — advance virtual time by that many cycles, or
* a :class:`~repro.sim.future.Future` — block until it resolves; the
  resolved value is sent back into the generator.

Processes compose with ``yield from``, which is how a CPU access "calls into"
the cache hierarchy while accumulating latency.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.common.errors import DeadlockError, SimulationError
from repro.sim.future import Future

#: What a process generator may yield.
ProcessGen = Generator[Any, Any, Any]


class Process:
    """A running generator registered with the simulator."""

    __slots__ = ("gen", "name", "done", "sim", "_alive")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        #: Resolves with the generator's return value when it finishes.
        self.done = Future(f"{name}.done")
        self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Terminate the process without resolving its ``done`` future value.

        Used by tests and by the OS model when tearing a system down early.
        """
        if self._alive:
            self._alive = False
            self.gen.close()
            if not self.done.done:
                self.done.resolve(None)

    def _step(self, send_value: Any) -> None:
        """Advance the generator one yield and reschedule accordingly."""
        if not self._alive:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            if self.sim.tracer is not None:
                self.sim.tracer.record("sim.process_done", process=self.name)
            self.done.resolve(stop.value)
            return
        if isinstance(yielded, int):
            if yielded < 0:
                self._alive = False
                raise SimulationError(
                    f"process {self.name} yielded negative delay {yielded}")
            self.sim.schedule(yielded, lambda: self._step(None))
        elif isinstance(yielded, Future):
            yielded.add_callback(
                lambda value: self.sim.schedule(0, lambda: self._step(value)))
        else:
            self._alive = False
            raise SimulationError(
                f"process {self.name} yielded {type(yielded).__name__}; "
                "only int delays and Futures are allowed")

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"Process({self.name}, {state})"


class Simulator:
    """The event loop: integer virtual time plus a heap of pending actions."""

    def __init__(self) -> None:
        self.now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._processes: List[Process] = []
        self.events_executed = 0
        #: Optional observability sink with a ``record(kind, **fields)``
        #: method (an :class:`repro.obs.bus.EventBus` or recorder). The
        #: kernel reports process spawn/finish on it; None means untraced.
        self.tracer = None

    def schedule(self, delay: int, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` cycles (FIFO among equal times)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, action))

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a generator as a process; it starts at the current time."""
        proc = Process(self, gen, name)
        self._processes.append(proc)
        if self.tracer is not None:
            self.tracer.record("sim.spawn", process=name)
        self.schedule(0, lambda: proc._step(None))
        return proc

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, virtual time would pass ``until``, or
        ``max_events`` actions have run. Returns the final virtual time.
        """
        while self._queue:
            when, _seq, action = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = when
            self.events_executed += 1
            action()
            if max_events is not None and self.events_executed >= max_events:
                break
        return self.now

    def run_until_done(self, procs: List[Process],
                       limit: Optional[int] = None) -> int:
        """Run until every process in ``procs`` finished.

        Raises :class:`DeadlockError` if the event queue drains first (some
        process is blocked on a future nobody will resolve) or if ``limit``
        cycles elapse.
        """
        while not all(p.done.done for p in procs):
            if not self._queue:
                stuck = [p.name for p in procs if not p.done.done]
                raise DeadlockError(
                    f"no pending events but processes blocked: {stuck}")
            if limit is not None and self._queue[0][0] > limit:
                stuck = [p.name for p in procs if not p.done.done]
                raise DeadlockError(
                    f"cycle limit {limit} exceeded; still running: {stuck}")
            when, _seq, action = heapq.heappop(self._queue)
            self.now = when
            self.events_executed += 1
            action()
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def processes(self) -> List[Process]:
        """All processes ever spawned (including finished ones)."""
        return list(self._processes)
