"""One-shot synchronization cells for simulation processes.

A :class:`Future` is resolved exactly once with a value; processes that
``yield`` it are resumed with that value. This is the only blocking primitive
in the kernel — conditions, queues, and locks in the model are built from it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError


class Future:
    """A single-assignment value that processes can wait on."""

    __slots__ = ("_done", "_value", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._done = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []
        self.name = name

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"future {self.name!r} read before resolve")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Set the value and wake every waiter (exactly once)."""
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Run ``cb(value)`` when resolved (immediately if already done)."""
        if self._done:
            cb(self._value)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:
        state = f"done={self._value!r}" if self._done else "pending"
        return f"Future({self.name!r}, {state})"


class Signal:
    """A reusable broadcast event: each ``wait()`` returns a fresh Future.

    Components that fire repeatedly (e.g. "a transaction committed on this
    core") hand out futures from a Signal; ``fire()`` resolves the current
    batch of waiters.
    """

    __slots__ = ("_waiters", "name")

    def __init__(self, name: str = "") -> None:
        self._waiters: List[Future] = []
        self.name = name

    def wait(self) -> Future:
        fut = Future(f"{self.name}.wait")
        self._waiters.append(fut)
        return fut

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            fut.resolve(value)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)
