"""Shared-resource primitives built on the process/future model.

These model *simulation-level* mutual exclusion (e.g. one coherence
transaction holding a directory entry), not the locks that workloads use —
those are simulated through memory operations in :mod:`repro.core.locks`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.errors import SimulationError
from repro.sim.future import Future


class SimLock:
    """FIFO mutex for processes.

    Usage inside a process generator::

        yield from lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    __slots__ = ("_held", "_waiters", "name")

    def __init__(self, name: str = "lock") -> None:
        self._held = False
        self._waiters: Deque[Future] = deque()
        self.name = name

    @property
    def held(self) -> bool:
        return self._held

    def acquire(self):
        """Process sub-generator that returns once the lock is owned."""
        if not self._held:
            self._held = True
            return
        fut = Future(f"{self.name}.acquire")
        self._waiters.append(fut)
        yield fut
        # Ownership was transferred to us by release(); _held stays True.

    def release(self) -> None:
        if not self._held:
            raise SimulationError(f"release of unheld lock {self.name}")
        if self._waiters:
            # Hand the lock directly to the next waiter (no barging).
            self._waiters.popleft().resolve(None)
        else:
            self._held = False

    @property
    def queue_length(self) -> int:
        return len(self._waiters)
