"""Cache substrate: MESI block state and set-associative tag arrays."""

from repro.cache.array import CacheArray
from repro.cache.block import CacheBlock, MESI

__all__ = ["CacheArray", "CacheBlock", "MESI"]
