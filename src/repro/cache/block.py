"""Cache block state.

The baseline protocol is MESI (Section 5). Blocks carry optional R/W bits so
the *original LogTM* baseline (which keeps read/write-set bits in the L1,
Section 8) can be modeled as an ablation; LogTM-SE itself never sets them.
"""

from __future__ import annotations

import enum


class MESI(enum.Enum):
    """Stable MESI coherence states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def can_read(self) -> bool:
        return self is not MESI.INVALID

    @property
    def can_write(self) -> bool:
        return self in (MESI.MODIFIED, MESI.EXCLUSIVE)

    @property
    def is_exclusive(self) -> bool:
        return self in (MESI.MODIFIED, MESI.EXCLUSIVE)


class CacheBlock:
    """One resident cache line's metadata (tags only; data is functional)."""

    __slots__ = ("addr", "state", "last_use", "r_bit", "w_bit")

    def __init__(self, addr: int, state: MESI) -> None:
        self.addr = addr
        self.state = state
        self.last_use = 0
        # LogTM-classic read/write-set bits (unused by LogTM-SE).
        self.r_bit = False
        self.w_bit = False

    @property
    def dirty(self) -> bool:
        return self.state is MESI.MODIFIED

    def __repr__(self) -> str:
        return f"CacheBlock({self.addr:#x}, {self.state.value})"
