"""Set-associative cache array with LRU replacement.

Tracks tags and MESI state only — all data values are functional and live in
:class:`~repro.mem.physical.PhysicalMemory`. This matches the paper's point
that LogTM-SE "never moves cached data" for TM purposes: the array exists to
model hits, misses, capacity, and (crucially for Result 4) victimization of
transactional blocks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.config import CacheConfig
from repro.cache.block import CacheBlock, MESI


class CacheArray:
    """Tag array: ``num_sets`` sets of ``associativity`` ways, LRU."""

    __slots__ = ("cfg", "name", "_sets", "_use_clock", "_block_shift",
                 "_set_mask", "hits", "misses", "evictions")

    def __init__(self, cfg: CacheConfig, name: str = "cache") -> None:
        self.cfg = cfg
        self.name = name
        self._sets: List[Dict[int, CacheBlock]] = [
            {} for _ in range(cfg.num_sets)]
        self._use_clock = 0
        self._block_shift = cfg.block_bytes.bit_length() - 1
        self._set_mask = cfg.num_sets - 1
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def set_index(self, block_addr: int) -> int:
        return (block_addr >> self._block_shift) & self._set_mask

    def lookup(self, block_addr: int, touch: bool = True
               ) -> Optional[CacheBlock]:
        """Find a resident block (hit/miss counters updated)."""
        block = self._sets[(block_addr >> self._block_shift)
                           & self._set_mask].get(block_addr)
        if block is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._use_clock += 1
            block.last_use = self._use_clock
        return block

    def peek(self, block_addr: int) -> Optional[CacheBlock]:
        """Find a resident block without disturbing LRU or counters."""
        return self._sets[(block_addr >> self._block_shift)
                          & self._set_mask].get(block_addr)

    def insert(self, block_addr: int, state: MESI
               ) -> Tuple[CacheBlock, Optional[CacheBlock]]:
        """Allocate a block, returning ``(new_block, evicted_or_None)``.

        The LRU way of a full set is evicted; the caller is responsible for
        any writeback / directory notification for the victim.
        """
        cache_set = self._sets[self.set_index(block_addr)]
        existing = cache_set.get(block_addr)
        if existing is not None:
            existing.state = state
            self._use_clock += 1
            existing.last_use = self._use_clock
            return existing, None
        victim = None
        if len(cache_set) >= self.cfg.associativity:
            lru_addr = min(cache_set, key=lambda a: cache_set[a].last_use)
            victim = cache_set.pop(lru_addr)
            self.evictions += 1
        block = CacheBlock(block_addr, state)
        self._use_clock += 1
        block.last_use = self._use_clock
        cache_set[block_addr] = block
        return block, victim

    def invalidate(self, block_addr: int) -> Optional[CacheBlock]:
        """Remove a block (returns it, or None if absent)."""
        return self._sets[self.set_index(block_addr)].pop(block_addr, None)

    def resident_blocks(self) -> Iterator[CacheBlock]:
        for cache_set in self._sets:
            yield from cache_set.values()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Drop every block (test helper); returns how many were resident."""
        count = self.occupancy
        for cache_set in self._sets:
            cache_set.clear()
        return count

    def __repr__(self) -> str:
        return (f"CacheArray({self.name}: {self.occupancy}/"
                f"{self.cfg.num_blocks} blocks)")
