"""Thread executor: interprets workload sections on a hardware context.

One executor drives one software thread. Atomic sections run as LogTM-SE
transactions (with the full abort/retry protocol) or under spinlocks,
depending on the system's :class:`~repro.common.config.SyncMode` — the same
operation stream either way, which is the paper's methodology for the
lock-vs-TM comparison.

The executor resolves its hardware slot from the software thread on every
operation, so the OS scheduler can deschedule it (it parks at the next
instruction boundary — possibly mid-transaction, the case Section 4.1's
summary signatures exist for) and later resume it on *any* context,
including a different core (thread migration).
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.common.config import LockImpl, SyncMode, SystemConfig
from repro.common.errors import (AbortTransaction, PreemptedAccess,
                                 WorkloadError)
from repro.common.stats import StatsRegistry
from repro.core import locks
from repro.core.conflict import BackoffPolicy
from repro.core.manager import TMManager
from repro.cpu.thread import SoftwareThread
from repro.workloads.base import Op, OpKind, Section

#: Safety valve: a single transaction restarting this many times is a model
#: livelock, not workload behavior.
MAX_TX_ATTEMPTS = 10_000


class ThreadExecutor:
    """Runs one software thread's section stream to completion."""

    def __init__(self, cfg: SystemConfig, thread: SoftwareThread,
                 manager: TMManager, sections: Iterable[Section],
                 rng: random.Random, stats: StatsRegistry) -> None:
        self.cfg = cfg
        self.thread = thread
        self.manager = manager
        self.sections = sections
        self.rng = rng
        self.stats = stats
        self.backoff = BackoffPolicy(cfg.tm, rng)
        self.units_done = 0
        self._c_units = stats.counter("work.units")
        self._c_tx_attempts = stats.counter("tm.attempts")

    @property
    def slot(self):
        slot = self.thread.slot
        if slot is None:
            raise WorkloadError(
                f"thread {self.thread.tid} ran while descheduled")
        return slot

    @property
    def core(self):
        return self.slot.core

    def run(self):
        """Top-level process generator for this thread."""
        for section in self.sections:
            yield from self._preemption_point()
            if section.atomic:
                if self.cfg.sync is SyncMode.TRANSACTIONS:
                    yield from self._run_transactional(section)
                else:
                    yield from self._run_locked(section)
            else:
                yield from self._run_ops(section.ops)
            if section.unit:
                self.units_done += 1
                self._c_units.add()
        self.thread.finished = True
        self.thread.preempt_requested = False
        if self.thread.slot is not None:
            # Release the hardware context (no transactional state remains
            # at program end, so a plain unbind suffices) and wake any
            # scheduler waiting for this thread to park.
            self.thread.slot.unbind()
        self.thread.parked.fire(self.thread)
        return self.units_done

    # ------------------------------------------------------------------

    def _preemption_point(self):
        """Instruction boundary: honor a pending preemption request.

        The executor deschedules itself (saving transactional state via the
        manager), announces it has parked, and blocks until the scheduler
        resumes it on some context.
        """
        while True:
            if self.thread.preempt_requested and self.thread.slot is not None:
                self.thread.preempt_requested = False
                yield from self.manager.deschedule(self.thread.slot)
                self.thread.parked.fire(self.thread)
            if self.thread.slot is None:
                # Not scheduled (initial oversubscription or just parked):
                # block until the scheduler places us on a context.
                yield self.thread.resumed.wait()
                continue
            if self.thread.ctx.aborted_by_os:
                # Classic-LogTM preemption unrolled the transaction while
                # we were parked; restart it through the normal retry path.
                self.thread.ctx.aborted_by_os = False
                raise AbortTransaction("aborted by OS preemption",
                                       cause="preemption")
            return

    def _run_transactional(self, section: Section):
        """Begin/retry loop implementing abort-and-restart."""
        for attempt in range(MAX_TX_ATTEMPTS):
            self._c_tx_attempts.add()
            yield from self.manager.begin(self.slot)
            try:
                yield from self._run_ops(section.ops)
                yield from self.manager.commit(self.slot)
                return
            except AbortTransaction as exc:
                yield from self.manager.abort(self.slot, full=True,
                                              cause=exc)
                yield self.backoff.restart_delay(attempt + 1)
                yield from self._preemption_point()
        raise WorkloadError(
            f"transaction {section.label!r} aborted {MAX_TX_ATTEMPTS} times")

    def _run_locked(self, section: Section):
        if self.cfg.lock_impl is LockImpl.MUTEX:
            yield from self.manager.mutex_acquire(self.slot, section.lock)
        else:
            while True:
                yield from self._preemption_point()
                try:
                    yield from locks.acquire(
                        self.core, self.slot, section.lock, self.rng,
                        base_backoff=self.cfg.tm.backoff_base)
                    break
                except PreemptedAccess:
                    continue  # park, then retry the acquire
        try:
            yield from self._run_ops(section.ops)
        finally:
            # Lock mode cannot abort (no isolation), so the release always
            # runs; AbortTransaction is impossible outside a transaction.
            if self.cfg.lock_impl is LockImpl.MUTEX:
                yield from self.manager.mutex_release(self.slot, section.lock)
            else:
                while True:
                    yield from self._preemption_point()
                    try:
                        yield from locks.release(self.core, self.slot,
                                                 section.lock)
                        break
                    except PreemptedAccess:
                        continue

    def _run_ops(self, ops: List[Op]):
        thread = self.thread
        for op in ops:
            while True:
                # Fast path: scheduled, no preemption pending, not squashed
                # — the overwhelmingly common case. ``_preemption_point``
                # would check the same three conditions and return without
                # yielding, so skipping the sub-generator entirely is
                # behavior-identical and saves its setup/teardown per op.
                if (thread.preempt_requested or thread.slot is None
                        or thread.ctx.aborted_by_os):
                    yield from self._preemption_point()
                try:
                    # The four hot op kinds dispatch inline: ``_dispatch``
                    # would add one generator allocation and one frame to
                    # the resume chain per operation. Rare kinds (nesting,
                    # escapes, calls) still go through it.
                    kind = op.kind
                    if kind is OpKind.LOAD:
                        slot = self.slot
                        yield from slot.core.load(slot, op.vaddr)
                    elif kind is OpKind.STORE:
                        slot = self.slot
                        yield from slot.core.store(slot, op.vaddr, op.value)
                    elif kind is OpKind.COMPUTE:
                        if op.cycles:
                            yield op.cycles
                    elif kind is OpKind.INCR:
                        slot = self.slot
                        yield from slot.core.fetch_add(slot, op.vaddr,
                                                       op.value)
                    else:
                        yield from self._dispatch(op)
                    break
                except PreemptedAccess:
                    # Parked mid-access; the next preemption point waits for
                    # rescheduling and the same op is re-issued (possibly on
                    # a different core after migration).
                    continue

    def _dispatch(self, op: Op):
        kind = op.kind
        # Resolve the hardware slot once per op (the ``slot``/``core``
        # properties re-derive it on every use).
        if kind is OpKind.LOAD:
            slot = self.slot
            yield from slot.core.load(slot, op.vaddr)
        elif kind is OpKind.STORE:
            slot = self.slot
            yield from slot.core.store(slot, op.vaddr, op.value)
        elif kind is OpKind.INCR:
            slot = self.slot
            yield from slot.core.fetch_add(slot, op.vaddr, op.value)
        elif kind is OpKind.COMPUTE:
            if op.cycles:
                yield op.cycles
        elif kind is OpKind.NEST_BEGIN:
            if self.cfg.sync is SyncMode.TRANSACTIONS:
                yield from self.manager.begin(self.slot, is_open=op.open_nest)
            # Under locks nesting flattens into the enclosing section.
        elif kind is OpKind.NEST_END:
            if self.cfg.sync is SyncMode.TRANSACTIONS:
                yield from self.manager.commit(self.slot)
        elif kind is OpKind.ESCAPE_BEGIN:
            if self.cfg.sync is SyncMode.TRANSACTIONS:
                self.manager.begin_escape(self.slot)
        elif kind is OpKind.ESCAPE_END:
            if self.cfg.sync is SyncMode.TRANSACTIONS:
                self.manager.end_escape(self.slot)
        elif kind is OpKind.CALL:
            yield from op.fn(self.core, self.slot)
        else:  # pragma: no cover - exhaustive enum
            raise WorkloadError(f"unknown op kind {op.kind}")
