"""Core model: SMT thread contexts, private L1, and the LogTM-SE access path.

Every memory reference follows Section 2's flow:

1. **Summary-signature check** — on every reference, hit or miss, against the
   slot's summary register (conflicts with descheduled transactions trap).
2. **SMT sibling check** — signatures of other thread contexts on this core
   (same-core conflicts generate no coherence traffic, so they must be
   caught here; this also covers S->M upgrades, which the directory never
   forwards back to the requesting core).
3. **L1 lookup** — hits with sufficient permission proceed with no signature
   tests beyond the above (the coherence invariants guarantee safety).
4. **Coherence request** on a miss/upgrade; a NACK invokes LogTM's
   stall/abort resolution.
5. **Transactional bookkeeping** — insert into the read/write signature;
   for stores, consult the log filter and append an undo record on a miss.

The core also implements :class:`ConflictPort`: the directory forwards
requests here, and the signatures of all *scheduled* thread contexts answer.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.array import CacheArray
from repro.cache.block import MESI
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.msgs import Blocker, ConflictPort, Timestamp
from repro.common.config import SystemConfig
from repro.common.errors import (AbortTransaction, PreemptedAccess,
                                 SimulationError)
from repro.common.stats import StatsRegistry
from repro.core.conflict import BackoffPolicy
from repro.core.policies import ContentionPolicy, Decision, make_policy
from repro.obs.analysis import dominant_via
from repro.cpu.thread import HardwareSlot
from repro.mem.address import AddressMap
from repro.mem.physical import PhysicalMemory
from repro.mem.tlb import Tlb
from repro.signatures.rwpair import ReadWriteSignature

#: Give up after this many retries of one access — indicates a livelock bug
#: in the model rather than expected workload behavior.
MAX_ACCESS_RETRIES = 100_000

#: Operation kinds for the merged memory-op generator (plain ints: the
#: dispatch runs once per memory reference).
_OP_LOAD, _OP_STORE, _OP_FETCH_ADD, _OP_SWAP = 0, 1, 2, 3


class Core(ConflictPort):
    """One processor core: L1 cache + ``threads_per_core`` SMT slots."""

    def __init__(self, core_id: int, cfg: SystemConfig,
                 fabric: CoherenceFabric, memory: PhysicalMemory,
                 stats: StatsRegistry, backoff: BackoffPolicy,
                 summary_factory: Callable[[], ReadWriteSignature]) -> None:
        self._core_id = core_id
        self.cfg = cfg
        self.fabric = fabric
        self.memory = memory
        self.stats = stats
        self.backoff = backoff
        self.threads_per_core = cfg.threads_per_core
        self.l1 = CacheArray(cfg.l1, name=f"L1[{core_id}]")
        self.amap = AddressMap(block_bytes=cfg.block_bytes,
                               page_bytes=cfg.page_bytes,
                               num_banks=cfg.l2_banks)
        self.slots = [HardwareSlot(self, i, summary_factory())
                      for i in range(cfg.threads_per_core)]
        self.policy: ContentionPolicy = make_policy(cfg.tm)
        self.tlb = Tlb(entries=cfg.tlb_entries)
        self._c_loads = stats.counter("mem.loads")
        self._c_stores = stats.counter("mem.stores")
        self._c_stalls = stats.counter("tm.stalls")
        self._c_nontx_stalls = stats.counter("mem.nontx_stalls")
        self._c_conflicts = stats.counter("tm.conflicts_total")
        self._c_conflicts_fp = stats.counter("tm.conflicts_false_positive")
        self._c_summary = stats.counter("tm.summary_conflicts")
        self._c_sibling = stats.counter("tm.sibling_conflicts")
        self._c_log_appends = stats.counter("tm.log_appends")
        self._c_log_filtered = stats.counter("tm.log_filtered")
        self._c_tlb_misses = stats.counter("mem.tlb_misses")
        # Hot-path constants, hoisted out of the per-access loop. All are
        # fixed for the lifetime of the system (SystemConfig is immutable).
        self._lazy = cfg.tm.lazy
        self._use_asid_filter = cfg.tm.use_asid_filter
        self._l1_latency = cfg.l1.latency
        self._tlb_walk_latency = cfg.tlb_walk_latency
        self._log_store_cycles = cfg.tm.log_store_cycles
        self._block_mask = ~(cfg.block_bytes - 1)
        self._page_mask = ~(cfg.page_bytes - 1)
        #: With a single context per core there are no SMT siblings, so the
        #: per-access sibling scan is statically dead.
        self._multi_slot = cfg.threads_per_core > 1
        fabric.attach(self)

    # ------------------------------------------------------------------
    # ConflictPort (the directory/bus calls in here)
    # ------------------------------------------------------------------

    @property
    def core_id(self) -> int:
        return self._core_id

    def check_conflicts(self, block_addr: int, is_write: bool,
                        exclude_thread: Optional[int], asid: int,
                        requester_ts: Optional[Timestamp]) -> List[Blocker]:
        if self._lazy:
            # Lazy (Bulk-style) mode detects conflicts at commit time, not
            # on coherence requests: execution is never NACKed.
            return []
        blockers: List[Blocker] = []
        for slot in self.slots:
            thread = slot.thread
            if thread is None or thread.tid == exclude_thread:
                continue
            # ASID filter: signatures never NACK another address space
            # (prevents cross-process interference, Section 2). The
            # ablation knob re-creates the interference for measurement.
            if self._use_asid_filter and thread.asid != asid:
                continue
            ctx = thread.ctx
            if ctx.signature.conflicts(is_write, block_addr):
                fp = ctx.signature.conflict_is_false_positive(
                    is_write, block_addr)
                ctx.note_nacked_older(requester_ts)
                blockers.append(Blocker(self._core_id, thread.tid,
                                        ctx.timestamp, fp))
        return blockers

    def mark_abort(self, thread_id: int, fp: bool = False) -> bool:
        for slot in self.slots:
            thread = slot.thread
            if thread is not None and thread.tid == thread_id:
                if thread.ctx.in_tx:
                    thread.ctx.pending_abort = True
                    thread.ctx.pending_abort_fp = fp
                    self.stats.counter("tm.remote_abort_requests").add()
                    return True
                return False
        return False

    def invalidate_block(self, block_addr: int) -> bool:
        return self.l1.invalidate(block_addr) is not None

    def downgrade_block(self, block_addr: int) -> bool:
        block = self.l1.peek(block_addr)
        if block is not None and block.state.is_exclusive:
            block.state = MESI.SHARED
            return True
        return False

    def holds_transactional(self, block_addr: int) -> bool:
        """Conservative signature test used for the sticky decision."""
        if self._lazy:
            # No sticky states under lazy detection (Bulk has no need:
            # commit-time broadcasts reach every signature).
            return False
        for slot in self.slots:
            if slot.thread is None:
                continue
            sig = slot.thread.ctx.signature
            if sig.read.contains(block_addr) or sig.write.contains(block_addr):
                return True
        return False

    # ------------------------------------------------------------------
    # The access path (simulation sub-generators)
    # ------------------------------------------------------------------

    def _lazy_tx(self, slot: HardwareSlot) -> bool:
        """Is this access a transactional access under lazy versioning?"""
        thread = slot.thread
        return (self._lazy and thread is not None
                and thread.ctx.transactional)

    def _check_doomed(self, slot: HardwareSlot) -> None:
        """Surface an asynchronous squash *before* the next operation.

        A lazily-squashed (or classic-LogTM preempted) transaction was
        already unrolled elsewhere; if its thread kept executing, its next
        store would apply non-transactionally. Raising here hands control
        to the executor's retry loop instead.
        """
        ctx = slot.thread.ctx if slot.thread else None
        if ctx is not None and ctx.aborted_by_os:
            ctx.aborted_by_os = False
            raise AbortTransaction("squashed asynchronously", cause="squash")

    def load(self, slot: HardwareSlot, vaddr: int):
        """Load a word; returns its value."""
        return self._mem_op(slot, vaddr, _OP_LOAD, 0)

    def store(self, slot: HardwareSlot, vaddr: int, value: int):
        """Store a word.

        Eager versioning updates memory in place (after undo logging, in
        the access path). Lazy versioning buffers the store locally — no
        coherence permission, no logging, invisible until commit.
        """
        return self._mem_op(slot, vaddr, _OP_STORE, value)

    def fetch_add(self, slot: HardwareSlot, vaddr: int, delta: int):
        """Atomic read-modify-write; returns the old value."""
        return self._mem_op(slot, vaddr, _OP_FETCH_ADD, delta)

    def swap(self, slot: HardwareSlot, vaddr: int, value: int):
        """Atomic exchange (test-and-set primitive); returns the old value."""
        return self._mem_op(slot, vaddr, _OP_SWAP, value)

    def _mem_op(self, slot: HardwareSlot, vaddr: int, opkind: int,
                value: int):
        """The merged memory-operation generator.

        ``load``/``store``/``fetch_add``/``swap`` are plain functions that
        return this one generator (``yield from`` propagates its return
        value to every existing call site unchanged). Merging the former
        per-op wrapper generators and ``_access`` into a single frame
        matters: each engine resume traverses every live frame in the
        ``yield from`` chain, and each access used to allocate three
        generator objects where one suffices. The body preserves the
        original statement order exactly — byte-identical results.
        """
        if opkind == _OP_LOAD:
            self._c_loads.value += 1
        else:
            self._c_stores.value += 1
        thread = slot.thread
        if thread is not None and thread.ctx.aborted_by_os:
            self._check_doomed(slot)
        if self._lazy and thread is not None and thread.ctx.transactional:
            # Lazy (Bulk-style) version management: no coherence permission,
            # no logging; stores buffer locally and loads see their own
            # buffered writes. Invisible to other threads until commit.
            ctx = thread.ctx
            if opkind == _OP_LOAD:
                word = PhysicalMemory.word_of(vaddr)
                if word in ctx.write_buffer:
                    # Read-your-own-write from the speculative buffer.
                    yield self._l1_latency
                    return ctx.write_buffer[word]
                # Not buffered: fall through to the shared access path.
            elif opkind == _OP_STORE:
                block = self.amap.block_of(thread.translate(vaddr))
                ctx.signature.insert_write(block)
                ctx.write_buffer[PhysicalMemory.word_of(vaddr)] = value
                yield self._l1_latency
                return
            elif opkind == _OP_FETCH_ADD:
                old = yield from self.load(slot, vaddr)
                yield from self.store(slot, vaddr, old + value)
                return old
            else:  # _OP_SWAP
                old = yield from self.load(slot, vaddr)
                yield from self.store(slot, vaddr, value)
                return old
        is_write = opkind != _OP_LOAD
        # -- the access path (formerly ``_access``): acquire permission and
        # perform the per-reference TM bookkeeping -------------------------
        if thread is None:
            raise SimulationError(f"access on empty slot {slot.global_id}")
        ctx = thread.ctx
        # Hot locals: this generator runs once per memory reference, and the
        # attribute chains below are the measured cost centers.
        page_table = thread.page_table
        translate = page_table.translate
        asid = page_table.asid
        block_mask = self._block_mask
        lazy = self._lazy
        summary = slot.summary
        log = ctx.log
        lookup = self.l1.lookup
        # Address translation: the page table is the functional truth; the
        # TLB charges the walk latency on a miss (and is kept coherent by
        # the OS shootdown in the paging path).
        vpage = vaddr & self._page_mask
        frame = self.tlb.lookup(asid, vpage)
        if frame is None:
            yield self._tlb_walk_latency
            self._c_tlb_misses.value += 1
            self.tlb.fill(asid, vpage, translate(vaddr) & self._page_mask)
        # Escaped accesses skip isolation bookkeeping but still carry the
        # enclosing transaction's timestamp: the thread holds isolation, so
        # it can sit on a deadlock cycle, and blockers must learn its age to
        # set their possible_cycle flags (otherwise an old transaction
        # stalled inside an escape action deadlocks the system).
        # ``log_frames`` aliases the undo log's frame list: ``log.depth > 0``
        # is a property call plus ``len``; the truthiness test below is one
        # attribute load, and this runs twice per access retry.
        log_frames = log._frames
        requester_ts = ctx.timestamp if log_frames else None

        for _attempt in range(MAX_ACCESS_RETRIES):
            # Each retry is an instruction boundary: honor preemption here
            # so a stalling thread can be descheduled (Section 4.1)...
            if thread.preempt_requested:
                raise PreemptedAccess(f"thread {thread.tid} preempted")
            # ...and honor a remote contention manager's doom mark.
            # (``log.depth > 0 and escape_depth == 0`` is ctx.transactional
            # with the property indirection peeled off.)
            transactional = bool(log_frames) and ctx.escape_depth == 0
            if ctx.pending_abort and transactional:
                raise AbortTransaction("remote contention-manager abort",
                                       cause="remote",
                                       fp=ctx.pending_abort_fp)
            # Translation can change under paging; recompute each retry.
            block = translate(vaddr) & block_mask

            # (1) Summary signature: checked on every reference.
            # (Lazy mode has neither summary signatures nor execution-time
            # conflicts — Bulk is not virtualizable this way. The emptiness
            # test reads the exact shadows directly: the common case is an
            # empty summary, and it must cost two attribute loads, not four
            # chained properties.)
            if (not lazy and summary is not None
                    and (summary.read._exact or summary.write._exact)
                    and summary.conflicts(is_write, block)):
                self._c_summary.add()
                summary_fp = summary.conflict_is_false_positive(
                    is_write, block)
                self._note_conflict(ctx, fp=summary_fp, source="summary",
                                    block=block)
                if transactional:
                    # Stalling cannot resolve a conflict with a descheduled
                    # transaction; trap and abort (Section 4.1).
                    raise AbortTransaction("summary-signature conflict",
                                           cause="summary", fp=summary_fp)
                yield self.backoff.stall_delay()
                continue

            # (2) SMT sibling signatures (eager mode only; lazy writes
            # are invisible until commit; single-context cores have no
            # siblings to scan).
            sibling_blockers = None if (lazy or not self._multi_slot) else \
                self._sibling_conflicts(
                    thread.tid, asid, block, is_write, requester_ts)
            if sibling_blockers:
                self._c_sibling.add()
                self._note_conflict(ctx, fp=all(
                    b.false_positive for b in sibling_blockers),
                    source="sibling", block=block,
                    blockers=sibling_blockers)
                yield from self._resolve_or_stall(ctx, sibling_blockers,
                                                  retries=_attempt)
                continue

            # (3) L1 lookup. The permission test spells out MESI.can_write /
            # MESI.can_read: enum properties cost a descriptor call per
            # access, identity tests do not.
            resident = lookup(block)
            if resident is not None and (
                    (resident.state is MESI.MODIFIED
                     or resident.state is MESI.EXCLUSIVE) if is_write
                    else resident.state is not MESI.INVALID):
                # Insert into the signature *before* modeling the L1 access
                # latency: the insert is part of issuing the access, so a
                # conflicting request arriving during the latency window is
                # NACKed. (Deferring it opened a window where two
                # same-cycle accesses — SMT siblings, or a remote grant in
                # flight — both passed their signature checks and then both
                # proceeded, breaking isolation on the block.)
                if transactional:
                    if is_write:
                        ctx.signature.insert_write(block)
                    else:
                        ctx.signature.insert_read(block)
                yield self._l1_latency
                if is_write and resident.state is MESI.EXCLUSIVE:
                    resident.state = MESI.MODIFIED  # silent E->M upgrade
                break

            # (4) Coherence request.
            result = yield from self.fabric.request(
                self._core_id, thread.tid, requester_ts, block,
                is_write, asid)
            if result.granted:
                self._install(block, result.grant_state, is_write)
                # Do not proceed directly: an SMT sibling may have touched
                # the block while our request was in flight (its access was
                # a local L1 hit our pre-issue sibling check predates).
                # Looping re-runs the summary/sibling checks against the
                # now-resident copy before the access commits.
                continue
            self._note_conflict(ctx, fp=result.all_false_positive,
                                source="coherence", block=block,
                                blockers=result.blockers)
            yield from self._resolve_or_stall(ctx, result.blockers,
                                              retries=_attempt)
        else:
            raise SimulationError(
                f"thread {thread.tid} livelocked on {vaddr:#x}")

        # (5) Transactional bookkeeping.
        if log_frames and ctx.escape_depth == 0:
            if is_write:
                ctx.signature.insert_write(block)
                vblock = vaddr & block_mask
                if ctx.log_filter.should_log(vblock):
                    log.append(vblock, self.memory, translate)
                    self._c_log_appends.value += 1
                    yield self._log_store_cycles
                else:
                    self._c_log_filtered.value += 1
            else:
                ctx.signature.insert_read(block)

        # -- functional completion (formerly the per-op wrappers) ----------
        if opkind == _OP_LOAD:
            value = self.memory.load(slot.thread.translate(vaddr))
            if self.stats.recorder is not None:
                self._note_access(slot, vaddr, is_write=False, value=value)
            return value
        if opkind == _OP_STORE:
            self.memory.store(slot.thread.translate(vaddr), value)
            if self.stats.recorder is not None:
                self._note_access(slot, vaddr, is_write=True, value=value)
            return None
        if opkind == _OP_FETCH_ADD:
            paddr = slot.thread.translate(vaddr)
            old = self.memory.load(paddr)
            if self.stats.recorder is not None:
                self._note_access(slot, vaddr, is_write=False, value=old)
            self.memory.store(paddr, old + value)
            if self.stats.recorder is not None:
                self._note_access(slot, vaddr, is_write=True,
                                  value=old + value)
            return old
        # _OP_SWAP
        paddr = slot.thread.translate(vaddr)
        old = self.memory.load(paddr)
        if self.stats.recorder is not None:
            self._note_access(slot, vaddr, is_write=False, value=old)
        self.memory.store(paddr, value)
        if self.stats.recorder is not None:
            self._note_access(slot, vaddr, is_write=True, value=value)
        return old

    def _note_access(self, slot: HardwareSlot, vaddr: int, is_write: bool,
                     value: int) -> None:
        """Emit a ``tm.access`` event for one completed memory reference.

        Called immediately after the functional load/store with no yields
        in between, so the value and the event order exactly mirror the
        memory image — the ground truth the verification checkers
        (:mod:`repro.verify`) replay. Zero cost without a recorder.
        """
        if self.stats.recorder is None:
            return
        thread = slot.thread
        ctx = thread.ctx
        self.stats.emit(
            "tm.access", thread=thread.tid, vaddr=vaddr,
            block=self.amap.block_of(thread.translate(vaddr)),
            write=is_write, value=value, tx=ctx.transactional,
            in_tx=ctx.in_tx, asid=thread.asid)

    def _install(self, block_addr: int, state: MESI, is_write: bool) -> None:
        """Fill the L1 after a grant; notify the fabric about the victim."""
        if is_write and state is MESI.EXCLUSIVE:
            state = MESI.MODIFIED
        _new, victim = self.l1.insert(block_addr, state)
        if victim is not None:
            transactional = self.holds_transactional(victim.addr)
            self.fabric.l1_evicted(self._core_id, victim.addr,
                                   victim.state, transactional)

    def _sibling_conflicts(self, tid: int, asid: int, block: int,
                           is_write: bool, requester_ts: Optional[Timestamp]
                           ) -> List[Blocker]:
        blockers: List[Blocker] = []
        for slot in self.slots:
            other = slot.thread
            if other is None or other.tid == tid or other.asid != asid:
                continue
            sig = other.ctx.signature
            if sig.conflicts(is_write, block):
                other.ctx.note_nacked_older(requester_ts)
                blockers.append(Blocker(
                    self._core_id, other.tid, other.ctx.timestamp,
                    sig.conflict_is_false_positive(is_write, block)))
        return blockers

    def _resolve_or_stall(self, ctx, blockers: List[Blocker],
                          retries: int = 0):
        """Trap to the contention manager: stall, abort self, or doom the
        blockers (Section 2's contention-manager hook; the default policy
        is LogTM's timestamp scheme with a starvation-relief retry budget).
        """
        if ctx.transactional:
            self._c_stalls.add()
            fp = bool(blockers) and all(b.false_positive for b in blockers)
            via = dominant_via(b.via for b in blockers)
            if self.stats.recorder is not None:
                self.stats.emit("tm.stall", thread=ctx.thread_id,
                                blockers=len(blockers), fp=fp, via=via)
            decision = self.policy.decide(ctx, blockers, retries)
            if decision is Decision.ABORT_SELF:
                limit = self.cfg.tm.max_retries_before_abort
                if limit and retries >= limit:
                    self.stats.counter("tm.starvation_aborts").add()
                raise AbortTransaction(
                    f"contention manager ({self.policy.name})",
                    cause="conflict", fp=fp, via=via)
            if decision is Decision.ABORT_OTHERS:
                for blocker in blockers:
                    port = self.fabric.port(blocker.core_id)
                    port.mark_abort(blocker.thread_id,
                                    fp=blocker.false_positive)
        else:
            self._c_nontx_stalls.add()
        delay = self.backoff.stall_delay()
        self.stats.counter("tm.stall_cycles").add(delay)
        yield delay

    def _note_conflict(self, ctx, fp: bool, source: str = "coherence",
                       block: Optional[int] = None,
                       blockers: Optional[List[Blocker]] = None) -> None:
        """Table 3 accounting: every detected conflict, real or aliased.

        With a recorder attached, also emits a ``tm.conflict`` event naming
        the detection point (``summary``/``sibling``/``coherence``), the
        block, and the blocking threads — the raw material for
        :class:`repro.obs.analysis.ConflictGraph`.
        """
        self._c_conflicts.add()
        if fp:
            self._c_conflicts_fp.add()
        if self.stats.recorder is not None:
            self.stats.emit(
                "tm.conflict", thread=ctx.thread_id, source=source, fp=fp,
                block=block,
                blockers=tuple((b.thread_id, b.false_positive, b.via)
                               for b in blockers or ()))

    def __repr__(self) -> str:
        return f"Core({self._core_id}, slots={len(self.slots)})"
