"""Software threads and hardware thread contexts (SMT slots).

The OS schedules :class:`SoftwareThread` objects onto :class:`HardwareSlot`
contexts. Transactional state *travels with the software thread* — the log
and log filter live in per-thread virtual memory, and the signature is saved
to / restored from the log across context switches (Section 4.1). The
summary signature is *per hardware slot*, because two threads of different
processes may share a core and each needs its own process's summary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.txcontext import TxContext
from repro.mem.vm import PageTable
from repro.sim.future import Future, Signal
from repro.signatures.rwpair import PairSnapshot, ReadWriteSignature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpu.core import Core


class SoftwareThread:
    """An OS-visible thread: identity, address space, transactional state."""

    __slots__ = ("tid", "page_table", "ctx", "saved_signature", "slot",
                 "preempt_requested", "parked", "resumed", "finished")

    def __init__(self, tid: int, page_table: PageTable,
                 ctx: TxContext) -> None:
        self.tid = tid
        self.page_table = page_table
        self.ctx = ctx
        #: Signature snapshot saved to the log header while descheduled.
        self.saved_signature: Optional[PairSnapshot] = None
        #: The hardware slot currently executing this thread (None when
        #: descheduled).
        self.slot: Optional["HardwareSlot"] = None
        #: Set by the OS scheduler to request preemption; the executor
        #: honors it at the next instruction boundary.
        self.preempt_requested = False
        #: Fired by the executor once it has descheduled itself.
        self.parked = Signal(f"t{tid}.parked")
        #: Fired by the scheduler when the thread is placed on a context.
        self.resumed = Signal(f"t{tid}.resumed")
        #: Set by the executor when the thread's program completed.
        self.finished = False

    @property
    def asid(self) -> int:
        return self.page_table.asid

    @property
    def scheduled(self) -> bool:
        return self.slot is not None

    def translate(self, vaddr: int) -> int:
        return self.page_table.translate(vaddr)

    def __repr__(self) -> str:
        where = f"slot={self.slot.global_id}" if self.slot else "descheduled"
        return f"SoftwareThread(t{self.tid}, {where})"


class HardwareSlot:
    """One SMT thread context on a core."""

    __slots__ = ("core", "slot_index", "summary", "thread")

    def __init__(self, core: "Core", slot_index: int,
                 summary: ReadWriteSignature) -> None:
        self.core = core
        self.slot_index = slot_index
        #: Per-context summary signature register (Section 4.1).
        self.summary = summary
        self.thread: Optional[SoftwareThread] = None

    @property
    def global_id(self) -> int:
        return self.core.core_id * self.core.threads_per_core + self.slot_index

    @property
    def occupied(self) -> bool:
        return self.thread is not None

    @property
    def ctx(self) -> TxContext:
        if self.thread is None:
            raise RuntimeError(f"slot {self.global_id} has no thread")
        return self.thread.ctx

    def bind(self, thread: SoftwareThread) -> None:
        if self.thread is not None:
            raise RuntimeError(f"slot {self.global_id} already occupied")
        self.thread = thread
        thread.slot = self
        # The thread's accesses now check this slot's summary register.
        thread.ctx.summary = self.summary

    def unbind(self) -> SoftwareThread:
        if self.thread is None:
            raise RuntimeError(f"slot {self.global_id} is empty")
        thread, self.thread = self.thread, None
        thread.slot = None
        return thread

    def __repr__(self) -> str:
        who = f"t{self.thread.tid}" if self.thread else "idle"
        return f"HardwareSlot(core{self.core.core_id}.{self.slot_index}, {who})"
