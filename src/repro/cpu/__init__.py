"""CPU model: cores, SMT thread contexts, and the thread executor."""

from repro.cpu.core import Core
from repro.cpu.executor import ThreadExecutor
from repro.cpu.thread import HardwareSlot, SoftwareThread

__all__ = ["Core", "HardwareSlot", "SoftwareThread", "ThreadExecutor"]
