"""TM-level invariants evaluated at every explored state.

The coherence-level audits from :mod:`repro.coherence.invariants` run
unchanged — :class:`~repro.mc.model.ProtocolModel` duck-types the system
surface they expect (``cores``/``l1``/``slots``/``fabric``/``cfg``). On
top of them this module checks the LogTM-SE safety argument itself:

* **tm-isolation** — single-writer/multi-reader over *exact* read/write
  sets: no block is in one running transaction's write set and any other
  running transaction's read or write set. This is the end-to-end
  property everything else (NACKs, sticky states, scrubs) exists to
  maintain; any missed-conflict bug eventually lands here.
* **no-false-negative** — every block in an exact set is reported by the
  corresponding filter. Signatures may alias (false positives) but a
  false negative is a missed conflict (Section 2's one-sided guarantee).
* **read-coverage** — the sticky-obligation invariant, extended from the
  write-set-only coherence audit to *read* sets: every signature-covered
  block a transaction no longer caches must still be reachable by
  conflict checks (owner/sharer/sticky pointer, or a lost-info /
  check-all broadcast obligation). A write-set block that loses coverage
  breaks isolation on the next remote read; a read-set block that loses
  it breaks on the next remote *write* — which is exactly what the
  sticky-discharge and scrub rules must prevent.
* **frame-tenancy** — no L1 line outlives its physical frame: a resident
  line whose fill-time tenancy generation differs from the frame's
  current generation is a stale copy from a previous tenant, and a local
  hit on it would read or write the new tenant's data with no coherence
  request (the Section 4.2 paging hazard).

Two more invariants — log-restorable abort and write-set log coverage —
are transition-scoped (they can only be judged while an abort executes)
and live in :meth:`ProtocolModel.apply` as
:class:`~repro.mc.model.TransitionViolation`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.coherence.invariants import (
    InvariantViolation, _directory_covers, check_cache_invariants,
    check_directory_accuracy, check_isolation_coverage,
    check_tm_bookkeeping)
from repro.mc.model import ProtocolModel


def check_tm_isolation(model: ProtocolModel) -> None:
    """Single-writer/multi-reader over exact transactional footprints."""
    running = [ctx for ctx in model.contexts if ctx.in_tx]
    for i, a in enumerate(running):
        writes = a.signature.write.exact_set()
        if not writes:
            continue
        for b in running[i + 1:]:
            for addr in sorted(writes & (b.signature.read.exact_set()
                                         | b.signature.write.exact_set())):
                raise InvariantViolation(
                    f"isolation lost on block {addr:#x}: t{a.thread_id} "
                    f"has it in its write set while t{b.thread_id} has it "
                    "in its read/write set")
            for addr in sorted(b.signature.write.exact_set()
                               & a.signature.read.exact_set()):
                raise InvariantViolation(
                    f"isolation lost on block {addr:#x}: t{b.thread_id} "
                    f"has it in its write set while t{a.thread_id} has it "
                    "in its read set")


def check_no_false_negative(model: ProtocolModel) -> None:
    """Filters must report every exact-set member (Section 2)."""
    for ctx in model.contexts:
        for half, name in ((ctx.signature.read, "read"),
                           (ctx.signature.write, "write")):
            for addr in sorted(half.exact_set()):
                if not half.contains(addr):
                    raise InvariantViolation(
                        f"t{ctx.thread_id}'s {name} filter denies "
                        f"{addr:#x}, which is in its exact {name} set — "
                        "a signature false negative")


def check_read_coverage(model: ProtocolModel) -> None:
    """Sticky-obligation coverage for the *full* signature footprint."""
    for core in model.cores:
        for slot in core.slots:
            ctx = slot.thread.ctx
            if not ctx.in_tx:
                continue
            covered = (ctx.signature.read.exact_set()
                       | ctx.signature.write.exact_set())
            for addr in sorted(covered):
                if core.l1.peek(addr) is not None:
                    continue
                if _directory_covers(model, addr, core.core_id):
                    continue
                kind = ("write" if
                        ctx.signature.write.contains_exact(addr)
                        else "read")
                raise InvariantViolation(
                    f"t{ctx.thread_id}'s {kind}-set block {addr:#x} is "
                    "neither cached nor covered by any directory "
                    "pointer/obligation — a conflicting request would "
                    "never reach its signature")


def check_frame_tenancy(model: ProtocolModel) -> None:
    """No cached line may survive its frame's reuse."""
    for core in model.cores:
        for block in core.l1.resident_blocks():
            b = model._block_index[block.addr]
            line_gen = core.l1.line_tenancy[block.addr]
            if line_gen != model.tenancy[b]:
                raise InvariantViolation(
                    f"core {core.core_id} still caches {block.addr:#x} "
                    f"({block.state.value}) from frame tenancy "
                    f"{line_gen}, but the frame was reused (now tenancy "
                    f"{model.tenancy[b]}) — a local hit reads the new "
                    "tenant's data with no coherence request")


#: Every state-shaped invariant, in evaluation order. The coherence-level
#: audits run first (they localize lower-level corruption); the TM-level
#: audits catch the end-to-end failures. Names are what counterexamples
#: and ``--json`` report.
INVARIANTS: List[Tuple[str, Callable[[ProtocolModel], object]]] = [
    ("cache-mesi", check_cache_invariants),
    ("directory-accuracy", check_directory_accuracy),
    ("write-coverage", check_isolation_coverage),
    ("tm-bookkeeping", check_tm_bookkeeping),
    ("tm-isolation", check_tm_isolation),
    ("no-false-negative", check_no_false_negative),
    ("read-coverage", check_read_coverage),
    ("frame-tenancy", check_frame_tenancy),
]


def violated_invariant(model: ProtocolModel
                       ) -> Optional[Tuple[str, str]]:
    """First violated invariant as ``(name, message)``, or None."""
    for name, check in INVARIANTS:
        try:
            check(model)
        except InvariantViolation as exc:
            return name, str(exc)
    return None
