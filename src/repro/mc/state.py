"""Symmetry reduction for the model checker.

Core identities and block addresses are interchangeable in every protocol
rule: the directory never branches on *which* core is the owner, only on
the role relationships (owner vs. sharer vs. sticky vs. requester), and
block addresses only select directory entries. Two states that differ
only by a permutation of cores and/or blocks therefore have isomorphic
futures, and the checker needs to explore just one representative — the
classic scalarset argument from Murphi.

The canonical form of a state is the lexicographic minimum of its
encoding over the full symmetry group. For the multichip fabric the core
permutations must preserve the core->chip partition (cores on different
chips are *not* interchangeable with arbitrary relabeling — chip
boundaries are architectural), so the group is (chip permutations) x
(per-chip local core permutations) x (block permutations).

With 1-2 contexts per core, permuting a core carries its thread contexts
along (context k of core i maps to context k of core sigma(i)); the
encoding is indexed by core, so this falls out of the core map for free.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Optional, Tuple

from repro.mc.model import ModelConfig, ProtocolModel

#: One symmetry-group element: (core_map, block_map, chip_map_or_None),
#: each mapping old index -> new index.
SymmetryMap = Tuple[Tuple[int, ...], Tuple[int, ...],
                    Optional[Tuple[int, ...]]]


def symmetry_maps(mcfg: ModelConfig) -> List[SymmetryMap]:
    """Enumerate the full symmetry group for a configuration.

    Sizes stay tiny for model-scale configs: 3 cores x 3 blocks is
    6 x 6 = 36 group elements; multichip 2x2 cores / 2 blocks is
    2 (chip) x 2 x 2 (local) x 2 (block) = 16.
    """
    block_maps = list(permutations(range(mcfg.blocks)))
    maps: List[SymmetryMap] = []
    if mcfg.fabric == "multichip":
        local = list(permutations(range(mcfg.cores)))
        for chip_perm in permutations(range(mcfg.chips)):
            # One independent local-core permutation per (source) chip.
            for locals_choice in _product(local, mcfg.chips):
                core_map = [0] * (mcfg.cores * mcfg.chips)
                for chip in range(mcfg.chips):
                    for c in range(mcfg.cores):
                        core_map[chip * mcfg.cores + c] = (
                            chip_perm[chip] * mcfg.cores
                            + locals_choice[chip][c])
                for bm in block_maps:
                    maps.append((tuple(core_map), bm, chip_perm))
    else:
        for cm in permutations(range(mcfg.cores)):
            for bm in block_maps:
                maps.append((cm, bm, None))
    return maps


def _product(options: List[Tuple[int, ...]], repeat: int
             ) -> List[Tuple[Tuple[int, ...], ...]]:
    """itertools.product(options, repeat=...) in deterministic list form."""
    out: List[Tuple[Tuple[int, ...], ...]] = [()]
    for _ in range(repeat):
        out = [prefix + (opt,) for prefix in out for opt in options]
    return out


def canonical_key(model: ProtocolModel, maps: List[SymmetryMap]) -> Tuple:
    """Minimum encoding of the model's current state over the group.

    The encoded tuples contain only ints, bools, strings, nested tuples
    and None in structurally identical positions, so Python's tuple
    comparison gives a well-defined total order... except where ``None``
    (an absent L1 line or directory entry) meets a present tuple. To keep
    ``min`` total we compare via a sort key that replaces the values with
    their ``repr``-free orderable form: the encodings are canonicalized
    through :func:`_orderable` first.
    """
    return min((model.encode(cm, bm, xm) for cm, bm, xm in maps),
               key=_orderable)


def _orderable(value):
    """Map an encoded state to a same-shape structure with a total order.

    Leaves become ``(type_rank, value)`` pairs so mixed leaf types (None
    vs. tuple vs. int vs. str) in the same position never raise
    TypeError in comparisons.
    """
    if isinstance(value, tuple):
        return (3, tuple(_orderable(v) for v in value))
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, int):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    raise TypeError(f"unencodable leaf in model state: {value!r}")
