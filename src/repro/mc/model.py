"""Finite protocol model for bounded exhaustive checking (``repro mc``).

The model drives the *real* coherence fabrics — :class:`DirectoryFabric`,
:class:`SnoopingFabric`, :class:`MultiChipFabric` — composed with real
signatures, real :class:`TxContext` bookkeeping, and the real
:class:`UndoLog`, but replaces the CPU/executor/simulator stack with a
deterministic transition function over a tiny configuration (2-3 cores,
2-4 blocks, 1-2 contexts per core). Each transition is one *atomic*
protocol step:

* a transactional or plain read/write by one thread context (the mirror
  of ``Core._access`` steps 3-5: sibling check, L1 hit with silent E->M
  upgrade, or a coherence request run to completion),
* begin / commit / abort of a transaction,
* an L1 or L2 victimization (capacity pressure made nondeterministic),
* a physical-frame scrub + reuse (the paging hazard of Section 4.2).

Because every coherence transaction in this codebase holds its entry lock
from request to completion (DESIGN.md §5's blocking simplification),
whole-request granularity explores exactly the serializations the
simulator can produce; latencies are irrelevant to reachability and are
discarded while draining the request generator.

The model's state is fully captured by :meth:`ProtocolModel.encode` — a
canonical, hashable tuple — and any encoded state can be re-installed
with :meth:`ProtocolModel.decode`, which is what lets the checker in
:mod:`repro.mc.checker` run a Murphi-style BFS over one live model
instance instead of deep-copying machines.

Functional values are abstracted to a tiny modular counter per block
(writes bump the value mod ``value_mod``), which keeps the state space
finite while making undo-log restoration observable. Frame reuse bumps a
per-block *tenancy* generation; a cached line remembers the generation it
was filled under, so a line that survives a scrub is statically visible
as stale (the PR-3 frame-reuse bug).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.block import CacheBlock, MESI
from repro.coherence.directory import DirectoryFabric
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.msgs import Blocker, ConflictPort, Timestamp
from repro.coherence.multichip import MultiChipFabric
from repro.coherence.snooping import SnoopingFabric
from repro.common.config import (CoherenceStyle, SignatureKind, SystemConfig)
from repro.common.errors import ConfigError, SimulationError
from repro.common.stats import StatsRegistry
from repro.core.txcontext import TxContext
from repro.core.undolog import UndoRecord
from repro.interconnect.network import Network
from repro.interconnect.topology import GridTopology
from repro.mem.physical import PhysicalMemory
from repro.signatures.factory import make_rw_pair

#: Fabric names accepted by :class:`ModelConfig`.
FABRICS = ("directory", "snooping", "multichip")

#: Action opcodes (first element of every action tuple).
OPS = ("begin", "read", "write", "commit", "abort", "evict", "l2_evict",
       "reuse")

#: One transition: ("read", tid, block_index), ("evict", core_id,
#: block_index), ("l2_evict", chip, block_index), ("reuse", block_index),
#: or ("begin"|"commit"|"abort", tid).
Action = Tuple


def action_to_dict(action: Action) -> Dict[str, object]:
    """JSON-friendly rendering of one action tuple."""
    op = action[0]
    if op in ("begin", "commit", "abort"):
        return {"op": op, "thread": action[1]}
    if op in ("read", "write"):
        return {"op": op, "thread": action[1], "block": action[2]}
    if op == "evict":
        return {"op": op, "core": action[1], "block": action[2]}
    if op == "l2_evict":
        return {"op": op, "chip": action[1], "block": action[2]}
    if op == "reuse":
        return {"op": op, "block": action[1]}
    raise ConfigError(f"unknown action {action!r}")


def action_from_dict(data: Dict[str, object]) -> Action:
    """Inverse of :func:`action_to_dict` (replay of dumped traces)."""
    op = data["op"]
    if op in ("begin", "commit", "abort"):
        return (op, data["thread"])
    if op in ("read", "write"):
        return (op, data["thread"], data["block"])
    if op == "evict":
        return (op, data["core"], data["block"])
    if op == "l2_evict":
        return (op, data["chip"], data["block"])
    if op == "reuse":
        return (op, data["block"])
    raise ConfigError(f"unknown action {data!r}")


def format_action(action: Action) -> str:
    """Human-readable rendering, e.g. ``write t1 B0`` or ``reuse B1``."""
    op = action[0]
    if op in ("begin", "commit", "abort"):
        return f"{op} t{action[1]}"
    if op in ("read", "write"):
        return f"{op} t{action[1]} B{action[2]}"
    if op == "evict":
        return f"evict core{action[1]} B{action[2]}"
    if op == "l2_evict":
        return f"l2_evict chip{action[1]} B{action[2]}"
    return f"reuse B{action[1]}"


@dataclass(frozen=True)
class ModelConfig:
    """Shape of one model-checking configuration.

    ``cores`` is per chip (``chips`` matters only for the multichip
    fabric). ``value_mod`` bounds the abstract per-block value domain;
    2 is enough to make undo-log restoration observable. The
    ``allow_nontx`` / ``enable_*`` switches prune whole transition
    families to trade coverage for state count.
    """

    fabric: str = "directory"
    cores: int = 2
    blocks: int = 2
    contexts_per_core: int = 1
    chips: int = 2
    signature: SignatureKind = SignatureKind.PERFECT
    signature_bits: int = 64
    value_mod: int = 2
    allow_nontx: bool = True
    enable_evict: bool = True
    enable_l2_evict: bool = True
    enable_reuse: bool = True
    mutation: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fabric not in FABRICS:
            raise ConfigError(
                f"fabric must be one of {FABRICS}, got {self.fabric!r}")
        if not 1 <= self.cores <= 4:
            raise ConfigError("model cores must be 1..4")
        if not 1 <= self.blocks <= 4:
            raise ConfigError("model blocks must be 1..4")
        if not 1 <= self.contexts_per_core <= 2:
            raise ConfigError("model contexts_per_core must be 1 or 2")
        if not 2 <= self.chips <= 3:
            raise ConfigError("model chips must be 2 or 3")
        if self.value_mod < 2:
            raise ConfigError("value_mod must be >= 2")

    @property
    def total_cores(self) -> int:
        return self.cores * (self.chips if self.fabric == "multichip" else 1)

    @property
    def total_contexts(self) -> int:
        return self.total_cores * self.contexts_per_core

    def describe(self) -> str:
        chips = f"{self.chips}x" if self.fabric == "multichip" else ""
        mut = f" +{self.mutation}" if self.mutation else ""
        return (f"{self.fabric} {chips}{self.cores}c/{self.blocks}b/"
                f"{self.contexts_per_core}ctx "
                f"{self.signature.value}{mut}")

    def to_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["signature"] = self.signature.value
        return out


class ModelL1:
    """Tags-only L1 for one model core.

    Duck-types the slice of :class:`repro.cache.array.CacheArray` that the
    fabrics and :mod:`repro.coherence.invariants` use (``peek``,
    ``resident_blocks``, ``invalidate``), with no capacity limit —
    victimization is an explicit model transition instead of an LRU
    side effect, so the checker can explore an eviction at *any* point.
    Each line also remembers the frame-tenancy generation it was filled
    under (see :class:`ProtocolModel`).
    """

    def __init__(self) -> None:
        self._lines: Dict[int, CacheBlock] = {}
        self.line_tenancy: Dict[int, int] = {}

    def peek(self, block_addr: int) -> Optional[CacheBlock]:
        return self._lines.get(block_addr)

    def lookup(self, block_addr: int) -> Optional[CacheBlock]:
        return self._lines.get(block_addr)

    def resident_blocks(self) -> Iterator[CacheBlock]:
        for addr in sorted(self._lines):
            yield self._lines[addr]

    def install(self, block_addr: int, state: MESI, tenancy: int
                ) -> CacheBlock:
        block = CacheBlock(block_addr, state)
        self._lines[block_addr] = block
        self.line_tenancy[block_addr] = tenancy
        return block

    def invalidate(self, block_addr: int) -> Optional[CacheBlock]:
        self.line_tenancy.pop(block_addr, None)
        return self._lines.pop(block_addr, None)

    def clear(self) -> None:
        self._lines.clear()
        self.line_tenancy.clear()


class _ModelThread:
    """Thread shim: just enough of ``SoftwareThread`` for ports/invariants."""

    __slots__ = ("tid", "asid", "ctx")

    def __init__(self, tid: int, ctx: TxContext) -> None:
        self.tid = tid
        self.asid = 0
        self.ctx = ctx

    def translate(self, vaddr: int) -> int:
        return vaddr  # flat address space: virtual == physical


class _ModelSlot:
    """Slot shim: one always-scheduled hardware context."""

    __slots__ = ("thread", "summary")

    def __init__(self, thread: _ModelThread) -> None:
        self.thread = thread
        self.summary = None  # no descheduling in the model


class ModelPort(ConflictPort):
    """One model core: L1 + thread contexts, answering fabric checks.

    The conflict-check semantics mirror ``Core.check_conflicts`` exactly
    (eager detection, per-context signature tests, requester exclusion);
    the access path lives on :class:`ProtocolModel` because it needs the
    global memory/tenancy state.
    """

    def __init__(self, core_id: int, slots: List[_ModelSlot]) -> None:
        self._core_id = core_id
        self.l1 = ModelL1()
        self.slots = slots

    @property
    def core_id(self) -> int:
        return self._core_id

    def check_conflicts(self, block_addr: int, is_write: bool,
                        exclude_thread: Optional[int], asid: int,
                        requester_ts: Optional[Timestamp]) -> List[Blocker]:
        blockers: List[Blocker] = []
        for slot in self.slots:
            thread = slot.thread
            if thread.tid == exclude_thread:
                continue
            ctx = thread.ctx
            if ctx.signature.conflicts(is_write, block_addr):
                fp = ctx.signature.conflict_is_false_positive(
                    is_write, block_addr)
                blockers.append(Blocker(self._core_id, thread.tid,
                                        ctx.timestamp, fp))
        return blockers

    def invalidate_block(self, block_addr: int) -> bool:
        return self.l1.invalidate(block_addr) is not None

    def downgrade_block(self, block_addr: int) -> bool:
        block = self.l1.peek(block_addr)
        if block is not None and block.state.is_exclusive:
            block.state = MESI.SHARED
            return True
        return False

    def holds_transactional(self, block_addr: int) -> bool:
        for slot in self.slots:
            sig = slot.thread.ctx.signature
            if sig.read.contains(block_addr) or \
                    sig.write.contains(block_addr):
                return True
        return False


def _drain(gen):
    """Run a coherence-request generator to completion, discarding time.

    The model serializes whole requests, so every ``SimLock`` is free and
    the generator only ever yields integer latencies; a yielded Future
    would mean a contended lock, which is a model bug worth failing on.
    """
    while True:
        try:
            step = gen.send(None)
        except StopIteration as stop:
            return stop.value
        if not isinstance(step, (int, float)):
            raise SimulationError(
                f"model request stalled on {step!r}; requests must run "
                "uncontended")


class TransitionViolation(Exception):
    """An invariant that can only be judged *during* a transition failed
    (undo-log restoration, write-set log coverage)."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(message)
        self.invariant = invariant


class ProtocolModel:
    """The live model: real fabric + model ports + abstract memory."""

    def __init__(self, mcfg: ModelConfig) -> None:
        self.mcfg = mcfg
        self.cfg = self._system_config(mcfg)
        self.stats = StatsRegistry()
        self.block_addrs = [i * self.cfg.block_bytes
                            for i in range(mcfg.blocks)]
        self._block_index = {addr: i
                             for i, addr in enumerate(self.block_addrs)}
        self.memory = PhysicalMemory(capacity_bytes=self.cfg.memory_bytes)
        #: Per-block frame-tenancy generation, bumped by ``reuse``.
        self.tenancy = [0] * mcfg.blocks
        self.fabric = self._build_fabric()
        self.contexts: List[TxContext] = []
        self.cores: List[ModelPort] = []
        for core_id in range(mcfg.total_cores):
            slots = []
            for slot_idx in range(mcfg.contexts_per_core):
                tid = core_id * mcfg.contexts_per_core + slot_idx
                ctx = TxContext(
                    thread_id=tid,
                    signature=make_rw_pair(self.cfg.tm.signature,
                                           self.cfg.block_bytes),
                    summary=make_rw_pair(self.cfg.tm.signature,
                                         self.cfg.block_bytes),
                    stats=self.stats,
                    block_bytes=self.cfg.block_bytes,
                    log_filter_entries=self.cfg.tm.log_filter_entries)
                self.contexts.append(ctx)
                slots.append(_ModelSlot(_ModelThread(tid, ctx)))
            port = ModelPort(core_id, slots)
            self.cores.append(port)
            self.fabric.attach(port)
        if mcfg.mutation is not None:
            from repro.verify.faults import apply_protocol_mutation
            apply_protocol_mutation(self.fabric, mcfg.mutation)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _system_config(mcfg: ModelConfig) -> SystemConfig:
        if mcfg.fabric == "multichip":
            base = SystemConfig.multichip(
                num_chips=mcfg.chips, cores_per_chip=mcfg.cores,
                threads_per_core=mcfg.contexts_per_core)
        else:
            base = SystemConfig.small(
                num_cores=mcfg.cores,
                threads_per_core=mcfg.contexts_per_core)
            if mcfg.fabric == "snooping":
                base = dataclasses.replace(
                    base, coherence=CoherenceStyle.SNOOPING)
        return base.with_signature(mcfg.signature,
                                   bits=mcfg.signature_bits)

    def _build_fabric(self) -> CoherenceFabric:
        cfg = self.cfg
        topology = GridTopology(*cfg.mesh_dims, cfg.num_cores, cfg.l2_banks)
        network = Network(topology, cfg.link_latency, self.stats)
        if self.mcfg.fabric == "multichip":
            networks = [network] + [
                Network(topology, cfg.link_latency, self.stats)
                for _ in range(cfg.num_chips - 1)]
            return MultiChipFabric(cfg, networks, self.stats)
        if self.mcfg.fabric == "snooping":
            return SnoopingFabric(cfg, network, self.stats)
        return DirectoryFabric(cfg, network, self.stats)

    # ------------------------------------------------------------------
    # Action enumeration
    # ------------------------------------------------------------------

    def actions(self) -> List[Action]:
        """Transitions enabled in the current state, in deterministic
        order. Guards are *structural* (is a line resident, is the thread
        in a transaction); whether an access actually changes state (it
        may be NACKed) is discovered by applying it."""
        mcfg = self.mcfg
        out: List[Action] = []
        for ctx in self.contexts:
            tid = ctx.thread_id
            if ctx.in_tx:
                out.append(("commit", tid))
                out.append(("abort", tid))
            else:
                out.append(("begin", tid))
            if ctx.in_tx or mcfg.allow_nontx:
                for b in range(mcfg.blocks):
                    out.append(("read", tid, b))
                    out.append(("write", tid, b))
        if mcfg.enable_evict:
            for core in self.cores:
                for b in range(mcfg.blocks):
                    if core.l1.peek(self.block_addrs[b]) is not None:
                        out.append(("evict", core.core_id, b))
        if mcfg.enable_l2_evict:
            out.extend(self._l2_evict_actions())
        if mcfg.enable_reuse:
            for b in range(mcfg.blocks):
                if not self._block_in_write_set(b):
                    out.append(("reuse", b))
        return out

    def _l2_evict_actions(self) -> List[Action]:
        out: List[Action] = []
        if isinstance(self.fabric, DirectoryFabric):
            for b in range(self.mcfg.blocks):
                if self.fabric.l2.peek(self.block_addrs[b]) is not None:
                    out.append(("l2_evict", 0, b))
        elif isinstance(self.fabric, MultiChipFabric):
            for chip in range(self.cfg.num_chips):
                for b in range(self.mcfg.blocks):
                    if self.fabric.l2s[chip].peek(
                            self.block_addrs[b]) is not None:
                        out.append(("l2_evict", chip, b))
        # Snooping: L2 residency is behaviorally inert (latency only), so
        # there is nothing to explore.
        return out

    def _block_in_write_set(self, b: int) -> bool:
        """Reuse guard: freeing a frame some transaction would restore
        into on abort is an OS bug, not a protocol state to explore."""
        addr = self.block_addrs[b]
        return any(ctx.in_tx
                   and ctx.signature.write.contains_exact(addr)
                   for ctx in self.contexts)

    # ------------------------------------------------------------------
    # Transition application
    # ------------------------------------------------------------------

    def apply(self, action: Action) -> None:
        """Execute one transition on the live state.

        Raises :class:`TransitionViolation` for invariants only judgeable
        mid-transition. State-shaped invariants are the checker's job.
        """
        op = action[0]
        if op == "begin":
            self._do_begin(action[1])
        elif op in ("read", "write"):
            self._do_access(action[1], action[2], is_write=(op == "write"))
        elif op == "commit":
            self._do_commit(action[1])
        elif op == "abort":
            self._do_abort(action[1])
        elif op == "evict":
            self._do_evict(action[1], action[2])
        elif op == "l2_evict":
            self._do_l2_evict(action[1], action[2])
        elif op == "reuse":
            self._do_reuse(action[1])
        else:
            raise ConfigError(f"unknown action {action!r}")

    def _core_of(self, tid: int) -> ModelPort:
        return self.cores[tid // self.mcfg.contexts_per_core]

    def _do_begin(self, tid: int) -> None:
        self.contexts[tid].begin(now=0)
        if self.stats.recorder is not None:
            self.stats.emit("tm.begin", thread=tid, depth=1)

    def _do_commit(self, tid: int) -> None:
        self.contexts[tid].commit()
        if self.stats.recorder is not None:
            self.stats.emit("tm.commit", thread=tid, outer=True)

    def _do_abort(self, tid: int) -> None:
        """Abort with an on-the-fly check that the undo log restores the
        exact pre-transaction memory image (the paper's eager-versioning
        guarantee: "abort restores through the current translation")."""
        ctx = self.contexts[tid]
        logged: Dict[int, int] = {}
        for frame in ctx.log._frames:
            for record in frame.records:
                # Earliest record per block wins: that is the value the
                # LIFO unroll must land on.
                logged.setdefault(record.vblock,
                                  record.old_words[record.vblock])
        missing = [f"B{self._block_index[a]}"
                   for a in sorted(ctx.signature.write.exact_set())
                   if a not in logged]
        if missing:
            raise TransitionViolation(
                "log-write-coverage",
                f"t{tid} aborts with write-set blocks "
                f"{', '.join(missing)} never undo-logged — the abort "
                "cannot restore them")
        ctx.abort_all(self.memory, lambda v: v)
        for addr, expected in sorted(logged.items()):
            actual = self.memory.load(addr)
            if actual != expected:
                raise TransitionViolation(
                    "log-restore",
                    f"t{tid}'s abort left B{self._block_index[addr]} = "
                    f"{actual}, undo log says pre-tx value was {expected}")
        if self.stats.recorder is not None:
            self.stats.emit("tm.abort", thread=tid, outer=True,
                            cause="model")

    def _do_access(self, tid: int, b: int, is_write: bool) -> None:
        """Mirror of ``Core._access`` steps 2-5 at whole-request
        granularity (no summary signatures: the model never deschedules).
        A sibling conflict or a NACK leaves the state unchanged — the
        checker discards the self-loop."""
        ctx = self.contexts[tid]
        core = self._core_of(tid)
        addr = self.block_addrs[b]
        in_tx = ctx.transactional
        # (2) SMT sibling signatures.
        for slot in core.slots:
            other = slot.thread
            if other.tid != tid and \
                    other.ctx.signature.conflicts(is_write, addr):
                return  # blocked at issue; no state change
        line = core.l1.peek(addr)
        if line is not None and (line.state.can_write if is_write
                                 else line.state.can_read):
            # (3) L1 hit. Writes to an E line upgrade silently — no
            # coherence request, no remote signature check; exactly the
            # path the E-grant rules must keep safe.
            if in_tx:
                self._insert_signature(ctx, addr, is_write)
            if is_write and line.state is MESI.EXCLUSIVE:
                line.state = MESI.MODIFIED
        else:
            # (4) Coherence request, run to completion.
            ts = ctx.timestamp if ctx.in_tx else None
            result = _drain(self.fabric.request(
                core.core_id, tid, ts, addr, is_write, asid=0))
            if not result.granted:
                return  # NACK: retry is a different interleaving
            state = result.grant_state
            if is_write and state is MESI.EXCLUSIVE:
                state = MESI.MODIFIED
            core.l1.install(addr, state, self.tenancy[b])
            if in_tx:
                self._insert_signature(ctx, addr, is_write)
        # (5) Version management + the functional access.
        if is_write:
            if in_tx and ctx.log_filter.should_log(addr):
                ctx.log.append(addr, self.memory, lambda v: v)
            old = self.memory.load(addr)
            self.memory.store(addr, (old + 1) % self.mcfg.value_mod)
            value = (old + 1) % self.mcfg.value_mod
        else:
            value = self.memory.load(addr)
        if self.stats.recorder is not None:
            self.stats.emit("tm.access", thread=tid, vaddr=addr, block=addr,
                            write=is_write, value=value, tx=in_tx,
                            in_tx=ctx.in_tx, asid=0)

    @staticmethod
    def _insert_signature(ctx: TxContext, addr: int, is_write: bool) -> None:
        """Idempotent signature insert.

        Guarding on the exact shadow set keeps every filter's internal
        state a pure function of the exact set (one insert per member),
        which is what makes signatures reconstructible in ``decode``.
        """
        if is_write:
            if not ctx.signature.write.contains_exact(addr):
                ctx.signature.insert_write(addr)
        else:
            if not ctx.signature.read.contains_exact(addr):
                ctx.signature.insert_read(addr)

    def _do_evict(self, core_id: int, b: int) -> None:
        """L1 victimization, mirroring ``Core._install``'s victim path."""
        core = self.cores[core_id]
        addr = self.block_addrs[b]
        line = core.l1.peek(addr)
        if line is None:
            raise SimulationError(f"evict of non-resident block B{b}")
        transactional = core.holds_transactional(addr)
        state = line.state
        core.l1.invalidate(addr)
        self.fabric.l1_evicted(core_id, addr, state, transactional)

    def _do_l2_evict(self, chip: int, b: int) -> None:
        """Shared-L2 victimization: the lost-directory-info / sticky-M
        paths of Sections 5 and 7. Uses the fabrics' internal
        victimization handlers, which the capacity-driven path also
        calls — the model only makes *when* nondeterministic."""
        addr = self.block_addrs[b]
        if isinstance(self.fabric, DirectoryFabric):
            if self.fabric.l2.invalidate(addr) is None:
                raise SimulationError(f"l2_evict of non-resident B{b}")
            self.fabric._l2_victimized(addr)
        elif isinstance(self.fabric, MultiChipFabric):
            if self.fabric.l2s[chip].invalidate(addr) is None:
                raise SimulationError(f"l2_evict of non-resident B{b}")
            self.fabric._chip_l2_victimized(chip, addr)
        else:
            raise SimulationError("l2_evict is undefined for snooping")

    def _do_reuse(self, b: int) -> None:
        """Scrub + frame reuse: the OS frees the frame and hands it to a
        new tenant (fresh value, next tenancy generation)."""
        addr = self.block_addrs[b]
        self.fabric.scrub_block(addr)
        self.tenancy[b] = (self.tenancy[b] + 1) % 2
        self.memory.store(addr, 0)
        if self.stats.recorder is not None:
            self.stats.emit("os.frame_reuse", block=addr,
                            tenancy=self.tenancy[b])

    # ------------------------------------------------------------------
    # State encoding
    # ------------------------------------------------------------------

    def encode(self, core_map: Optional[Tuple[int, ...]] = None,
               block_map: Optional[Tuple[int, ...]] = None,
               chip_map: Optional[Tuple[int, ...]] = None) -> Tuple:
        """Canonical hashable snapshot of all behavior-relevant state.

        ``core_map``/``block_map``/``chip_map`` relabel identities on the
        way out (``map[old] = new``); the identity maps give the *raw*
        encoding that :meth:`decode` accepts. Observability state
        (counters, possible_cycle, LRU clocks) is deliberately excluded:
        it never feeds back into protocol decisions.
        """
        mcfg = self.mcfg
        cm = core_map or tuple(range(mcfg.total_cores))
        bm = block_map or tuple(range(mcfg.blocks))

        mem = [0] * mcfg.blocks
        ten = [0] * mcfg.blocks
        for b, addr in enumerate(self.block_addrs):
            mem[bm[b]] = self.memory.load(addr)
            ten[bm[b]] = self.tenancy[b]

        lines: List[Optional[Tuple]] = [None] * mcfg.total_cores
        ctxs: List[Optional[Tuple]] = [None] * mcfg.total_cores
        for core in self.cores:
            row: List[Optional[Tuple[str, int]]] = [None] * mcfg.blocks
            for b, addr in enumerate(self.block_addrs):
                block = core.l1.peek(addr)
                if block is not None:
                    row[bm[b]] = (block.state.value,
                                  core.l1.line_tenancy[addr])
            lines[cm[core.core_id]] = tuple(row)
            slot_rows = []
            for slot in core.slots:
                ctx = slot.thread.ctx
                rs = tuple(sorted(bm[self._block_index[a]]
                                  for a in ctx.signature.read.exact_set()
                                  if a in self._block_index))
                ws = tuple(sorted(bm[self._block_index[a]]
                                  for a in ctx.signature.write.exact_set()
                                  if a in self._block_index))
                log = tuple(
                    (bm[self._block_index[rec.vblock]],
                     rec.old_words[rec.vblock])
                    for frame in ctx.log._frames
                    for rec in frame.records)
                slot_rows.append((ctx.log.depth, rs, ws, log))
            ctxs[cm[core.core_id]] = tuple(slot_rows)

        return (tuple(mem), tuple(ten), tuple(lines), tuple(ctxs),
                self._encode_fabric(cm, bm, chip_map))

    def _encode_fabric(self, cm: Tuple[int, ...], bm: Tuple[int, ...],
                       chip_map: Optional[Tuple[int, ...]]) -> Tuple:
        mcfg = self.mcfg
        if isinstance(self.fabric, DirectoryFabric):
            entries: List[Optional[Tuple]] = [None] * mcfg.blocks
            l2 = [False] * mcfg.blocks
            for b, addr in enumerate(self.block_addrs):
                e = self.fabric.entry_view(addr)
                entries[bm[b]] = (
                    -1 if e.owner is None else cm[e.owner],
                    tuple(sorted(cm[c] for c in e.sharers)),
                    tuple(sorted(cm[c] for c in e.sticky)),
                    e.lost_info, e.must_check_all)
                l2[bm[b]] = self.fabric.l2.peek(addr) is not None
            return ("dir", tuple(entries), tuple(l2))
        if isinstance(self.fabric, SnoopingFabric):
            entries = [None] * mcfg.blocks
            for b, addr in enumerate(self.block_addrs):
                owner = self.fabric._owner.get(addr)
                sharers = self.fabric._sharers.get(addr, set())
                entries[bm[b]] = (
                    -1 if owner is None else cm[owner],
                    tuple(sorted(cm[c] for c in sharers)))
            return ("snoop", tuple(entries))
        fabric = self.fabric
        assert isinstance(fabric, MultiChipFabric)
        xm = chip_map or tuple(range(self.cfg.num_chips))
        chips: List[Optional[Tuple]] = [None] * self.cfg.num_chips
        for chip in range(self.cfg.num_chips):
            rows: List[Optional[Tuple]] = [None] * mcfg.blocks
            l2 = [False] * mcfg.blocks
            for b, addr in enumerate(self.block_addrs):
                e = fabric.chip_entry_view(chip, addr)
                rows[bm[b]] = (
                    e.rights,
                    -1 if e.owner is None else cm[e.owner],
                    tuple(sorted(cm[c] for c in e.sharers)),
                    tuple(sorted(cm[c] for c in e.sticky)))
                l2[bm[b]] = fabric.l2s[chip].peek(addr) is not None
            chips[xm[chip]] = (tuple(rows), tuple(l2))
        mems: List[Optional[Tuple]] = [None] * mcfg.blocks
        for b, addr in enumerate(self.block_addrs):
            m = fabric.mem_entry_view(addr)
            mems[bm[b]] = (
                -1 if m.owner_chip is None else xm[m.owner_chip],
                tuple(sorted(xm[c] for c in m.sharer_chips)),
                tuple(sorted(xm[c] for c in m.sticky_chips)))
        return ("multichip", tuple(chips), tuple(mems))

    # ------------------------------------------------------------------
    # State decoding
    # ------------------------------------------------------------------

    def decode(self, state: Tuple) -> None:
        """Re-install a raw (identity-mapped) encoded state."""
        mcfg = self.mcfg
        mem, ten, lines, ctxs, fabric_state = state
        for b, addr in enumerate(self.block_addrs):
            self.memory.store(addr, mem[b])
            self.tenancy[b] = ten[b]
        for core in self.cores:
            core.l1.clear()
            row = lines[core.core_id]
            for b, cell in enumerate(row):
                if cell is not None:
                    state_char, tenancy = cell
                    core.l1.install(self.block_addrs[b], MESI(state_char),
                                    tenancy)
            for slot, slot_state in zip(core.slots, ctxs[core.core_id]):
                self._decode_ctx(slot.thread.ctx, slot_state)
        self._decode_fabric(fabric_state)

    def _decode_ctx(self, ctx: TxContext, slot_state: Tuple) -> None:
        depth, rs, ws, log = slot_state
        ctx.signature.clear()
        for b in rs:
            ctx.signature.insert_read(self.block_addrs[b])
        for b in ws:
            ctx.signature.insert_write(self.block_addrs[b])
        ctx.log.reset()
        ctx.log_filter.clear()
        if depth:
            ctx.log.push_frame(checkpoint=None)
            for b, old in log:
                addr = self.block_addrs[b]
                old_words = {addr + off: (old if off == 0 else 0)
                             for off in range(0, self.cfg.block_bytes, 8)}
                ctx.log.current.records.append(
                    UndoRecord(vblock=addr, old_words=old_words))
                ctx.log.appended += 1
                ctx.log_filter.should_log(addr)
            ctx.timestamp = (0, ctx.thread_id)
        else:
            ctx.timestamp = None
        ctx.possible_cycle = False
        ctx.pending_abort = False
        ctx.pending_abort_fp = False
        ctx.aborted_by_os = False
        ctx.needs_summary_recompute = False
        ctx.escape_depth = 0
        ctx.write_buffer.clear()

    def _decode_fabric(self, fabric_state: Tuple) -> None:
        tag = fabric_state[0]
        if tag == "dir":
            fabric = self.fabric
            assert isinstance(fabric, DirectoryFabric)
            _tag, entries, l2 = fabric_state
            fabric.l2.flush()
            for b, addr in enumerate(self.block_addrs):
                owner, sharers, sticky, lost, check_all = entries[b]
                e = fabric.entry_view(addr)
                e.owner = None if owner < 0 else owner
                e.sharers = set(sharers)
                e.sticky = set(sticky)
                e.lost_info = lost
                e.must_check_all = check_all
                if l2[b]:
                    _blk, victim = fabric.l2.insert(addr, MESI.SHARED)
                    assert victim is None, "model L2 must not overflow"
        elif tag == "snoop":
            fabric = self.fabric
            assert isinstance(fabric, SnoopingFabric)
            _tag, entries = fabric_state
            fabric._owner.clear()
            fabric._sharers.clear()
            for b, addr in enumerate(self.block_addrs):
                owner, sharers = entries[b]
                if owner >= 0:
                    fabric._owner[addr] = owner
                if sharers:
                    fabric._sharers[addr] = set(sharers)
        else:
            fabric = self.fabric
            assert isinstance(fabric, MultiChipFabric)
            _tag, chips, mems = fabric_state
            for chip in range(self.cfg.num_chips):
                rows, l2 = chips[chip]
                self.fabric.l2s[chip].flush()
                for b, addr in enumerate(self.block_addrs):
                    rights, owner, sharers, sticky = rows[b]
                    e = fabric.chip_entry_view(chip, addr)
                    e.rights = rights
                    e.owner = None if owner < 0 else owner
                    e.sharers = set(sharers)
                    e.sticky = set(sticky)
                    if l2[b]:
                        _blk, victim = fabric.l2s[chip].insert(
                            addr, MESI.SHARED)
                        assert victim is None, "model L2 must not overflow"
            for b, addr in enumerate(self.block_addrs):
                owner_chip, sharer_chips, sticky_chips = mems[b]
                m = fabric.mem_entry_view(addr)
                m.owner_chip = None if owner_chip < 0 else owner_chip
                m.sharer_chips = set(sharer_chips)
                m.sticky_chips = set(sticky_chips)
