"""Bounded exhaustive state-space exploration (the ``repro mc`` engine).

A Murphi-style explicit-state checker: breadth-first search over the
protocol model's reachable states, with

* **canonical hashing** — the visited set stores symmetry-reduced
  canonical forms (:func:`repro.mc.state.canonical_key`), so states
  differing only by core/block relabeling are explored once;
* **a state cap** — exploration is bounded; hitting the cap is reported
  as an incomplete (but still useful) search rather than an error;
* **on-the-fly invariants** — every *newly discovered* state is audited
  by :func:`repro.mc.invariants.violated_invariant` the moment it is
  generated, and abort transitions self-check log restorability while
  they execute. Because invariants are symmetric under the same
  relabelings as the state encoding, checking one representative per
  canonical class is sound;
* **shortest counterexamples** — BFS order makes the first violating
  path minimal in transition count. The parent chain stores the exact
  (non-canonicalized) predecessor states and actions, so the extracted
  path is concretely executable; :func:`replay` re-runs it on a fresh
  model with a :class:`~repro.obs.bus.TraceRecorder` attached, turning
  the abstract action list into the PR-2 event taxonomy (``coh.*``,
  ``tm.*``, ``log.*``, ``os.*``) with the step index as the clock.

Single live model, no deep copies: BFS re-installs states via
``decode(raw)`` before expanding each transition.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.mc.invariants import violated_invariant
from repro.mc.model import (Action, ModelConfig, ProtocolModel,
                            TransitionViolation, action_from_dict,
                            action_to_dict, format_action)
from repro.mc.state import canonical_key, symmetry_maps
from repro.obs.bus import TraceRecorder

#: Default bound on distinct canonical states explored. The clean
#: 2-core/2-block/1-context directory space closes at 124,229 canonical
#: states (depth 24) — pass ``--state-cap 150000`` to verify it
#: exhaustively (several minutes). The default trades completeness for
#: runtime; every known mutation convicts by depth 7, far under it.
#: Measured sizes per fabric are tabulated in docs/modelcheck.md.
DEFAULT_STATE_CAP = 50_000


@dataclass
class CounterexampleStep:
    """One transition of a violating path, with its replayed events."""

    index: int                      # 1-based step number
    action: Dict[str, object]       # action_to_dict form
    label: str                      # format_action form
    events: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "action": self.action,
                "label": self.label, "events": self.events}


@dataclass
class Counterexample:
    """Shortest path from the initial state to an invariant violation."""

    invariant: str
    message: str
    steps: List[CounterexampleStep]

    def to_dict(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "message": self.message,
                "length": len(self.steps),
                "steps": [s.to_dict() for s in self.steps]}

    def path(self) -> List[Action]:
        """The action sequence, ready for :func:`replay`."""
        return [action_from_dict(s.action) for s in self.steps]

    def render(self) -> str:
        """Human-readable trace: one line per step, events indented."""
        lines = [f"counterexample ({len(self.steps)} steps) -> "
                 f"{self.invariant}:",
                 f"  {self.message}"]
        for step in self.steps:
            lines.append(f"  {step.index}. {step.label}")
            for ev in step.events:
                fields = ", ".join(
                    f"{k}={v}" for k, v in ev.items()
                    if k not in ("time", "kind"))
                lines.append(f"       {ev['kind']}({fields})")
        return "\n".join(lines)

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


@dataclass
class ModelCheckResult:
    """Outcome of one bounded exploration."""

    config: ModelConfig
    states: int                 # distinct canonical states discovered
    transitions: int            # state-changing transitions examined
    depth: int                  # deepest BFS level reached
    fixed_point: bool           # True: frontier exhausted under the cap
    state_cap: int
    violation: Optional[Tuple[str, str]] = None   # (invariant, message)
    counterexample: Optional[Counterexample] = None

    @property
    def clean(self) -> bool:
        return self.violation is None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "config": self.config.to_dict(),
            "states": self.states,
            "transitions": self.transitions,
            "depth": self.depth,
            "fixed_point": self.fixed_point,
            "state_cap": self.state_cap,
            "clean": self.clean,
        }
        if self.violation is not None:
            out["violation"] = {"invariant": self.violation[0],
                                "message": self.violation[1]}
        if self.counterexample is not None:
            out["counterexample"] = self.counterexample.to_dict()
        return out

    def summary(self) -> str:
        if not self.clean:
            status = "stopped at violation"
        elif self.fixed_point:
            status = "fixed point"
        else:
            status = f"state cap {self.state_cap} reached"
        verdict = ("clean" if self.clean
                   else f"VIOLATION: {self.violation[0]}")
        return (f"{self.config.describe()}: {self.states} states, "
                f"{self.transitions} transitions, depth {self.depth} "
                f"({status}) — {verdict}")


class _EventSink:
    """Minimal recorder (duck-typing ``TraceRecorder.record``) that
    collects one transition's emitted events for the observer."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Tuple[str, Dict[str, object]]] = []

    def record(self, kind: str, **fields) -> None:
        self.events.append((kind, fields))


def check(mcfg: ModelConfig,
          state_cap: int = DEFAULT_STATE_CAP,
          observer=None) -> ModelCheckResult:
    """Explore the reachable state space; stop at the first violation.

    ``observer``, when given, is called as ``observer(model, action,
    events, changed)`` after every successfully applied transition —
    *including* self-loops the BFS discards (a NACK that moved nothing
    is still an exercised protocol transition, which is exactly what
    the coverage fusion in :mod:`repro.mc.coverage` needs to see).
    ``events`` is the list of ``(kind, fields)`` the transition emitted;
    a sink recorder is installed for the duration of the exploration.
    """
    model = ProtocolModel(mcfg)
    sink: Optional[_EventSink] = None
    if observer is not None:
        sink = _EventSink()
        model.stats.recorder = sink
    maps = symmetry_maps(mcfg)
    init_raw = model.encode()
    init_key = canonical_key(model, maps)

    # parent chain: canonical key -> (parent key, action, own raw state).
    parents: Dict[Tuple, Optional[Tuple[Optional[Tuple], Action]]] = {
        init_key: None}
    raws: Dict[Tuple, Tuple] = {init_key: init_raw}
    frontier: Deque[Tuple[Tuple, Tuple, int]] = deque(
        [(init_raw, init_key, 0)])
    states = 1
    transitions = 0
    max_depth = 0

    bad = violated_invariant(model)
    if bad is not None:
        return ModelCheckResult(
            config=mcfg, states=states, transitions=transitions, depth=0,
            fixed_point=False, state_cap=state_cap, violation=bad,
            counterexample=_extract(mcfg, parents, raws, init_key,
                                    bad))

    while frontier and states < state_cap:
        raw, key, depth = frontier.popleft()
        model.decode(raw)
        actions = model.actions()
        for action in actions:
            if states >= state_cap:
                break
            model.decode(raw)
            if sink is not None:
                sink.events = []
            try:
                model.apply(action)
            except TransitionViolation as tv:
                transitions += 1
                path = _path_to(parents, key) + [action]
                return ModelCheckResult(
                    config=mcfg, states=states, transitions=transitions,
                    depth=max(max_depth, depth + 1),
                    fixed_point=False, state_cap=state_cap,
                    violation=(tv.invariant, str(tv)),
                    counterexample=_replayed(mcfg, path, tv.invariant,
                                             str(tv)))
            child_raw = model.encode()
            if observer is not None:
                observer(model, action, sink.events, child_raw != raw)
            if child_raw == raw:
                continue        # self-loop (e.g. a NACK that moved nothing)
            transitions += 1
            child_key = canonical_key(model, maps)
            if child_key in parents:
                continue
            parents[child_key] = (key, action)
            raws[child_key] = child_raw
            states += 1
            max_depth = max(max_depth, depth + 1)
            bad = violated_invariant(model)
            if bad is not None:
                return ModelCheckResult(
                    config=mcfg, states=states, transitions=transitions,
                    depth=max_depth, fixed_point=False,
                    state_cap=state_cap, violation=bad,
                    counterexample=_extract(mcfg, parents, raws,
                                            child_key, bad))
            frontier.append((child_raw, child_key, depth + 1))
    return ModelCheckResult(
        config=mcfg, states=states, transitions=transitions,
        depth=max_depth, fixed_point=not frontier,
        state_cap=state_cap)


def _path_to(parents: Dict, key: Tuple) -> List[Action]:
    """Walk the parent chain back to the initial state."""
    path: List[Action] = []
    while True:
        link = parents[key]
        if link is None:
            break
        key, action = link[0], link[1]
        path.append(action)
    path.reverse()
    return path


def _extract(mcfg: ModelConfig, parents: Dict, raws: Dict, key: Tuple,
             violation: Tuple[str, str]) -> Counterexample:
    return _replayed(mcfg, _path_to(parents, key),
                     violation[0], violation[1])


def _replayed(mcfg: ModelConfig, path: List[Action], invariant: str,
              message: str) -> Counterexample:
    """Re-run a violating path on a fresh model, capturing events.

    The recorder's clock is the (0-based) step index, so each event
    lands in the step that caused it. The final step is allowed to raise
    (a transition-scoped violation *is* the finding).
    """
    model = ProtocolModel(mcfg)
    clock = [0]
    recorder = TraceRecorder(clock=lambda: clock[0])
    model.stats.recorder = recorder
    for i, action in enumerate(path):
        clock[0] = i
        try:
            model.apply(action)
        except TransitionViolation:
            if i != len(path) - 1:
                raise   # mid-path violations mean a nondeterministic model
    by_step: Dict[int, List[Dict[str, object]]] = {}
    for event in recorder.events():
        by_step.setdefault(event.time, []).append(event.to_dict())
    steps = [CounterexampleStep(index=i + 1, action=action_to_dict(a),
                                label=format_action(a),
                                events=by_step.get(i, []))
             for i, a in enumerate(path)]
    return Counterexample(invariant=invariant, message=message,
                          steps=steps)


def replay(mcfg: ModelConfig, path: List[Action]) -> ProtocolModel:
    """Apply a recorded action sequence to a fresh model and return it.

    Test hook: lets assertions inspect the final concrete state a
    counterexample claims to reach (determinism of the replay is itself
    part of the checker's contract).
    """
    model = ProtocolModel(mcfg)
    for action in path:
        try:
            model.apply(action)
        except TransitionViolation:
            pass
    return model


__all__ = [
    "DEFAULT_STATE_CAP", "Counterexample", "CounterexampleStep",
    "ModelCheckResult", "check", "replay",
]
