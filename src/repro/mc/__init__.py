"""Bounded exhaustive protocol model checking (``repro mc``).

The paper's safety argument — signatures never yield false negatives,
and sticky/check-all obligations preserve conflict-detection coverage
across every victimization and paging event — is a claim about *all*
reachable protocol states, not the ones a workload happens to visit.
This package checks it in the Murphi/TLA tradition: enumerate every
reachable state of a small configuration of the real fabric code, audit
invariants at each one, and report the shortest violating path as a
replayable event trace.

Layout:

* :mod:`repro.mc.model` — the finite transition system: real fabrics +
  real TM bookkeeping behind minimal core shims, with ``encode`` /
  ``decode`` state round-tripping;
* :mod:`repro.mc.state` — symmetry reduction over core/block (and chip)
  permutations;
* :mod:`repro.mc.invariants` — TM-level invariants layered on the
  coherence audits;
* :mod:`repro.mc.checker` — BFS frontier, state cap, counterexample
  extraction and replay;
* :mod:`repro.mc.coverage` — classifies explored transitions into the
  static ``(stimulus, variant, outcome)`` keys of
  :mod:`repro.analysis.protocol`'s extracted tables and diffs the two
  (the ``repro analyze --protocol --coverage`` fusion).

Validation: the mutation harness in :mod:`repro.verify.faults`
resurrects the three protocol bugs fixed by the dynamic-analysis PR
(sticky over-discharge, eager E grants, missing frame scrub); the test
suite proves the checker convicts each with a counterexample.
"""

from repro.mc.checker import (DEFAULT_STATE_CAP, Counterexample,
                              ModelCheckResult, check, replay)
from repro.mc.coverage import (CoverageReport, TransitionCoverage,
                               compare_coverage)
from repro.mc.model import (ModelConfig, ProtocolModel, action_from_dict,
                            action_to_dict)

__all__ = [
    "DEFAULT_STATE_CAP", "Counterexample", "CoverageReport",
    "ModelCheckResult", "ModelConfig", "ProtocolModel",
    "TransitionCoverage", "action_from_dict", "action_to_dict", "check",
    "compare_coverage", "replay",
]
