"""Fuse static transition tables with bounded-exploration reachability.

The protocol extractor (:mod:`repro.analysis.protocol`) claims a fabric
*has* a transition; the model checker (:mod:`repro.mc.checker`) proves a
transition is *reachable*. This module compares the two over the shared
``(stimulus, variant, outcome)`` key space:

* :class:`TransitionCoverage` is a checker observer: attached to
  :func:`repro.mc.check` via its ``observer`` parameter, it classifies
  every explored transition — including NACK self-loops, which the BFS
  itself discards — into a static table key and accumulates the set of
  keys the exploration exercised.
* :func:`compare_coverage` diffs that set against an extracted table and
  reports both directions:

  - **exercised-but-unextracted** — the model checker drove the real
    fabric through a transition the static table does not contain. The
    extractor missed real behavior; this direction gates CI.
  - **extracted-but-unexercised** — statically declared, never reached
    under the explored bound. Expected for stimuli the model never
    generates (``RELOCATE``) or under small state caps; reported for
    eyeballs, not gated.

Key classification is deliberately event-driven: the observer decodes
the ``coh.*`` events each ``model.apply`` emitted rather than guessing
from the action alone, so an access that hit in L1 (no coherence
request) records nothing and a request that cascaded an L2
victimization records both keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.mc.model import Action, ProtocolModel

#: The static/dynamic rendezvous key: (stimulus, variant, outcome).
CoverageKey = Tuple[str, str, str]


class TransitionCoverage:
    """Observer accumulating the static-table keys an exploration hits.

    One instance covers one :func:`repro.mc.check` run. ``fabric_kind``
    must match the model's fabric ("directory" | "snooping" |
    "multichip"); it picks the request-variant classifier.
    """

    def __init__(self, fabric_kind: str) -> None:
        self.fabric_kind = fabric_kind
        self.exercised: Set[CoverageKey] = set()
        #: Transitions observed (including self-loops); a health signal
        #: that the observer actually saw the exploration.
        self.observed = 0
        # The multichip escalation counter monotonically increases and is
        # not part of the encoded state, so a delta across one apply()
        # tells whether that request escalated to the memory directory.
        self._interchip_seen: Optional[int] = None

    # -- checker observer interface -----------------------------------

    def __call__(self, model: ProtocolModel, action: Action,
                 events: List[Tuple[str, Dict[str, object]]],
                 changed: bool) -> None:
        self.observed += 1
        inter = self._interchip_delta(model)
        op = action[0]
        if op in ("read", "write"):
            self._classify_access(model, events, inter)
        elif op == "evict":
            # The fabrics' l1_evicted handlers do not all emit an event;
            # recompute the tx flag the model passed (eviction leaves
            # signatures untouched, so post-apply equals pre-apply).
            addr = model.block_addrs[action[2]]
            tx = model.cores[action[1]].holds_transactional(addr)
            self.exercised.add(("L1_EVICT", "tx" if tx else "plain",
                                "done"))
        elif op == "l2_evict":
            self.exercised.add(("L2_EVICT", "-", "done"))
        elif op == "reuse":
            self.exercised.add(("SCRUB", "-", "done"))
        # begin/commit/abort touch no fabric state: nothing to record.

    # -- classification helpers ---------------------------------------

    def _classify_access(self, model: ProtocolModel,
                         events: List[Tuple[str, Dict[str, object]]],
                         inter: bool) -> None:
        kinds = [kind for kind, _fields in events]
        if "coh.l2_victim" in kinds:
            # A request-path L2 insert victimized a resident block.
            self.exercised.add(("L2_EVICT", "-", "done"))
        # Directory/multichip announce a request with ``coh.request``;
        # the snooping fabric's address-phase marker is ``coh.snoop``.
        request = next((fields for kind, fields in events
                        if kind in ("coh.request", "coh.snoop")), None)
        if request is None:
            return      # L1 hit or sibling block: no coherence request
        stimulus = "GETM" if request["write"] else "GETS"
        if "coh.grant" in kinds:
            outcome = "grant"
        elif "coh.nack" in kinds:
            outcome = "nack"
        else:
            return      # request with neither verdict: not classifiable
        if self.fabric_kind == "directory":
            variant = "broadcast" if "coh.broadcast" in kinds \
                else "targeted"
        elif self.fabric_kind == "multichip":
            variant = "inter" if inter else "intra"
        else:
            variant = "snoop"
        self.exercised.add((stimulus, variant, outcome))

    def _interchip_delta(self, model: ProtocolModel) -> bool:
        """True when the last apply bumped the escalation counter."""
        if self.fabric_kind != "multichip":
            return False
        current = model.fabric._c_interchip.value
        previous = self._interchip_seen
        self._interchip_seen = current
        return previous is not None and current != previous


@dataclass
class CoverageReport:
    """Two-way diff of one static table against one exploration."""

    fabric_kind: str
    extracted: Set[CoverageKey] = field(default_factory=set)
    exercised: Set[CoverageKey] = field(default_factory=set)

    @property
    def unextracted(self) -> List[CoverageKey]:
        """MC-exercised but missing from the static table (gates CI)."""
        return sorted(self.exercised - self.extracted)

    @property
    def unexercised(self) -> List[CoverageKey]:
        """Statically declared but never reached under the bound."""
        return sorted(self.extracted - self.exercised)

    @property
    def covered(self) -> List[CoverageKey]:
        return sorted(self.extracted & self.exercised)

    @property
    def clean(self) -> bool:
        """No evidence the extractor missed real fabric behavior."""
        return not self.unextracted

    def to_dict(self) -> Dict[str, object]:
        return {
            "fabric": self.fabric_kind,
            "extracted": len(self.extracted),
            "exercised": len(self.exercised),
            "covered": [list(k) for k in self.covered],
            "unextracted": [list(k) for k in self.unextracted],
            "unexercised": [list(k) for k in self.unexercised],
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [f"{self.fabric_kind}: {len(self.covered)}/"
                 f"{len(self.extracted)} extracted transition(s) "
                 f"exercised by the model checker"]
        for key in self.unextracted:
            lines.append("  UNEXTRACTED (checker exercised, table "
                         f"missing): {'/'.join(key)}")
        for key in self.unexercised:
            lines.append(f"  unexercised: {'/'.join(key)}")
        return "\n".join(lines)


def compare_coverage(fabric_kind: str, table_keys: Set[CoverageKey],
                     coverage: TransitionCoverage) -> CoverageReport:
    """Diff an extracted table's key set against an exploration's."""
    return CoverageReport(fabric_kind=fabric_kind,
                          extracted=set(table_keys),
                          exercised=set(coverage.exercised))


__all__ = ["CoverageKey", "CoverageReport", "TransitionCoverage",
           "compare_coverage"]
