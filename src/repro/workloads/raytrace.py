"""Raytrace (SPLASH) workload.

Raytrace renders a teapot; threads pull rays from a shared work queue and
traverse shared scene data. The paper's version eliminates false sharing
between transactions [19]. Its signature in Table 2: small *average* read
sets (5.8 blocks) but a 550-block maximum — the most skewed footprint of
the suite — and tiny write sets (avg 2.0 / max 3). The huge occasional
read set is what (a) overflows the 512-block L1 (Result 4: 481
victimizations in 48K transactions) and (b) fills small bit-select
signatures, explaining the BS_64 slowdown (Result 3).

Under locks, the global ray-queue lock serializes the dispatch + the scene
reads it guards; under TM the scene reads run concurrently and only the
queue-tail update serializes briefly — the source of Raytrace's 20-50%
transactional speedup (Figure 4).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.base import Op, Section, VirtualAllocator, Workload

#: Shared scene database, in blocks (words spaced one per block so a
#: traversal's read set is counted in blocks, mirroring Table 2).
SCENE_BLOCKS = 1400
#: Fraction of rays that traverse a large portion of the scene grid.
BIG_TRAVERSAL_PROB = 0.008
BIG_TRAVERSAL_MIN = 120
BIG_TRAVERSAL_MAX = 550


class Raytrace(Workload):
    """Ray-queue dispatch + shared-scene traversal."""

    name = "Raytrace"
    input_desc = "small image (teapot)"
    unit_name = "parallel phase"

    def __init__(self, num_threads: int, units_per_thread: int = 12,
                 seed: int = 0, compute_per_ray: int = 42000) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.compute_per_ray = compute_per_ray
        alloc = VirtualAllocator()
        self.scene = alloc.blocks(SCENE_BLOCKS)
        #: Shared image tiles: rays contribute to overlapping pixels — the
        #: source of Raytrace's genuine write-write conflicts.
        self.tiles = [alloc.isolated_word() for _ in range(48)]
        #: Ray queue head/tail counters and the global queue lock.
        self.queue_head = alloc.isolated_word()
        self.ray_counter = alloc.isolated_word()
        self.queue_lock = alloc.isolated_word()

    def _ray_tx(self, rng: random.Random) -> List[Op]:
        """Dispatch one ray: read scene cells, bump the shared counters."""
        ops: List[Op] = []
        if rng.random() < BIG_TRAVERSAL_PROB:
            # A ray that walks a long run of the scene grid: a contiguous
            # block run keeps it realistic (grid marching) and produces the
            # 550-block maximum read set of Table 2.
            length = rng.randint(BIG_TRAVERSAL_MIN, BIG_TRAVERSAL_MAX)
            start = rng.randrange(SCENE_BLOCKS - length)
            for i in range(start, start + length):
                ops.append(Op.load(self.scene[i]))
            ops.append(Op.compute(200))
        else:
            for _ in range(rng.randint(2, 6)):
                ops.append(Op.load(self.scene[rng.randrange(SCENE_BLOCKS)]))
            ops.append(Op.compute(60))
        # Contribute to one or two image tiles (real write sharing), then
        # queue bookkeeping: a short serialization tail on hot words.
        ops.append(Op.incr(self.tiles[rng.randrange(len(self.tiles))]))
        if rng.random() < 0.4:
            ops.append(Op.incr(self.tiles[rng.randrange(len(self.tiles))]))
        ops.append(Op.incr(self.queue_head))
        return ops

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            yield Section(ops=self._ray_tx(rng),
                          lock=self.queue_lock,
                          unit=True,
                          label=f"raytrace.ray[{thread_index}.{unit}]")
            yield Section(ops=[Op.compute(self.compute_per_ray)],
                          label=f"raytrace.shade[{thread_index}.{unit}]")
