"""Radiosity (SPLASH) workload.

Radiosity (batch input) computes light transport with distributed task
queues and work stealing. Table 2 shows small average sets (read 2.0, write
1.5 blocks) with a *skewed* tail — up to 25 read / 45 written blocks when a
task appends a batch of interactions to a shared list. The skewed write
tail is what degrades small bit-select signatures (Results 2-3: BS and
BS_64 lose up to ~20% on Radiosity while CBS/DBS track perfect).

Per-queue locks give the lock baseline decent parallelism, so TM and locks
are statistically tied in Figure 4.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.base import Op, Section, VirtualAllocator, Workload

#: Probability that a task ends with a large interaction-list append.
BIG_APPEND_PROB = 0.05
STEAL_PROB = 0.15


class Radiosity(Workload):
    """Distributed task queues with work stealing and list appends."""

    name = "Radiosity"
    input_desc = "batch"
    unit_name = "1 task"

    def __init__(self, num_threads: int, units_per_thread: int = 16,
                 seed: int = 0, compute_per_task: int = 19000) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.compute_per_task = compute_per_task
        alloc = VirtualAllocator()
        #: One task queue (head word + lock) per thread; stealing touches
        #: a victim's queue.
        self.queue_heads = [alloc.isolated_word() for _ in range(num_threads)]
        self.queue_locks = [alloc.isolated_word() for _ in range(num_threads)]
        #: Shared interaction lists: block-spaced so the skewed appends set
        #: many signature bits.
        self.interaction = alloc.blocks(512)
        self.list_tail = alloc.isolated_word()
        self.list_lock = alloc.isolated_word()
        #: Global progress counter (checked occasionally), with its own
        #: lock in the original program.
        self.task_counter = alloc.isolated_word()
        self.counter_lock = alloc.isolated_word()

    def _pop_tx(self, queue: int, rng: random.Random) -> List[Op]:
        """Queue pop: reserve with fetch-and-increment, then read the task.

        Interaction-list entries are *read* here under the victim's
        queue lock while :meth:`_append_tx` *writes* them under the
        global list lock — a deliberately inconsistent lockset
        (baselined under RC001/RC002): the original radiosity
        work-stealing code reads task records racily and tolerates
        stale entries; in TM mode each section is a transaction and
        word-level conflict detection handles it.
        """
        return [Op.incr(self.queue_heads[queue]),
                Op.load(self.interaction[rng.randrange(
                    len(self.interaction))]),
                Op.load(self.interaction[rng.randrange(
                    len(self.interaction))])]

    def _append_tx(self, rng: random.Random) -> List[Op]:
        """Interaction-list append; occasionally a large batch.

        The tail is reserved with a fetch-and-add first (writes lead), then
        the entries are filled in.
        """
        ops: List[Op] = [Op.incr(self.list_tail)]
        if rng.random() < BIG_APPEND_PROB:
            count = rng.randint(12, 44)
            start = rng.randrange(len(self.interaction) - count)
            for i in range(start, start + count):
                if rng.random() < 0.4:
                    ops.append(Op.load(self.interaction[i]))
                ops.append(Op.store(self.interaction[i], i))
        else:
            slot = rng.randrange(len(self.interaction))
            ops.append(Op.load(self.interaction[(slot + 1)
                                                % len(self.interaction)]))
            ops.append(Op.store(self.interaction[slot], slot))
        return ops

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            # Pop from own queue, or steal from a random victim.
            if self.num_threads > 1 and rng.random() < STEAL_PROB:
                victim = rng.randrange(self.num_threads)
            else:
                victim = thread_index
            yield Section(ops=self._pop_tx(victim, rng),
                          lock=self.queue_locks[victim],
                          label=f"radiosity.pop[{thread_index}.{unit}]")
            yield Section(ops=[Op.compute(self.compute_per_task)],
                          label=f"radiosity.compute[{thread_index}.{unit}]")
            yield Section(ops=self._append_tx(rng),
                          lock=self.list_lock,
                          unit=True,
                          label=f"radiosity.append[{thread_index}.{unit}]")
            if rng.random() < 0.3:
                yield Section(ops=[Op.incr(self.task_counter)],
                              lock=self.counter_lock,
                              label=f"radiosity.count[{thread_index}.{unit}]")
