"""Workload framework.

The paper converts lock-based multi-threaded programs to transactions by
replacing lock-protected critical sections (Section 6.2). Workloads here are
expressed the same way: each thread's program is a finite sequence of
:class:`Section` objects; an *atomic* section carries the lock that guards
it in LOCKS mode and runs as a transaction in TM mode, so the exact same
operation stream drives both baselines.

Operations are word-granularity loads/stores/increments on *virtual*
addresses plus compute delays; the increment op (a data-dependent
read-modify-write) is what makes serializability a testable property of the
functional memory rather than an assumption.
"""

from __future__ import annotations

import abc
import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from repro.common.errors import WorkloadError


class OpKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    INCR = "incr"              # atomic fetch-add (data dependence)
    COMPUTE = "compute"        # local work, charges cycles
    NEST_BEGIN = "nest_begin"  # nested tx begin (TM mode; no-op under locks)
    NEST_END = "nest_end"
    ESCAPE_BEGIN = "escape_begin"  # non-transactional escape action [20]
    ESCAPE_END = "escape_end"
    CALL = "call"              # data-dependent code (pointer chasing etc.)


@dataclass(frozen=True)
class Op:
    """One primitive operation of a thread program."""

    kind: OpKind
    vaddr: int = 0
    value: int = 0
    cycles: int = 0
    open_nest: bool = False
    #: CALL payload: ``fn(core, slot)`` is a simulation sub-generator that
    #: issues accesses through the core's API. It is re-executed from
    #: scratch on every transaction retry (so traversals re-read current
    #: memory — exactly the semantics a real retried transaction has).
    fn: Optional[Callable] = None

    @staticmethod
    def load(vaddr: int) -> "Op":
        return Op(OpKind.LOAD, vaddr=vaddr)

    @staticmethod
    def store(vaddr: int, value: int = 1) -> "Op":
        return Op(OpKind.STORE, vaddr=vaddr, value=value)

    @staticmethod
    def incr(vaddr: int, delta: int = 1) -> "Op":
        return Op(OpKind.INCR, vaddr=vaddr, value=delta)

    @staticmethod
    def compute(cycles: int) -> "Op":
        return Op(OpKind.COMPUTE, cycles=cycles)

    @staticmethod
    def nest_begin(open_nest: bool = False) -> "Op":
        return Op(OpKind.NEST_BEGIN, open_nest=open_nest)

    @staticmethod
    def nest_end() -> "Op":
        return Op(OpKind.NEST_END)

    @staticmethod
    def escape_begin() -> "Op":
        return Op(OpKind.ESCAPE_BEGIN)

    @staticmethod
    def escape_end() -> "Op":
        return Op(OpKind.ESCAPE_END)

    @staticmethod
    def call(fn: Callable) -> "Op":
        return Op(OpKind.CALL, fn=fn)


@dataclass
class Section:
    """A contiguous piece of a thread program.

    ``lock`` non-None marks a critical section: guarded by that spinlock
    under LOCKS, executed as one transaction under TM. ``unit`` marks the
    section that completes one of the workload's "units of work" (the
    paper's throughput metric, Table 2).
    """

    ops: List[Op]
    lock: Optional[int] = None
    unit: bool = False
    label: str = ""

    @property
    def atomic(self) -> bool:
        return self.lock is not None


class VirtualAllocator:
    """Bump allocator of virtual address ranges for a workload's layout."""

    def __init__(self, base: int = 0x1000_0000, block_bytes: int = 64,
                 page_bytes: int = 8192) -> None:
        self._next = base
        self._block = block_bytes
        self._page = page_bytes

    def _align(self, alignment: int) -> None:
        rem = self._next % alignment
        if rem:
            self._next += alignment - rem

    def words(self, count: int, align_block: bool = True) -> List[int]:
        """Allocate ``count`` consecutive words (8 bytes each)."""
        if align_block:
            self._align(self._block)
        base = self._next
        self._next += count * 8
        return [base + 8 * i for i in range(count)]

    def blocks(self, count: int) -> List[int]:
        """Allocate ``count`` block-aligned, block-sized regions."""
        self._align(self._block)
        base = self._next
        self._next += count * self._block
        return [base + self._block * i for i in range(count)]

    def word(self) -> int:
        return self.words(1)[0]

    def isolated_word(self) -> int:
        """A word alone in its cache block (avoids false sharing)."""
        return self.blocks(1)[0]

    def page(self) -> int:
        """A fresh page-aligned region of one page."""
        self._align(self._page)
        base = self._next
        self._next += self._page
        return base


class Workload(abc.ABC):
    """A benchmark: per-thread programs plus Table 2 metadata."""

    #: Workload name as it appears in the paper's tables.
    name: str = "workload"
    #: Input description (Table 2 "Input" column).
    input_desc: str = ""
    #: What one unit of work is (Table 2 "Unit of Work" column).
    unit_name: str = ""

    def __init__(self, num_threads: int, units_per_thread: int,
                 seed: int = 0) -> None:
        if num_threads < 1:
            raise WorkloadError("need at least one thread")
        if units_per_thread < 1:
            raise WorkloadError("need at least one unit of work per thread")
        self.num_threads = num_threads
        self.units_per_thread = units_per_thread
        self.seed = seed

    @abc.abstractmethod
    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        """The finite section stream executed by one thread."""

    @property
    def total_units(self) -> int:
        return self.num_threads * self.units_per_thread

    def describe(self) -> str:
        return (f"{self.name}(threads={self.num_threads}, "
                f"units/thread={self.units_per_thread})")


def validate_sections(sections: Sequence[Section]) -> None:
    """Sanity-check a program fragment (used by workload tests)."""
    for section in sections:
        depth = 0
        escape = 0
        for op in section.ops:
            if op.kind is OpKind.NEST_BEGIN:
                depth += 1
            elif op.kind is OpKind.NEST_END:
                depth -= 1
                if depth < 0:
                    raise WorkloadError(f"unbalanced nest in {section.label}")
            elif op.kind is OpKind.ESCAPE_BEGIN:
                escape += 1
            elif op.kind is OpKind.ESCAPE_END:
                escape -= 1
                if escape < 0:
                    raise WorkloadError(
                        f"unbalanced escape in {section.label}")
            if op.kind in (OpKind.NEST_BEGIN, OpKind.NEST_END,
                           OpKind.ESCAPE_BEGIN, OpKind.ESCAPE_END):
                if not section.atomic:
                    raise WorkloadError(
                        f"nest/escape outside atomic section "
                        f"in {section.label}")
        if depth or escape:
            raise WorkloadError(f"unterminated nest/escape in {section.label}")
