"""BerkeleyDB lock-subsystem workload.

The paper's driver initializes a 1000-word database and spawns workers that
randomly read it; the measured stress lands on BerkeleyDB's *lock
subsystem*, whose mutex-protected critical sections become transactions
(Section 6.2). Under locks the subsystem serializes on a global mutex; under
TM the mostly-read operations commute, which is why BerkeleyDB is one of the
two workloads where transactions win 20-50% (Figure 4).

Structure of one unit of work (one database read):

* a few small lock-table transactions (acquire/release records in hash
  buckets) — writes to a couple of bucket words, reads of bucket metadata;
* the main read transaction — reads several database words (Zipf-skewed
  pages) and updates lock-manager metadata;
* occasionally an *escape action* inside the transaction, modeling the
  non-transactional system calls / memory allocation the paper handles with
  escape actions [20].

Table 2 row: input "1000 words", unit "1 database read", read set
avg 8.1 / max 30, write set avg 6.8 / max 28.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.common.rng import zipf_rank
from repro.workloads.base import Op, Section, VirtualAllocator, Workload

DB_WORDS = 1000
LOCK_TABLE_BUCKETS = 256


class BerkeleyDB(Workload):
    """Database read workload stressing a lock-manager subsystem."""

    name = "BerkeleyDB"
    input_desc = "1000 words"
    unit_name = "1 database read"

    def __init__(self, num_threads: int, units_per_thread: int = 8,
                 seed: int = 0, compute_between_units: int = 170000) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.compute_between_units = compute_between_units
        alloc = VirtualAllocator()
        #: The database proper: 1000 words, several per cache block.
        self.db = alloc.words(DB_WORDS)
        #: Lock-table buckets: isolated words so conflicts are real, not
        #: false sharing.
        self.buckets = [alloc.isolated_word()
                        for _ in range(LOCK_TABLE_BUCKETS)]
        #: Lock-manager metadata (allocation counters, free lists,
        #: per-region headers).
        self.lock_meta = [alloc.isolated_word() for _ in range(16)]
        #: The single subsystem mutex used in LOCKS mode (coarse-grained,
        #: as in the original library).
        self.subsystem_mutex = alloc.isolated_word()
        #: Per-thread scratch used by escape actions.
        self.scratch = [alloc.isolated_word() for _ in range(num_threads)]

    # -- transaction builders -------------------------------------------------

    def _lock_record_tx(self, rng: random.Random) -> List[Op]:
        """Lock-table operation: allocate/release lock records.

        Walks a few metadata words (free list, region header) and updates
        several hash buckets — the footprint that dominates Table 2's
        BerkeleyDB averages (read 8.1 / write 6.8 blocks).
        """
        ops: List[Op] = []
        for _ in range(rng.randint(3, 6)):
            ops.append(Op.load(self.lock_meta[rng.randrange(
                len(self.lock_meta))]))
        for _ in range(rng.randint(3, 7)):
            ops.append(Op.incr(self.buckets[rng.randrange(
                LOCK_TABLE_BUCKETS)]))
        if rng.random() < 0.04:
            # Occasional lock-region reorganization: the write-set tail
            # (Table 2 write max 28).
            start = rng.randrange(LOCK_TABLE_BUCKETS - 24)
            for i in range(start, start + rng.randint(12, 22)):
                ops.append(Op.store(self.buckets[i], i))
        ops.append(Op.compute(30))
        return ops

    def _db_read_tx(self, thread_index: int, rng: random.Random) -> List[Op]:
        """The main read: several db words + lock-manager bookkeeping."""
        ops: List[Op] = []
        # Reads land on distinct blocks (the db rows touched by one lookup
        # spread across pages), with a Zipf-skewed hot set.
        nreads = rng.randint(6, 16)
        blocks_per_db = DB_WORDS // 8
        for _ in range(nreads):
            block_rank = zipf_rank(rng, blocks_per_db, skew=0.4)
            word = self.db[block_rank * 8 + rng.randrange(8)]
            ops.append(Op.load(word))
        if rng.random() < 0.05:
            # Occasional long scan: the read-set tail (Table 2 read max 30).
            start = zipf_rank(rng, blocks_per_db - 20, skew=0.1)
            for i in range(start, start + rng.randint(10, 18)):
                ops.append(Op.load(self.db[i * 8]))
        # Escape action: system call / allocation inside the transaction.
        if rng.random() < 0.3:
            ops.append(Op.escape_begin())
            ops.append(Op.load(self.scratch[thread_index]))
            ops.append(Op.store(self.scratch[thread_index], rng.randrange(97)))
            ops.append(Op.escape_end())
        ops.append(Op.compute(80))
        # Lock-manager updates happen at the end of the operation: short
        # isolation tail on the hot words.
        for _ in range(rng.randint(3, 7)):
            ops.append(Op.incr(self.buckets[rng.randrange(
                LOCK_TABLE_BUCKETS)]))
        ops.append(Op.incr(self.lock_meta[rng.randrange(len(self.lock_meta))]))
        return ops

    # -- program ---------------------------------------------------------------

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            # Lock-table traffic before the read (repeated requests for
            # locks on database objects stress the subsystem).
            for i in range(rng.randint(4, 8)):
                yield Section(ops=self._lock_record_tx(rng),
                              lock=self.subsystem_mutex,
                              label=f"bdb.lock_record[{thread_index}.{unit}.{i}]")
            yield Section(ops=self._db_read_tx(thread_index, rng),
                          lock=self.subsystem_mutex,
                          unit=True,
                          label=f"bdb.read[{thread_index}.{unit}]")
            yield Section(
                ops=[Op.compute(self.compute_between_units)],
                label=f"bdb.think[{thread_index}.{unit}]")
