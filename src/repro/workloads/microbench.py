"""Microbenchmarks: small targeted workloads for tests and ablations.

These are not from the paper's Table 2; they isolate single mechanisms —
shared-counter contention (atomicity under conflicts), nesting (open and
closed), large footprints (cache victimization / sticky states), and the
log filter (redundant-store suppression).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.base import Op, Section, VirtualAllocator, Workload


class SharedCounter(Workload):
    """Every unit increments the same counter inside an atomic section.

    The final counter value must equal ``num_threads * units_per_thread``
    under both sync modes — the canonical atomicity check.
    """

    name = "SharedCounter"
    input_desc = "1 hot word"
    unit_name = "1 increment"

    def __init__(self, num_threads: int, units_per_thread: int = 10,
                 seed: int = 0, compute_between: int = 50,
                 inner_compute: int = 0) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.compute_between = compute_between
        #: Compute cycles spent *inside* the atomic section — widens the
        #: transaction window (used to exercise mid-transaction events).
        self.inner_compute = inner_compute
        alloc = VirtualAllocator()
        self.counter = alloc.isolated_word()
        self.lock = alloc.isolated_word()

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            ops = [Op.load(self.counter)]
            if self.inner_compute:
                ops.append(Op.compute(self.inner_compute))
            ops.append(Op.incr(self.counter))
            yield Section(ops=ops, lock=self.lock, unit=True,
                          label=f"counter[{thread_index}.{unit}]")
            yield Section(ops=[Op.compute(self.compute_between)],
                          label=f"gap[{thread_index}.{unit}]")


class NestedUpdate(Workload):
    """Exercises closed and open nesting inside real transactions.

    Each unit: outer transaction increments an outer word, then a closed
    nested child increments a child word, then an open-nested child bumps a
    statistics word (which stays committed even if the outer aborts and
    retries — the stats word therefore counts *attempts*, not commits).
    """

    name = "NestedUpdate"
    input_desc = "3 words"
    unit_name = "1 nested update"

    def __init__(self, num_threads: int, units_per_thread: int = 5,
                 seed: int = 0) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        alloc = VirtualAllocator()
        self.outer_word = alloc.isolated_word()
        self.child_word = alloc.isolated_word()
        self.stats_word = alloc.isolated_word()
        self.lock = alloc.isolated_word()

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            ops: List[Op] = [
                Op.incr(self.outer_word),
                Op.nest_begin(open_nest=False),
                Op.incr(self.child_word),
                Op.nest_end(),
                Op.nest_begin(open_nest=True),
                Op.incr(self.stats_word),
                Op.nest_end(),
                Op.compute(20),
            ]
            yield Section(ops=ops, lock=self.lock, unit=True,
                          label=f"nested[{thread_index}.{unit}]")


class BigFootprint(Workload):
    """Transactions whose write sets overflow a small L1.

    Used by victimization tests/ablations: with sticky states the overflowed
    transactional data stays isolated; without them isolation would be lost
    after eviction.
    """

    name = "BigFootprint"
    input_desc = "per-thread streams"
    unit_name = "1 sweep"

    def __init__(self, num_threads: int, units_per_thread: int = 2,
                 blocks_per_sweep: int = 128, seed: int = 0) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        alloc = VirtualAllocator()
        self.blocks_per_sweep = blocks_per_sweep
        self.regions = [alloc.blocks(blocks_per_sweep)
                        for _ in range(num_threads)]
        self.shared_word = alloc.isolated_word()
        self.lock = alloc.isolated_word()

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        region = self.regions[thread_index]
        for unit in range(self.units_per_thread):
            ops = [Op.store(addr, unit) for addr in region]
            ops.append(Op.incr(self.shared_word))
            yield Section(ops=ops, lock=self.lock, unit=True,
                          label=f"sweep[{thread_index}.{unit}]")


class RepeatStores(Workload):
    """Stores the same block repeatedly: isolates the log filter's effect."""

    name = "RepeatStores"
    input_desc = "1 private block"
    unit_name = "1 burst"

    def __init__(self, num_threads: int, units_per_thread: int = 4,
                 stores_per_burst: int = 32, seed: int = 0) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        alloc = VirtualAllocator()
        self.stores_per_burst = stores_per_burst
        self.words = [alloc.isolated_word() for _ in range(num_threads)]
        self.locks = [alloc.isolated_word() for _ in range(num_threads)]

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        word = self.words[thread_index]
        for unit in range(self.units_per_thread):
            ops = [Op.store(word, i) for i in range(self.stores_per_burst)]
            yield Section(ops=ops, lock=self.locks[thread_index], unit=True,
                          label=f"burst[{thread_index}.{unit}]")
