"""Cholesky (SPLASH) workload.

Sparse Cholesky factorization (input tk14.O): the parallel phase is
dominated by numeric factorization *outside* critical sections; the critical
sections only manipulate the task queue. Table 2 shows the most uniform
footprint of the suite — read set exactly 4 blocks, write set exactly 2 —
and only 261 measured transactions for the whole factorization. With so
little synchronization, locks and transactions perform the same (Figure 4's
difference is not statistically significant).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.base import Op, Section, VirtualAllocator, Workload


class Cholesky(Workload):
    """Task-queue pops between long factorization compute phases."""

    name = "Cholesky"
    input_desc = "tk14.O"
    unit_name = "factorization"

    def __init__(self, num_threads: int, units_per_thread: int = 6,
                 seed: int = 0, compute_per_task: int = 20000) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.compute_per_task = compute_per_task
        alloc = VirtualAllocator()
        #: Task-queue: head pointer, count, and two task-descriptor words,
        #: each in its own block (4-block read set, 2-block write set).
        self.queue_head = alloc.isolated_word()
        self.queue_count = alloc.isolated_word()
        self.task_desc = [alloc.isolated_word() for _ in range(2)]
        self.queue_bounds = [alloc.isolated_word() for _ in range(2)]
        self.queue_lock = alloc.isolated_word()
        #: Per-thread private panel data for the numeric phase.
        self.panels = [alloc.blocks(16) for _ in range(num_threads)]

    def _pop_task_tx(self) -> List[Op]:
        """Fixed-shape queue pop: read 4 blocks, write 2.

        The pop reserves a slot with fetch-and-increment *first* (writes
        lead), then reads the descriptor — the natural lock-free-style
        structure, which under eager TM serializes briefly on the counters
        instead of forming read-to-write upgrade convoys.
        """
        return [
            Op.incr(self.queue_head),
            Op.incr(self.queue_count),
            Op.load(self.task_desc[0]),
            Op.load(self.task_desc[1]),
            Op.load(self.queue_bounds[0]),
            Op.load(self.queue_bounds[1]),
        ]

    def _numeric_phase(self, thread_index: int,
                       rng: random.Random) -> List[Op]:
        """Private supernode update: long compute + private traffic."""
        ops: List[Op] = [Op.compute(self.compute_per_task)]
        panel = self.panels[thread_index]
        for _ in range(8):
            block = panel[rng.randrange(len(panel))]
            ops.append(Op.load(block))
            ops.append(Op.store(block, rng.randrange(1 << 16)))
        return ops

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            yield Section(ops=self._pop_task_tx(),
                          lock=self.queue_lock,
                          unit=True,
                          label=f"cholesky.pop[{thread_index}.{unit}]")
            # Writes target this thread's own panel blocks only (the
            # paper's unprotected numeric phase), so the section is safe
            # without a lock or transaction.
            # lint: disable=VR001
            yield Section(ops=self._numeric_phase(thread_index, rng),
                          label=f"cholesky.factor[{thread_index}.{unit}]")
