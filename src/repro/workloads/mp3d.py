"""Mp3d (SPLASH) workload.

Mp3d simulates rarefied hypersonic flow: each step moves molecules through
a space-cell grid. Critical sections update a molecule record and its
destination cell — fine-grained, mostly disjoint (collisions only when two
molecules land in the same cell). Table 2: read set avg 2.2 / max 18, write
set avg 1.7 / max 10; 17,733 transactions over 512 steps. With short,
rarely-conflicting critical sections, locks and transactions tie.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.base import Op, Section, VirtualAllocator, Workload

SPACE_CELLS = 256
#: A few molecules per thread move each step (paper: 128 molecules total).
MOVES_PER_STEP = 3
COLLISION_PROB = 0.08


class Mp3d(Workload):
    """Molecule moves over a shared space-cell grid."""

    name = "Mp3d"
    input_desc = "128 molecules"
    unit_name = "1 step"

    def __init__(self, num_threads: int, units_per_thread: int = 12,
                 seed: int = 0, compute_per_step: int = 4000) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.compute_per_step = compute_per_step
        alloc = VirtualAllocator()
        #: Space cells: isolated words — conflicts happen only when two
        #: molecules genuinely share a cell.
        self.cells = [alloc.isolated_word() for _ in range(SPACE_CELLS)]
        self.cell_locks = [alloc.isolated_word() for _ in range(SPACE_CELLS)]
        #: Per-thread molecule records (2 words each, private).
        self.molecules = [alloc.words(8) for _ in range(num_threads)]
        #: Global reservoir counter, touched rarely.
        self.reservoir = alloc.isolated_word()

    def _move_tx(self, thread_index: int, rng: random.Random,
                 cell_index: int) -> List[Op]:
        """Move one molecule into ``cell_index``."""
        mol = self.molecules[thread_index]
        ops: List[Op] = [
            Op.load(mol[rng.randrange(len(mol))]),
            Op.store(mol[rng.randrange(len(mol))], rng.randrange(1 << 12)),
        ]
        # Check the adjacent cell's state (read-only) before the move, then
        # update occupancy with a straight fetch-and-add (no read-to-write
        # upgrade on the hot cell word).
        ops.append(Op.load(self.cells[(cell_index + SPACE_CELLS // 2)
                                      % SPACE_CELLS]))
        ops.append(Op.incr(self.cells[cell_index]))
        if rng.random() < COLLISION_PROB:
            # Collision resolution touches neighbouring cells too.
            for d in range(1, rng.randint(2, 8)):
                neighbour = (cell_index + d) % SPACE_CELLS
                ops.append(Op.load(self.cells[neighbour]))
                if rng.random() < 0.5:
                    ops.append(Op.incr(self.cells[neighbour]))
        if rng.random() < 0.015:
            # Rare reservoir rebalance scans a stretch of cells (read tail,
            # Table 2 read max 18).
            start = rng.randrange(SPACE_CELLS - 16)
            for i in range(start, start + rng.randint(8, 14)):
                ops.append(Op.load(self.cells[i]))
            ops.append(Op.incr(self.reservoir))
        return ops

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            for move in range(MOVES_PER_STEP):
                cell = rng.randrange(SPACE_CELLS)
                yield Section(
                    ops=self._move_tx(thread_index, rng, cell),
                    lock=self.cell_locks[cell],
                    label=f"mp3d.move[{thread_index}.{unit}.{move}]")
            yield Section(ops=[Op.compute(self.compute_per_step)],
                          label=f"mp3d.compute[{thread_index}.{unit}]",
                          )
            # The step boundary is the unit of work. The bare reservoir
            # read is faithful to the original benchmark (and baselined
            # under RC001): MP3D polls the reservoir counter outside any
            # lock, accepting a stale value — the paper calls the app
            # out as racy by design. Writers hold per-cell locks, so the
            # locksets genuinely differ.
            yield Section(ops=[Op.load(self.reservoir)],
                          unit=True,
                          label=f"mp3d.step[{thread_index}.{unit}]")
