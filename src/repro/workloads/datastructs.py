"""Data-structure workloads with checkable serializability invariants.

These are not from the paper's Table 2; they are the classic TM
data-structure benchmarks (the lineage of Herlihy & Moss's motivating
examples [15]) and exist to *prove* properties the paper asserts:

* :class:`BankTransfer` — random transfers between accounts. Invariant:
  the sum of all balances is conserved under any interleaving iff
  transactions are atomic and isolated.
* :class:`LinkedListSet` — a concurrent sorted linked list with
  insert-if-absent and delete operations, built on ``Op.call`` pointer
  chasing (each retry re-traverses current memory, as a real retried
  transaction would). Invariant: the final list is sorted, duplicate-free,
  and contains exactly the union of inserted keys minus the deleted ones —
  regardless of signature implementation or conflict policy.

Nodes are two words — ``(key, next)`` — where ``next`` stores the virtual
address of the successor (0 = null). Each thread pre-allocates a node pool;
an insert that loses the race (key already present) simply abandons its
node, so no free-list is needed.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence

from repro.workloads.base import Op, Section, VirtualAllocator, Workload


class BankTransfer(Workload):
    """Random transfers between accounts; total balance is invariant."""

    name = "BankTransfer"
    input_desc = "accounts ledger"
    unit_name = "1 transfer"

    def __init__(self, num_threads: int, units_per_thread: int = 10,
                 num_accounts: int = 64, seed: int = 0,
                 compute_between: int = 100) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.num_accounts = num_accounts
        self.compute_between = compute_between
        alloc = VirtualAllocator()
        #: One account balance per cache block (conflicts are real).
        self.accounts = [alloc.isolated_word() for _ in range(num_accounts)]
        self.locks = [alloc.isolated_word() for _ in range(num_accounts)]
        #: Coarse lock covering a transfer (two accounts would need
        #: ordered two-lock acquisition; the original program uses one
        #: ledger lock, which is exactly the coarse-vs-TM story).
        self.ledger_lock = alloc.isolated_word()

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        for unit in range(self.units_per_thread):
            src = rng.randrange(self.num_accounts)
            dst = rng.randrange(self.num_accounts)
            while dst == src:
                dst = rng.randrange(self.num_accounts)
            amount = rng.randint(1, 100)
            ops = [
                Op.load(self.accounts[src]),
                Op.incr(self.accounts[src], -amount),
                Op.incr(self.accounts[dst], amount),
            ]
            yield Section(ops=ops, lock=self.ledger_lock, unit=True,
                          label=f"transfer[{thread_index}.{unit}]")
            yield Section(ops=[Op.compute(self.compute_between)],
                          label=f"idle[{thread_index}.{unit}]")

    def total_balance(self, system, page_table) -> int:
        return sum(system.memory.load(page_table.translate(a))
                   for a in self.accounts)


class LinkedListSet(Workload):
    """Concurrent sorted linked-list set via transactional pointer chasing.

    Each unit performs one ``insert(key)`` or ``delete(key)`` as a single
    transaction. The operation schedule is generated deterministically from
    the seed, so the expected final membership is computable *without*
    running the simulation — making the run a true serializability check.
    """

    name = "LinkedListSet"
    input_desc = "sorted singly-linked list"
    unit_name = "1 set operation"

    NODE_WORDS = 2  # (key, next)

    def __init__(self, num_threads: int, units_per_thread: int = 8,
                 key_space: int = 64, delete_fraction: float = 0.25,
                 seed: int = 0, compute_between: int = 80) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.key_space = key_space
        self.delete_fraction = delete_fraction
        self.compute_between = compute_between
        alloc = VirtualAllocator()
        #: Head sentinel node: key field unused, next = 0 initially (memory
        #: reads as zero, so an untouched list is empty).
        self.head = alloc.blocks(1)[0]
        #: Per-thread node pools: each op gets a private fresh node.
        pool_size = units_per_thread
        self.pools = [[alloc.blocks(1)[0] for _ in range(pool_size)]
                      for _ in range(num_threads)]
        self.list_lock = alloc.isolated_word()
        #: The full operation schedule, per thread: (kind, key) pairs.
        self.schedule: List[List[tuple]] = []
        sched_rng = random.Random(seed ^ 0x5EED)
        for t in range(num_threads):
            ops = []
            for _ in range(units_per_thread):
                key = 1 + sched_rng.randrange(key_space)  # keys >= 1
                if sched_rng.random() < delete_fraction:
                    ops.append(("delete", key))
                else:
                    ops.append(("insert", key))
            self.schedule.append(ops)

    # -- expected outcome (no simulation needed) ----------------------------

    def expected_membership(self) -> Sequence[int]:
        """Final key set under *any* serializable execution.

        Not every interleaving of inserts/deletes commutes, so in general
        the final set depends on order; to keep the oracle exact, the
        schedule applies deletes only for keys no later insert re-adds.
        ``expected_membership`` accounts for that by replaying the schedule
        per key: a key is present iff its last scheduled operation overall
        is an insert. To make "last" well-defined across threads, the
        generator guarantees each key is either only inserted, or deleted
        by exactly the threads that never re-insert it afterwards.
        """
        inserted = set()
        deleted = set()
        for ops in self.schedule:
            for kind, key in ops:
                if kind == "insert":
                    inserted.add(key)
                else:
                    deleted.add(key)
        # A deleted key stays out only if nothing re-inserts it later in
        # *some* serial order; with both an insert and a delete present,
        # either final state is serializable. Keys with both are therefore
        # excluded from the strict oracle and checked structurally only.
        return sorted(inserted - deleted), sorted(inserted & deleted)

    # -- transactional list operations ---------------------------------------

    def _insert_fn(self, key: int, node_vaddr: int):
        head = self.head

        def insert(core, slot):
            # Prepare the fresh node outside the shared structure.
            yield from core.store(slot, node_vaddr, key)
            prev = head
            curr = yield from core.load(slot, head + 8)
            while curr:
                curr_key = yield from core.load(slot, curr)
                if curr_key >= key:
                    break
                prev = curr
                curr = yield from core.load(slot, curr + 8)
            if curr:
                curr_key = yield from core.load(slot, curr)
                if curr_key == key:
                    return  # already present: insert-if-absent no-op
            yield from core.store(slot, node_vaddr + 8, curr)
            yield from core.store(slot, prev + 8, node_vaddr)

        return insert

    def _delete_fn(self, key: int):
        head = self.head

        def delete(core, slot):
            prev = head
            curr = yield from core.load(slot, head + 8)
            while curr:
                curr_key = yield from core.load(slot, curr)
                if curr_key == key:
                    nxt = yield from core.load(slot, curr + 8)
                    yield from core.store(slot, prev + 8, nxt)
                    return
                if curr_key > key:
                    return  # not present
                prev = curr
                curr = yield from core.load(slot, curr + 8)

        return delete

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        pool = list(self.pools[thread_index])
        for unit, (kind, key) in enumerate(self.schedule[thread_index]):
            if kind == "insert":
                fn = self._insert_fn(key, pool.pop())
            else:
                fn = self._delete_fn(key)
            yield Section(ops=[Op.call(fn)], lock=self.list_lock, unit=True,
                          label=f"list.{kind}[{thread_index}.{unit}]")
            yield Section(ops=[Op.compute(self.compute_between)],
                          label=f"list.idle[{thread_index}.{unit}]")

    # -- post-run inspection ---------------------------------------------------

    def walk(self, system, page_table) -> List[int]:
        """Read the final list out of functional memory."""
        keys = []
        curr = system.memory.load(page_table.translate(self.head + 8))
        seen = set()
        while curr:
            if curr in seen:
                raise AssertionError("cycle in linked list")
            seen.add(curr)
            keys.append(system.memory.load(page_table.translate(curr)))
            curr = system.memory.load(page_table.translate(curr + 8))
        return keys


class HashTable(Workload):
    """Concurrent chained hash table with per-operation transactions.

    Buckets are head pointers into unsorted singly-linked chains of
    ``(key, next)`` nodes (same layout as :class:`LinkedListSet`). Each
    unit is one ``put(key, increment)`` — find the key's node in its chain
    and bump its count word, or link a fresh node at the chain head.

    Nodes carry a third word, the *count*; the oracle is exact: after the
    run, each key's count must equal the number of committed puts for it,
    and the table must contain each inserted key exactly once.
    """

    name = "HashTable"
    input_desc = "chained hash table"
    unit_name = "1 put"

    NODE_WORDS = 3  # (key, next, count)

    def __init__(self, num_threads: int, units_per_thread: int = 8,
                 num_buckets: int = 8, key_space: int = 24,
                 seed: int = 0, compute_between: int = 60) -> None:
        super().__init__(num_threads, units_per_thread, seed)
        self.num_buckets = num_buckets
        self.key_space = key_space
        self.compute_between = compute_between
        alloc = VirtualAllocator()
        self.buckets = [alloc.blocks(1)[0] for _ in range(num_buckets)]
        self.pools = [[alloc.blocks(1)[0] for _ in range(units_per_thread)]
                      for _ in range(num_threads)]
        self.table_lock = alloc.isolated_word()
        sched_rng = random.Random(seed ^ 0x7AB1E)
        self.schedule = [[1 + sched_rng.randrange(key_space)
                          for _ in range(units_per_thread)]
                         for _ in range(num_threads)]

    def bucket_of(self, key: int) -> int:
        return self.buckets[key % self.num_buckets]

    def _put_fn(self, key: int, node_vaddr: int):
        bucket = self.bucket_of(key)

        def put(core, slot):
            curr = yield from core.load(slot, bucket)
            while curr:
                curr_key = yield from core.load(slot, curr)
                if curr_key == key:
                    yield from core.fetch_add(slot, curr + 16, 1)
                    return
                curr = yield from core.load(slot, curr + 8)
            # Absent: initialize a fresh node and link it at the head.
            yield from core.store(slot, node_vaddr, key)
            old_head = yield from core.load(slot, bucket)
            yield from core.store(slot, node_vaddr + 8, old_head)
            yield from core.store(slot, node_vaddr + 16, 1)
            yield from core.store(slot, bucket, node_vaddr)

        return put

    def program(self, thread_index: int,
                rng: random.Random) -> Iterator[Section]:
        pool = list(self.pools[thread_index])
        for unit, key in enumerate(self.schedule[thread_index]):
            fn = self._put_fn(key, pool.pop())
            yield Section(ops=[Op.call(fn)], lock=self.table_lock,
                          unit=True,
                          label=f"hash.put[{thread_index}.{unit}]")
            yield Section(ops=[Op.compute(self.compute_between)],
                          label=f"hash.idle[{thread_index}.{unit}]")

    # -- oracle ----------------------------------------------------------------

    def expected_counts(self) -> dict:
        counts: dict = {}
        for keys in self.schedule:
            for key in keys:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def read_table(self, system, page_table) -> dict:
        """Read the final table: key -> count."""
        out: dict = {}
        for bucket in self.buckets:
            curr = system.memory.load(page_table.translate(bucket))
            seen = set()
            while curr:
                if curr in seen:
                    raise AssertionError("cycle in hash chain")
                seen.add(curr)
                key = system.memory.load(page_table.translate(curr))
                count = system.memory.load(page_table.translate(curr + 16))
                if key in out:
                    raise AssertionError(f"duplicate key {key} in table")
                out[key] = count
                curr = system.memory.load(page_table.translate(curr + 8))
        return out
