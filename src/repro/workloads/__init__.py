"""Workloads: the paper's five benchmarks plus microbenchmarks."""

from repro.workloads.base import (
    Op,
    OpKind,
    Section,
    VirtualAllocator,
    Workload,
    validate_sections,
)
from repro.workloads.berkeleydb import BerkeleyDB
from repro.workloads.datastructs import BankTransfer, HashTable, LinkedListSet
from repro.workloads.cholesky import Cholesky
from repro.workloads.microbench import (
    BigFootprint,
    NestedUpdate,
    RepeatStores,
    SharedCounter,
)
from repro.workloads.mp3d import Mp3d
from repro.workloads.radiosity import Radiosity
from repro.workloads.raytrace import Raytrace

#: The Table 2 benchmark suite, in the paper's order.
PAPER_SUITE = [BerkeleyDB, Cholesky, Radiosity, Raytrace, Mp3d]

__all__ = [
    "BankTransfer",
    "BerkeleyDB",
    "BigFootprint",
    "Cholesky",
    "HashTable",
    "LinkedListSet",
    "Mp3d",
    "NestedUpdate",
    "Op",
    "OpKind",
    "PAPER_SUITE",
    "Radiosity",
    "Raytrace",
    "RepeatStores",
    "Section",
    "SharedCounter",
    "VirtualAllocator",
    "Workload",
    "validate_sections",
]
