"""Deterministic random-number utilities.

Every stochastic component of the simulator (workload generators, the
perturbation used to compute confidence intervals, backoff jitter) draws from
an explicitly seeded :class:`random.Random` derived through this module, so a
run is reproducible from ``(seed, config)`` alone.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")

#: Seed used by harness entry points when the caller does not supply one.
DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int, *streams: object) -> random.Random:
    """Return an independent RNG for a named stream.

    ``streams`` identifies the consumer (e.g. ``("workload", thread_id)``) so
    that adding a new consumer does not perturb the draws seen by existing
    ones — the classic trick for stable pseudo-random simulations.
    """
    key = repr((seed,) + tuple(streams)).encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def perturbed_seeds(seed: int, runs: int) -> List[int]:
    """Seeds for pseudo-randomly perturbed runs (95% CI methodology [2])."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    base = random.Random(seed)
    return [base.randrange(1 << 48) for _ in range(runs)]


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Iterable[float]) -> T:
    """Pick one item with the given relative weights."""
    total = 0.0
    cumulative = []
    for w in weights:
        if w < 0:
            raise ValueError("weights must be non-negative")
        total += w
        cumulative.append(total)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    x = rng.random() * total
    for item, bound in zip(items, cumulative):
        if x < bound:
            return item
    return items[-1]


def zipf_rank(rng: random.Random, n: int, skew: float = 1.0) -> int:
    """Draw a 0-based rank from an (approximate) Zipf distribution over n items.

    Used by workloads whose access popularity is skewed (e.g. hot database
    locks). Implemented by inverse-transform over the harmonic weights; for
    the small ``n`` the workloads use this is exact and cheap to set up.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    total = 0.0
    bounds = []
    for rank in range(1, n + 1):
        total += 1.0 / (rank ** skew)
        bounds.append(total)
    x = rng.random() * total
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if x < bounds[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
