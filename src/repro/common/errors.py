"""Exception hierarchy for the LogTM-SE simulator.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulation made no progress: every runnable process is blocked."""


class ProtocolError(ReproError):
    """The coherence protocol reached an illegal state transition."""


class InvariantViolation(ReproError, AssertionError):
    """A whole-system state audit (``coherence.invariants``) failed.

    Historically this subclassed only ``AssertionError``, which meant the
    intent could be silently weakened by association with ``assert``
    statements (stripped under ``python -O``). It is now a
    :class:`ReproError` first; ``AssertionError`` is kept as a secondary
    base for one release so existing ``except AssertionError`` handlers
    and pytest idioms keep working, and will be dropped afterwards.
    """


class VerificationError(ReproError):
    """A dynamic correctness checker (:mod:`repro.verify`) found a
    violation and the caller asked for strict behaviour (raise instead of
    report)."""


class TransactionError(ReproError):
    """A transactional-memory invariant was violated."""


class AbortTransaction(ReproError):
    """Control-flow signal: the current transaction must abort.

    Raised inside a thread's access path when conflict resolution decides the
    running transaction loses. The CPU access loop catches it, runs the
    software abort handler (log unroll), and restarts the transaction. It is
    an exception rather than a return code so that abort unwinds nested
    generator frames (L1 access, coherence request) in one step.
    """

    def __init__(self, reason: str = "conflict", cause: str = "conflict",
                 fp: bool = False, via: str = "targeted") -> None:
        super().__init__(reason)
        self.reason = reason
        #: Structured provenance for abort attribution (see
        #: :func:`repro.obs.analysis.classify_abort`): the mechanism that
        #: forced the abort, whether every blocking signature hit was
        #: aliasing, and the path the conflict arrived on
        #: ("targeted" / "sticky" / "broadcast").
        self.cause = cause
        self.fp = fp
        self.via = via


class PreemptedAccess(ReproError):
    """Control-flow signal: the OS preempted the thread mid-access.

    Raised from the memory-access retry loop when the scheduler has
    requested preemption (a stalling access is a sequence of retried
    instructions, each an interruptible boundary). The executor catches it,
    parks the thread, and re-issues the same operation after rescheduling —
    possibly on a different core.
    """


class WorkloadError(ReproError):
    """A workload generator produced an invalid operation stream."""
