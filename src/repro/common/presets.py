"""Machine presets beyond the Table 1 baseline.

The paper evaluates one 16-core/32-context CMP; these presets support the
natural follow-on questions — how do the results scale with core count and
SMT width? — plus the small machines the tests use. All derive from the
Table 1 latencies; only the geometry changes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Tuple

from repro.common.config import CacheConfig, SystemConfig


def cmp_preset(num_cores: int, threads_per_core: int = 2) -> SystemConfig:
    """A Table 1-style CMP scaled to a different core count.

    The grid grows to fit; the shared L2 keeps the byte capacity of the
    baseline (scaling questions should vary one thing at a time), but the
    bank count tracks the core count so bank distance stays comparable.
    """
    cols = 1
    while cols * cols < num_cores:
        cols += 1
    rows = (num_cores + cols - 1) // cols
    return replace(
        SystemConfig.default(),
        num_cores=num_cores,
        threads_per_core=threads_per_core,
        mesh_dims=(max(rows, 2), max(cols, 2)),
        l2_banks=max(4, num_cores),
    )


def wide_smt_preset(threads_per_core: int = 4,
                    num_cores: int = 8) -> SystemConfig:
    """Fewer, wider cores: stresses the SMT sibling-check machinery and
    per-context signature replication (the T x L argument of Section 1)."""
    return cmp_preset(num_cores=num_cores,
                      threads_per_core=threads_per_core)


def scaling_series(max_threads: int = 32
                   ) -> Iterator[Tuple[str, SystemConfig, int]]:
    """(label, config, thread-count) points for a thread-scaling study."""
    for cores in (1, 2, 4, 8, 16):
        threads = cores * 2
        if threads > max_threads:
            break
        yield f"{cores}c/{threads}t", cmp_preset(cores), threads
