"""Statistics collection.

Components register named counters and histograms on a shared
:class:`StatsRegistry`; the harness reads them to build the paper's tables.
Keeping statistics out of the functional classes (vs. ad-hoc attributes)
gives a single place to reset between measurement phases — the paper warms
up workloads before measuring "units of work".
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Counter:
    """A monotonically increasing event count (resettable)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Tracks a distribution of integer samples (read-set sizes, latencies)."""

    __slots__ = ("name", "_counts", "_total", "_sum", "_max", "_min")

    def __init__(self, name: str) -> None:
        self.name = name
        self._counts: Dict[int, int] = defaultdict(int)
        self._total = 0
        self._sum = 0
        self._max = 0
        self._min: int = -1

    def record(self, sample: int) -> None:
        self._counts[sample] += 1
        self._total += 1
        self._sum += sample
        if sample > self._max:
            self._max = sample
        if self._min < 0 or sample < self._min:
            self._min = sample

    @property
    def count(self) -> int:
        return self._total

    @property
    def total(self) -> int:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def maximum(self) -> int:
        return self._max

    @property
    def minimum(self) -> int:
        return self._min if self._min >= 0 else 0

    def percentile(self, p: float) -> int:
        """The p-th percentile (0..100) of recorded samples."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._total:
            return 0
        target = math.ceil(self._total * p / 100.0)
        seen = 0
        for sample in sorted(self._counts):
            seen += self._counts[sample]
            if seen >= target:
                return sample
        return self._max

    def items(self) -> Iterable[Tuple[int, int]]:
        return sorted(self._counts.items())

    def reset(self) -> None:
        self._counts.clear()
        self._total = self._sum = self._max = 0
        self._min = -1

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation: name plus sorted (sample, count) pairs."""
        return {"name": self.name,
                "counts": [[sample, count] for sample, count in self.items()]}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Histogram":
        """Inverse of :meth:`to_dict` (used by the sweep result cache/JSON)."""
        hist = Histogram(str(data["name"]))
        for sample, count in data["counts"]:
            hist._counts[int(sample)] = int(count)
            hist._total += int(count)
            hist._sum += int(sample) * int(count)
            if hist._min < 0 or sample < hist._min:
                hist._min = int(sample)
            if sample > hist._max:
                hist._max = int(sample)
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.name == other.name
                and dict(self._counts) == dict(other._counts))

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self._total}, mean={self.mean:.2f},"
                f" max={self._max})")


class StatsRegistry:
    """Namespace of counters and histograms for one simulated system.

    A trace recorder (see :mod:`repro.harness.trace`) may be attached;
    components then emit timestamped lifecycle events through
    :meth:`emit`. With no recorder attached, ``emit`` is one attribute
    check — effectively free.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.recorder = None

    def emit(self, kind: str, **fields) -> None:
        if self.recorder is not None:
            self.recorder.record(kind, **fields)

    def counter(self, name: str) -> Counter:
        """Get (creating if needed) the counter with this name."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def value(self, name: str) -> int:
        """Current value of a counter (0 if it was never touched)."""
        c = self._counters.get(name)
        return c.value if c else 0

    def reset(self) -> None:
        """Zero everything (used at the warmup/measurement boundary)."""
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of all counter values (for reports and tests)."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)


@dataclass
class ConfidenceInterval:
    """Mean and symmetric 95% confidence half-width over perturbed runs."""

    mean: float
    half_width: float
    samples: List[float] = field(default_factory=list)

    @staticmethod
    def from_samples(samples: List[float]) -> "ConfidenceInterval":
        n = len(samples)
        if n == 0:
            raise ValueError("need at least one sample")
        mean = sum(samples) / n
        if n == 1:
            return ConfidenceInterval(mean, 0.0, list(samples))
        var = sum((x - mean) ** 2 for x in samples) / (n - 1)
        # Two-sided 95% t critical values for small n (df = n - 1).
        t_table = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
                   6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}
        t = t_table.get(n - 1, 1.96)
        half = t * math.sqrt(var / n)
        return ConfidenceInterval(mean, half, list(samples))

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """Whether the two 95% intervals overlap (≈ 'not significant')."""
        lo_a, hi_a = self.mean - self.half_width, self.mean + self.half_width
        lo_b, hi_b = other.mean - other.half_width, other.mean + other.half_width
        return lo_a <= hi_b and lo_b <= hi_a

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"
