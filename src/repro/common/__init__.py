"""Shared utilities: configuration, errors, statistics, deterministic RNG."""

from repro.common.config import SystemConfig, TMConfig, SignatureConfig
from repro.common.errors import ReproError
from repro.common.presets import cmp_preset, scaling_series, wide_smt_preset
from repro.common.stats import StatsRegistry

__all__ = ["ReproError", "SignatureConfig", "StatsRegistry", "SystemConfig",
           "TMConfig", "cmp_preset", "scaling_series", "wide_smt_preset"]
