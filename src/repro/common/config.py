"""System configuration.

:class:`SystemConfig` captures the machine model of the paper's Table 1 (the
baseline 16-core CMP of Section 5) plus the TM policy knobs that the
evaluation varies (signature kind/size, log-filter size, sticky states,
coherence style). ``SystemConfig.default()`` reproduces Table 1 exactly.

All latencies are in core cycles at the 5 GHz clock of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.common.errors import ConfigError


class CoherenceStyle(enum.Enum):
    """Which coherence substrate backs conflict detection (Sections 5 & 7)."""

    DIRECTORY = "directory"  # MESI directory at the L2 with sticky states
    SNOOPING = "snooping"    # broadcast snooping with a logically-ORed NACK


class SyncMode(enum.Enum):
    """How critical sections in a workload are executed."""

    LOCKS = "locks"          # test-and-test-and-set spinlocks (baseline)
    TRANSACTIONS = "tm"      # LogTM-SE transactions


class LockImpl(enum.Enum):
    """How the lock baseline implements its mutexes.

    The paper's originals use library mutexes (pthread-style blocking
    locks), which serialize critical sections without coherence ping-pong;
    that is the default. The test-and-test-and-set spinlock runs entirely
    through the simulated memory system and is kept as an ablation of lock
    implementation cost.
    """

    MUTEX = "mutex"  # queued blocking mutex (OS futex model)
    SPIN = "spin"    # test-and-test-and-set through the memory system


class SignatureKind(enum.Enum):
    """Signature implementations from Figure 3 (plus the idealized one)."""

    PERFECT = "perfect"              # exact read/write sets (unimplementable)
    BIT_SELECT = "bs"                # decode low block-address bits (Fig 3a)
    DOUBLE_BIT_SELECT = "dbs"        # decode two fields, AND to test (Fig 3b)
    COARSE_BIT_SELECT = "cbs"        # macroblock-granularity decode (Fig 3c)
    HASHED = "hash"                  # k H3 hashes ("more creative" designs)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int
    latency: int  # uncontended access latency in cycles

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigError("cache size and associativity must be positive")
        if self.block_bytes <= 0 or self.block_bytes & (self.block_bytes - 1):
            raise ConfigError(
                f"block size must be a positive power of two, "
                f"got {self.block_bytes}")
        if self.size_bytes % (self.block_bytes * self.associativity):
            raise ConfigError(
                "cache size must be a whole number of sets "
                f"(size={self.size_bytes}, assoc={self.associativity}, "
                f"block={self.block_bytes})")

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class SignatureConfig:
    """One read/write signature pair's implementation parameters."""

    kind: SignatureKind = SignatureKind.PERFECT
    bits: int = 2048           # total filter bits (ignored for PERFECT)
    granularity: int = 64      # bytes summarized per inserted address
    # DBS: how the bits are split between the two decoded fields. The paper's
    # DBS decodes two equal fields (10+10 bits for a 2Kb signature => two
    # 1024-bit halves).
    dbs_fields: int = 2
    # HASHED: number of independent H3 hash functions.
    hashes: int = 4

    def __post_init__(self) -> None:
        if self.kind is SignatureKind.PERFECT:
            return
        if self.bits <= 0 or self.bits & (self.bits - 1):
            raise ConfigError(
                f"signature bits must be a power of two, got {self.bits}")
        if self.granularity <= 0 or self.granularity & (self.granularity - 1):
            raise ConfigError(
                f"granularity must be a power of two, got {self.granularity}")
        if self.kind is SignatureKind.DOUBLE_BIT_SELECT:
            if self.dbs_fields != 2:
                raise ConfigError("DBS uses exactly two decoded fields")
            if self.bits < 4:
                raise ConfigError("DBS needs at least 4 bits (two 2-bit halves)")
        if self.kind is SignatureKind.HASHED and self.hashes < 1:
            raise ConfigError("hashed signatures need at least one hash")

    def describe(self) -> str:
        """Short human-readable name used in benchmark tables."""
        if self.kind is SignatureKind.PERFECT:
            return "Perfect"
        label = {
            SignatureKind.BIT_SELECT: "BS",
            SignatureKind.DOUBLE_BIT_SELECT: "DBS",
            SignatureKind.COARSE_BIT_SELECT: "CBS",
            SignatureKind.HASHED: f"H{self.hashes}",
        }[self.kind]
        if self.bits >= 1024:
            return f"{label}_{self.bits // 1024}Kb"
        return f"{label}_{self.bits}"


@dataclass(frozen=True)
class TMConfig:
    """LogTM-SE policy parameters."""

    signature: SignatureConfig = field(default_factory=SignatureConfig)
    log_filter_entries: int = 32      # recently-logged-block array per thread
    backoff_base: int = 20            # cycles before retrying a NACKed request
    backoff_jitter: int = 12          # uniform extra cycles to avoid lockstep
    abort_handler_cycles: int = 40    # fixed software abort-handler overhead
    abort_cycles_per_entry: int = 4   # additional cycles per undo-log entry
    commit_cycles: int = 2            # local commit (clear sigs, reset log ptr)
    begin_cycles: int = 2             # register checkpoint + log frame setup
    log_store_cycles: int = 2         # appending one undo record
    max_retries_before_abort: int = 500  # starvation relief; 0 = cycles only
    #: Conflict-resolution policy: "timestamp" (LogTM), "polite", or
    #: "aggressive" (see repro.core.policies).
    contention_policy: str = "timestamp"
    #: Version management: "eager" (LogTM-SE: update in place + undo log)
    #: or "lazy" (Bulk-style: per-thread write buffer, commit-time
    #: signature broadcast under a global commit token, committer wins).
    #: The lazy mode exists as the Section 8 comparator; see
    #: repro/core/manager.py for its documented simplifications.
    version_management: str = "eager"
    # Lazy-mode costs.
    commit_token_broadcast_cycles: int = 30  # write-signature broadcast
    writeback_cycles_per_block: int = 4      # applying one buffered block
    use_summary_signature: bool = True
    use_sticky_states: bool = True
    #: Section 2's address-space-identifier filter on coherence requests:
    #: signatures never NACK another process. Disabling it (ablation)
    #: re-creates the cross-process interference the paper designs away.
    use_asid_filter: bool = True
    #: Original-LogTM mode (Section 8 comparison): read/write sets live in
    #: per-block L1 R/W bits, which cannot be saved or restored — a thread
    #: descheduled mid-transaction must abort. Conflict detection behaves
    #: like perfect signatures (the bits are exact for cached blocks;
    #: sticky states cover overflow as in LogTM).
    classic_logtm: bool = False
    # OS-side costs for virtualization events (Section 4).
    summary_interrupt_cycles: int = 100  # interrupt a context, install summary
    context_switch_cycles: int = 400     # save/restore a thread's state
    # Queued-mutex model costs (LockImpl.MUTEX baseline).
    mutex_acquire_cycles: int = 40       # uncontended atomic + bookkeeping
    mutex_release_cycles: int = 20
    mutex_wakeup_cycles: int = 100       # handoff latency to a blocked waiter

    def __post_init__(self) -> None:
        if self.log_filter_entries < 0:
            raise ConfigError("log_filter_entries must be >= 0")
        if self.backoff_base < 1:
            raise ConfigError("backoff_base must be >= 1")
        if self.version_management not in ("eager", "lazy"):
            raise ConfigError(
                f"version_management must be 'eager' or 'lazy', "
                f"got {self.version_management!r}")

    @property
    def lazy(self) -> bool:
        return self.version_management == "lazy"


@dataclass(frozen=True)
class SystemConfig:
    """Full machine + policy description (Table 1 defaults)."""

    num_cores: int = 16                      # cores per chip
    threads_per_core: int = 2                # 2-way SMT -> 32 contexts
    #: Multiple-CMP system (Section 7): chips connected by a point-to-point
    #: network with a full-map directory at memory. 1 = single-CMP.
    num_chips: int = 1
    interchip_latency: int = 80              # chip-to-chip hop, cycles
    memory_directory_latency: int = 20       # full-map directory at DRAM
    mesh_dims: Tuple[int, int] = (4, 4)      # grid housing cores + L2 banks
    link_latency: int = 3                    # per-hop, cycles
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, associativity=4, block_bytes=64, latency=1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=8 * 1024 * 1024, associativity=8, block_bytes=64,
        latency=34))
    l2_banks: int = 16
    directory_latency: int = 6
    memory_latency: int = 500
    memory_bytes: int = 4 * 1024 * 1024 * 1024
    page_bytes: int = 8192
    tlb_entries: int = 64
    tlb_walk_latency: int = 30               # page-table walk on a TLB miss
    coherence: CoherenceStyle = CoherenceStyle.DIRECTORY
    sync: SyncMode = SyncMode.TRANSACTIONS
    lock_impl: LockImpl = LockImpl.MUTEX
    tm: TMConfig = field(default_factory=TMConfig)

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("need at least one core")
        if self.num_chips < 1:
            raise ConfigError("need at least one chip")
        if self.threads_per_core < 1:
            raise ConfigError("need at least one thread context per core")
        if self.l1.block_bytes != self.l2.block_bytes:
            raise ConfigError("L1 and L2 must use the same block size")
        if self.l2_banks < 1:
            raise ConfigError("need at least one L2 bank")
        if self.l2.size_bytes % self.l2_banks:
            raise ConfigError("L2 size must divide evenly across banks")
        rows, cols = self.mesh_dims
        if rows * cols < self.num_cores:
            raise ConfigError(
                f"mesh {rows}x{cols} cannot place {self.num_cores} cores")
        if self.page_bytes % self.block_bytes:
            raise ConfigError("page size must be a multiple of the block size")

    @property
    def block_bytes(self) -> int:
        return self.l1.block_bytes

    @property
    def total_cores(self) -> int:
        """Cores across all chips."""
        return self.num_cores * self.num_chips

    @property
    def total_threads(self) -> int:
        return self.total_cores * self.threads_per_core

    @staticmethod
    def multichip(num_chips: int = 4, cores_per_chip: int = 4,
                  threads_per_core: int = 1) -> "SystemConfig":
        """A multiple-CMP system (Section 7): N chips, point-to-point
        interconnect, full-map memory directory."""
        base = SystemConfig.small(num_cores=cores_per_chip,
                                  threads_per_core=threads_per_core)
        return replace(base, num_chips=num_chips)

    @staticmethod
    def default() -> "SystemConfig":
        """The baseline 16-core CMP of Table 1."""
        return SystemConfig()

    @staticmethod
    def small(num_cores: int = 4, threads_per_core: int = 1) -> "SystemConfig":
        """A scaled-down machine for fast unit tests."""
        return SystemConfig(
            num_cores=num_cores,
            threads_per_core=threads_per_core,
            mesh_dims=(2, max(2, (num_cores + 1) // 2)),
            l1=CacheConfig(size_bytes=4 * 1024, associativity=2,
                           block_bytes=64, latency=1),
            l2=CacheConfig(size_bytes=64 * 1024, associativity=4,
                           block_bytes=64, latency=10),
            l2_banks=4,
            memory_latency=100,
            memory_bytes=64 * 1024 * 1024,
        )

    def with_signature(self, kind: SignatureKind, bits: int = 2048,
                       granularity: int = 64) -> "SystemConfig":
        """Copy of this config with a different signature implementation."""
        sig = SignatureConfig(kind=kind, bits=bits, granularity=granularity)
        return replace(self, tm=replace(self.tm, signature=sig))

    def with_sync(self, sync: SyncMode) -> "SystemConfig":
        return replace(self, sync=sync)


#: The six synchronization configurations compared in Figure 4.
def figure4_variants(base: SystemConfig = None):
    """Yield ``(label, config)`` pairs for the Figure 4 comparison."""
    base = base or SystemConfig.default()
    yield "Lock", base.with_sync(SyncMode.LOCKS)
    yield "Perfect", base.with_signature(SignatureKind.PERFECT)
    yield "BS_2Kb", base.with_signature(SignatureKind.BIT_SELECT, bits=2048)
    yield "CBS_2Kb", base.with_signature(
        SignatureKind.COARSE_BIT_SELECT, bits=2048, granularity=1024)
    yield "DBS_2Kb", base.with_signature(
        SignatureKind.DOUBLE_BIT_SELECT, bits=2048)
    yield "BS_64", base.with_signature(SignatureKind.BIT_SELECT, bits=64)
