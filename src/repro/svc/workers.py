"""Worker fleet: persistent simulator worker processes.

The parallel engine in :mod:`repro.harness.parallel` launches one
process per task and lets it die; a long-running service amortizes
process startup across jobs instead. :class:`WorkerFleet` keeps a fixed
pool of worker processes alive, each connected to the parent by a
duplex pipe:

* **dispatch** — the parent assigns a :class:`~repro.svc.spec.CellTask`
  to an idle worker (tasks are spec+label pairs, picklable under both
  ``fork`` and ``spawn`` start methods);
* **heartbeat** — an idle worker pings every
  :data:`HEARTBEAT_INTERVAL` seconds; a busy worker is monitored by
  process liveness and its cell deadline;
* **reap** — a worker that dies mid-cell is detected (``is_alive`` +
  broken pipe), its cell reported back as *crashed* so the scheduler
  can re-queue it, and a replacement worker is spawned to keep the
  fleet at strength; a worker past its cell deadline is terminated the
  same way and reported as *timeout*;
* **drain** — graceful shutdown: idle workers get a sentinel and exit
  cleanly, busy workers get until ``timeout`` to finish their cell
  (results are still delivered), stragglers are terminated.

The fleet is deliberately policy-free: *what* to do with a crash or
timeout (retry budgets, failure records) is the scheduler's decision in
:mod:`repro.svc.service`; the fleet only detects and reports.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional

from repro.svc.spec import CellTask

#: Seconds between idle-worker heartbeats.
HEARTBEAT_INTERVAL = 1.0


def _fleet_worker(worker_id: int, conn) -> None:  # pragma: no cover - child
    """Worker main loop: heartbeat while idle, run cells, exit on None."""
    try:
        while True:
            while not conn.poll(HEARTBEAT_INTERVAL):
                conn.send(("hb", worker_id))
            task = conn.recv()
            if task is None:
                conn.send(("bye", worker_id))
                return
            try:
                result = task.run()
            except BaseException:
                conn.send(("error", worker_id, task,
                           traceback.format_exc()))
            else:
                conn.send(("done", worker_id, task, result))
    except (EOFError, OSError, BrokenPipeError):
        return  # parent went away; nothing useful left to do
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


@dataclass
class FleetMessage:
    """One scheduler-relevant fleet occurrence (see ``kind``).

    kinds: ``done`` (result attached), ``error`` (worker raised;
    traceback in ``error``), ``crashed`` (worker died mid-cell),
    ``timeout`` (worker terminated past its cell deadline).
    """

    kind: str
    task: CellTask
    worker_id: int
    result: Optional[object] = None
    error: Optional[str] = None
    exitcode: Optional[int] = None
    wall_time: float = 0.0


class _Worker:
    """Parent-side record of one fleet worker process."""

    __slots__ = ("worker_id", "proc", "conn", "task", "started",
                 "deadline", "last_seen", "cells_done", "draining")

    def __init__(self, worker_id: int, proc, conn) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.task: Optional[CellTask] = None
        self.started = 0.0
        self.deadline: Optional[float] = None
        self.last_seen = time.monotonic()
        self.cells_done = 0
        self.draining = False


class WorkerFleet:
    """Spawn/heartbeat/reap a pool of simulator worker processes."""

    def __init__(self, size: int,
                 emit: Optional[Callable[..., None]] = None) -> None:
        if size < 1:
            raise ValueError(f"fleet size must be >= 1, got {size}")
        self.size = size
        self._emit = emit or (lambda kind, **fields: None)
        self._ctx = _mp_context()
        # Guards _workers / _next_id / restarts / _started: the API
        # methods run on the caller's thread while the scheduler thread
        # polls. Worker *records* (task/deadline/...) are only touched
        # by whoever holds the worker, so the lock covers membership and
        # counters, not per-worker fields.
        self._lock = threading.Lock()
        self._workers: Dict[int, _Worker] = {}
        self._next_id = 0
        self.restarts = 0
        self._started = False

    def _snapshot(self) -> List[_Worker]:
        with self._lock:
            return list(self._workers.values())

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            self._started = True
            need = self.size - len(self._workers)
        for _ in range(need):
            self._spawn()

    def _spawn(self) -> _Worker:
        with self._lock:
            worker_id = self._next_id
            self._next_id += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(target=_fleet_worker,
                                 args=(worker_id, child_conn),
                                 name=f"svc-worker-{worker_id}")
        proc.daemon = True
        proc.start()
        child_conn.close()
        worker = _Worker(worker_id, proc, parent_conn)
        with self._lock:
            self._workers[worker_id] = worker
        self._emit("svc.worker.spawn", worker=worker_id)
        return worker

    def _reap(self, worker: _Worker) -> None:
        with self._lock:
            self._workers.pop(worker.worker_id, None)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join()

    def alive_count(self) -> int:
        return sum(1 for w in self._snapshot() if w.proc.is_alive())

    def idle_count(self) -> int:
        return sum(1 for w in self._snapshot()
                   if w.task is None and not w.draining
                   and w.proc.is_alive())

    def busy_count(self) -> int:
        return sum(1 for w in self._snapshot() if w.task is not None)

    def busy_tasks(self) -> List[CellTask]:
        return [w.task for w in self._snapshot()
                if w.task is not None]

    def restart_count(self) -> int:
        with self._lock:
            return self.restarts

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, task: CellTask,
                 timeout: Optional[float] = None) -> Optional[int]:
        """Hand a cell to an idle worker; its id, or None if saturated.

        ``timeout`` is the cell's wall-clock budget in seconds; the
        worker is terminated (and the cell reported as ``timeout``) if
        it is still running past it.
        """
        for worker in self._snapshot():
            if worker.task is None and not worker.draining \
                    and worker.proc.is_alive():
                worker.task = task
                worker.started = time.monotonic()
                worker.deadline = (worker.started + timeout
                                   if timeout is not None else None)
                try:
                    worker.conn.send(task)
                except (OSError, BrokenPipeError):
                    worker.task = None
                    continue  # dying worker; the next poll reaps it
                return worker.worker_id
        return None

    # -- monitoring --------------------------------------------------------

    def poll(self, wait: float = 0.05) -> List[FleetMessage]:
        """Collect finished cells, crashes, and timeouts; keep strength.

        Blocks up to ``wait`` seconds for worker traffic, then performs
        one sweep of message draining, liveness checks, deadline
        enforcement, and respawning (unless draining).
        """
        conns = [w.conn for w in self._snapshot()]
        if conns:
            try:
                mp_connection.wait(conns, timeout=wait)
            except OSError:
                pass
        messages: List[FleetMessage] = []
        for worker in self._snapshot():
            messages.extend(self._poll_worker(worker))
        with self._lock:
            respawn = 0
            if self._started:
                live = sum(1 for w in self._workers.values()
                           if w.proc.is_alive() or w.draining)
                respawn = max(0, self.size - live)
                self.restarts += respawn
        for _ in range(respawn):
            self._spawn()
        return messages

    def _poll_worker(self, worker: _Worker) -> List[FleetMessage]:
        messages: List[FleetMessage] = []
        # Drain everything the worker has sent.
        while True:
            try:
                if not worker.conn.poll():
                    break
                payload = worker.conn.recv()
            except (EOFError, OSError):
                break  # died mid-send; the liveness check below handles it
            kind = payload[0]
            if kind == "hb":
                worker.last_seen = time.monotonic()
            elif kind == "bye":
                worker.draining = True
            elif kind in ("done", "error"):
                _kind, _wid, task, tail = payload
                wall = time.monotonic() - worker.started
                worker.task = None
                worker.deadline = None
                worker.last_seen = time.monotonic()
                worker.cells_done += 1
                if kind == "done":
                    messages.append(FleetMessage(
                        "done", task, worker.worker_id, result=tail,
                        wall_time=wall))
                else:
                    messages.append(FleetMessage(
                        "error", task, worker.worker_id, error=tail,
                        wall_time=wall))
        if not worker.proc.is_alive():
            exitcode = worker.proc.exitcode
            task = worker.task
            self._reap(worker)
            if worker.draining and task is None:
                self._emit("svc.worker.exit", worker=worker.worker_id)
            else:
                self._emit("svc.worker.crash", worker=worker.worker_id,
                           exitcode=exitcode)
                if task is not None:
                    messages.append(FleetMessage(
                        "crashed", task, worker.worker_id,
                        exitcode=exitcode,
                        wall_time=time.monotonic() - worker.started))
            return messages
        if (worker.deadline is not None and worker.task is not None
                and time.monotonic() > worker.deadline):
            task = worker.task
            self._emit("svc.worker.timeout", worker=worker.worker_id,
                       job=task.job_id, label=task.label)
            self._reap(worker)
            messages.append(FleetMessage(
                "timeout", task, worker.worker_id,
                wall_time=time.monotonic() - worker.started))
        return messages

    # -- cancellation / shutdown ------------------------------------------

    def terminate_job(self, job_id: str) -> List[CellTask]:
        """Kill workers running the job's cells; return the killed cells.

        Replacement workers are spawned on the next :meth:`poll`, so a
        cancelled job does not shrink the fleet.
        """
        killed: List[CellTask] = []
        for worker in self._snapshot():
            if worker.task is not None and worker.task.job_id == job_id:
                killed.append(worker.task)
                worker.task = None
                self._reap(worker)
        return killed

    def drain(self, timeout: float = 10.0) -> List[FleetMessage]:
        """Graceful shutdown: finish in-flight cells, then stop everyone.

        Returns any messages (completions included) collected while
        draining, so the caller can persist late results.
        """
        with self._lock:
            self._started = False  # no respawns from here on
        deadline = time.monotonic() + timeout
        messages: List[FleetMessage] = []
        for worker in self._snapshot():
            if worker.task is None and not worker.draining:
                worker.draining = True
                try:
                    worker.conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
        while self._snapshot() and time.monotonic() < deadline:
            messages.extend(self.poll(wait=0.05))
            for worker in self._snapshot():
                if worker.task is None and not worker.draining:
                    worker.draining = True
                    try:
                        worker.conn.send(None)
                    except (OSError, BrokenPipeError):
                        pass
            if all(w.draining and w.task is None
                   for w in self._snapshot()):
                # Everyone acknowledged; give them a moment to exit.
                for worker in self._snapshot():
                    worker.proc.join(timeout=max(
                        0.0, deadline - time.monotonic()))
                    if not worker.proc.is_alive():
                        self._emit("svc.worker.exit",
                                   worker=worker.worker_id)
                    self._reap(worker)
        self.stop()
        return messages

    def stop(self) -> None:
        """Hard stop: terminate every remaining worker immediately."""
        with self._lock:
            self._started = False
        for worker in self._snapshot():
            self._reap(worker)
