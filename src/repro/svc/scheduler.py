"""Scheduling: the durable job queue and its state machine.

:class:`JobQueue` is a thread-safe priority+FIFO queue of job ids.
Priority orders first (higher runs earlier); within a priority class,
submission order wins. The queue holds only ids — the job records
themselves live in the :class:`~repro.svc.repository.RunRepository`,
which is what makes the queue *durable*: a restarted service rebuilds
it from the repository's ``queued`` rows (:meth:`JobQueue.restore`).

The legal state machine, enforced by :func:`check_transition`::

    queued ──> running ──> done
       │          │  └───> failed
       │          └──────> cancelled     (DELETE mid-run)
       └─────────────────> cancelled     (DELETE while queued)

Terminal states (``done`` / ``failed`` / ``cancelled``) admit no
further transitions.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError

#: state -> states it may legally move to.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "queued": ("running", "cancelled"),
    "running": ("done", "failed", "cancelled"),
    "done": (),
    "failed": (),
    "cancelled": (),
}


class StateError(ReproError):
    """An illegal job state transition was attempted."""


def check_transition(old: str, new: str) -> None:
    """Raise :class:`StateError` unless ``old -> new`` is legal."""
    if old not in TRANSITIONS:
        raise StateError(f"unknown job state {old!r}")
    if new not in TRANSITIONS:
        raise StateError(f"unknown job state {new!r}")
    if new not in TRANSITIONS[old]:
        raise StateError(f"illegal transition {old!r} -> {new!r}")


class JobQueue:
    """Thread-safe priority+FIFO queue of job ids.

    ``push`` wakes one waiting ``pop``; ``pop`` blocks (with optional
    timeout) until a job or :meth:`close`. ``remove`` supports
    cancellation of still-queued jobs in O(n) — queues are human-scale
    (thousands), not packet-scale.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str]] = []
        self._removed: set = set()
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False

    def push(self, job_id: str, priority: int = 0) -> None:
        with self._cond:
            if self._closed:
                raise StateError("queue is closed")
            heapq.heappush(self._heap, (-priority, next(self._seq), job_id))
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next job id by (priority, FIFO); None on timeout or close."""
        with self._cond:
            while True:
                while self._heap:
                    _neg, _seq, job_id = heapq.heappop(self._heap)
                    if job_id in self._removed:
                        self._removed.discard(job_id)
                        continue
                    return job_id
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def remove(self, job_id: str) -> bool:
        """Lazily drop a queued job (cancellation); True if it was queued."""
        with self._cond:
            present = any(jid == job_id and jid not in self._removed
                          for _p, _s, jid in self._heap)
            if present:
                self._removed.add(job_id)
            return present

    def depth(self) -> int:
        with self._cond:
            return len(self._heap) - len(self._removed)

    def close(self) -> None:
        """Wake all waiters; subsequent pops drain then return None."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def restore(self, jobs: List[dict]) -> int:
        """Refill from recovered repository rows (oldest first)."""
        for job in jobs:
            self.push(job["id"], priority=job.get("priority", 0))
        return len(jobs)
