"""Thin stdlib HTTP client for the sweep service.

:class:`ServiceClient` wraps :mod:`urllib.request` so the CLI (``repro
submit`` / ``repro jobs``) and tests talk to a running ``repro serve``
without any third-party dependency. Every method mirrors one route in
:mod:`repro.svc.api`; payloads are returned as parsed JSON.

Server-side errors surface as :class:`ClientError` carrying the HTTP
status and the server's ``{"error": ...}`` message, so callers can
distinguish "bad spec" (400) from "no such job" (404) without parsing
exception strings.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.common.errors import ReproError


class ClientError(ReproError):
    """An HTTP request to the sweep service failed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Client for one sweep-service endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 query: Optional[Dict[str, Any]] = None) -> Any:
        url = self.base_url + path
        if query:
            url += "?" + urllib.parse.urlencode(query, doseq=True)
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or exc.reason
            raise ClientError(exc.code, message)
        except urllib.error.URLError as exc:
            raise ClientError(0, f"cannot reach {self.base_url}: "
                                 f"{exc.reason}")

    # -- routes ------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(self, spec: dict, priority: int = 0) -> dict:
        """POST a sweep spec; returns the created job record."""
        return self._request("POST", "/sweeps",
                             body={"spec": spec, "priority": priority})

    def jobs(self, state: Optional[str] = None, limit: int = 50) -> List[dict]:
        query: Dict[str, Any] = {"limit": limit}
        if state:
            query["state"] = state
        return self._request("GET", "/sweeps", query=query)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/sweeps/{job_id}")

    def results(self, job_id: str, labels: Optional[List[str]] = None,
                fields: Optional[str] = None,
                digests_only: bool = False) -> Dict[str, dict]:
        query: Dict[str, Any] = {}
        if labels:
            query["label"] = labels
        if fields:
            query["fields"] = fields
        if digests_only:
            query["include"] = "digests"
        return self._request("GET", f"/sweeps/{job_id}/results",
                             query=query or None)["results"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/sweeps/{job_id}")

    def events(self, job_id: str, follow: bool = False) -> Iterator[dict]:
        """Yield the job's progress events as dicts (NDJSON stream).

        With ``follow=True`` the generator blocks on the live stream
        until the job reaches a terminal state.
        """
        url = (f"{self.base_url}/sweeps/{job_id}/events"
               + ("?follow=1" if follow else ""))
        request = urllib.request.Request(url)
        timeout = None if follow else self.timeout
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or exc.reason
            raise ClientError(exc.code, message)

    # -- conveniences ------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.25) -> dict:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ClientError(
                    0, f"job {job_id} still {job['state']!r} after "
                       f"{timeout:g}s")
            time.sleep(poll)
