"""Sweep service: a persistent job server over the parallel engine.

This package turns the one-shot sweep harness
(:func:`repro.harness.sweep.run_sweep`) into a long-running service:

* :mod:`repro.svc.spec` — :class:`SweepSpec`, the JSON-serializable
  description of a variant grid, and :class:`CellTask`, one executable
  (spec, label) cell;
* :mod:`repro.svc.scheduler` — the durable priority+FIFO
  :class:`JobQueue` and the job state machine;
* :mod:`repro.svc.workers` — :class:`WorkerFleet`, persistent worker
  processes with heartbeat/crash/timeout detection and graceful drain;
* :mod:`repro.svc.repository` — :class:`RunRepository`, SQLite
  persistence keyed by the same content address as
  :class:`~repro.harness.parallel.ResultCache`, so identical cells
  dedupe to one execution across submissions;
* :mod:`repro.svc.service` — :class:`SweepService`, the orchestrator
  tying the above together and publishing ``svc.*`` events/metrics
  through :mod:`repro.obs`;
* :mod:`repro.svc.api` — the stdlib HTTP layer (``repro serve``);
* :mod:`repro.svc.client` — :class:`ServiceClient` for ``repro
  submit`` / ``repro jobs`` and tests.

Importing the package is side-effect free: no sockets, threads, or
processes are created until :meth:`SweepService.start` /
:func:`repro.svc.api.serve` are called explicitly.
"""

from repro.svc.repository import RunRepository, result_digest
from repro.svc.scheduler import JobQueue, StateError, check_transition
from repro.svc.service import ServiceError, SweepService
from repro.svc.spec import CellTask, SpecError, SweepSpec
from repro.svc.workers import WorkerFleet

__all__ = [
    "CellTask",
    "JobQueue",
    "RunRepository",
    "ServiceError",
    "SpecError",
    "StateError",
    "SweepService",
    "SweepSpec",
    "WorkerFleet",
    "check_transition",
    "result_digest",
]
