"""Persistence: the run repository and durable job store (SQLite).

Two responsibilities, one database file:

* **Run repository** — every :class:`~repro.harness.runner.RunResult`
  the service has ever produced (or imported from the on-disk
  :class:`~repro.harness.parallel.ResultCache`), keyed by the *same*
  content-address the cache uses. That shared key is the dedupe
  mechanism: when a new submission contains a cell whose key is already
  present — from any earlier submission — the stored result is served
  and no worker runs. Results are stored as their canonical JSON record
  plus a SHA-256 ``digest`` of it, so clients can compare runs across
  submissions (and against the committed ``BENCH_*.json`` digests)
  without transferring the records.

* **Job store** — every submitted job (spec, priority, state-machine
  timestamps) and its per-cell execution ledger (state, source,
  attempts/retries/timeouts, wall time). Jobs survive a service
  restart: :meth:`RunRepository.recover` re-queues anything left
  ``queued`` or ``running`` by a previous process.

SQLite is accessed through short-lived connections (WAL mode, busy
timeout), so API handler threads, the scheduler thread, and external
inspection tools can all touch the file concurrently.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.harness.runner import RunResult
from repro.svc.spec import SweepSpec

#: Job lifecycle states (the scheduler enforces the transitions).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: Cell lifecycle states.
CELL_STATES = ("pending", "running", "done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    cache_key   TEXT PRIMARY KEY,
    digest      TEXT NOT NULL,
    result_json TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    seq          INTEGER PRIMARY KEY AUTOINCREMENT,
    id           TEXT UNIQUE,
    spec_json    TEXT NOT NULL,
    state        TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    error        TEXT
);
CREATE TABLE IF NOT EXISTS cells (
    job_id    TEXT NOT NULL,
    label     TEXT NOT NULL,
    cache_key TEXT NOT NULL,
    state     TEXT NOT NULL,
    source    TEXT,
    attempts  INTEGER NOT NULL DEFAULT 0,
    retries   INTEGER NOT NULL DEFAULT 0,
    timeouts  INTEGER NOT NULL DEFAULT 0,
    wall_time REAL NOT NULL DEFAULT 0,
    error     TEXT,
    PRIMARY KEY (job_id, label)
);
CREATE INDEX IF NOT EXISTS cells_by_key ON cells (cache_key);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
"""


def result_digest(record: Dict[str, Any]) -> str:
    """Canonical SHA-256 of a JSON-safe result record.

    Same canonicalization as the benchmark suite's ``result_digest``
    (sorted keys, compact separators), so digests are comparable across
    the service, ``repro bench``, and ad-hoc tooling.
    """
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class RunRepository:
    """SQLite-backed store of runs and jobs (see module docstring)."""

    def __init__(self, path: object) -> None:
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """Short-lived connection: commit (or roll back) and close."""
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            with conn:
                yield conn
        finally:
            conn.close()

    # -- runs (content-addressed results) ----------------------------------

    def store_run(self, cache_key: str, result: RunResult) -> str:
        """Persist one result; returns its digest.

        First write wins (``INSERT OR IGNORE``): cells are deterministic
        functions of their key, so a concurrent duplicate is identical
        by construction and need not be rewritten.
        """
        record = result.to_dict()
        digest = result_digest(record)
        with self._connect() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO runs "
                "(cache_key, digest, result_json, created_at) "
                "VALUES (?, ?, ?, ?)",
                (cache_key, digest, json.dumps(record), time.time()))
        return digest

    def load_run(self, cache_key: str) -> Optional[RunResult]:
        record = self.load_run_record(cache_key)
        if record is None:
            return None
        return RunResult.from_dict(record)

    def load_run_record(self, cache_key: str) -> Optional[Dict[str, Any]]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT result_json FROM runs WHERE cache_key = ?",
                (cache_key,)).fetchone()
        if row is None:
            return None
        return json.loads(row["result_json"])

    def run_digest(self, cache_key: str) -> Optional[str]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT digest FROM runs WHERE cache_key = ?",
                (cache_key,)).fetchone()
        return None if row is None else row["digest"]

    def have_runs(self, cache_keys: Iterable[str]) -> Dict[str, bool]:
        keys = list(cache_keys)
        out = {key: False for key in keys}
        with self._connect() as conn:
            for key in keys:
                row = conn.execute(
                    "SELECT 1 FROM runs WHERE cache_key = ?",
                    (key,)).fetchone()
                out[key] = row is not None
        return out

    def run_count(self) -> int:
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # -- jobs --------------------------------------------------------------

    def create_job(self, spec: SweepSpec, priority: int = 0,
                   cache_keys: Optional[Dict[str, str]] = None
                   ) -> Dict[str, Any]:
        """Insert a job (state ``queued``) and its pending cell ledger.

        Returns the job record. The job id is readable and collision
        free: a monotonic sequence number plus a prefix of the spec
        digest (``j000007-3fa9c1d2``).
        """
        spec_json = json.dumps(spec.to_dict(), sort_keys=True)
        spec_digest = hashlib.sha256(
            spec_json.encode("utf-8")).hexdigest()[:8]
        keys = cache_keys if cache_keys is not None else spec.cache_keys()
        now = time.time()
        with self._connect() as conn:
            cur = conn.execute(
                "INSERT INTO jobs (id, spec_json, state, priority, "
                "submitted_at) VALUES (NULL, ?, 'queued', ?, ?)",
                (spec_json, priority, now))
            job_id = f"j{cur.lastrowid:06d}-{spec_digest}"
            conn.execute("UPDATE jobs SET id = ? WHERE seq = ?",
                         (job_id, cur.lastrowid))
            conn.executemany(
                "INSERT INTO cells (job_id, label, cache_key, state) "
                "VALUES (?, ?, ?, 'pending')",
                [(job_id, label, key) for label, key in keys.items()])
        return self.get_job(job_id)

    def set_job_state(self, job_id: str, state: str,
                      error: Optional[str] = None) -> None:
        assert state in JOB_STATES, state
        stamp = ("started_at" if state == "running" else
                 "finished_at" if state in ("done", "failed", "cancelled")
                 else None)
        with self._connect() as conn:
            if stamp:
                conn.execute(
                    f"UPDATE jobs SET state = ?, error = ?, {stamp} = ? "
                    "WHERE id = ?", (state, error, time.time(), job_id))
            else:
                conn.execute(
                    "UPDATE jobs SET state = ?, error = ? WHERE id = ?",
                    (state, error, job_id))

    def get_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._connect() as conn:
            row = conn.execute("SELECT * FROM jobs WHERE id = ?",
                               (job_id,)).fetchone()
            if row is None:
                return None
            cells = conn.execute(
                "SELECT * FROM cells WHERE job_id = ? ORDER BY rowid",
                (job_id,)).fetchall()
        return self._job_dict(row, cells)

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 50) -> List[Dict[str, Any]]:
        query = "SELECT * FROM jobs"
        params: Tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY seq DESC LIMIT ?"
        with self._connect() as conn:
            rows = conn.execute(query, params + (limit,)).fetchall()
            counts = conn.execute(
                "SELECT job_id, state, COUNT(*) AS n FROM cells "
                "GROUP BY job_id, state").fetchall()
        by_job: Dict[str, Dict[str, int]] = {}
        for entry in counts:
            by_job.setdefault(entry["job_id"], {})[entry["state"]] = \
                entry["n"]
        jobs = []
        for row in rows:
            job = self._job_dict(row, None)
            job["cell_counts"] = by_job.get(row["id"], {})
            jobs.append(job)
        return jobs

    @staticmethod
    def _job_dict(row: sqlite3.Row,
                  cells: Optional[List[sqlite3.Row]]) -> Dict[str, Any]:
        out = {
            "id": row["id"], "state": row["state"],
            "priority": row["priority"],
            "spec": json.loads(row["spec_json"]),
            "submitted_at": row["submitted_at"],
            "started_at": row["started_at"],
            "finished_at": row["finished_at"],
            "error": row["error"],
        }
        if cells is not None:
            out["cells"] = [
                {"label": c["label"], "state": c["state"],
                 "source": c["source"], "attempts": c["attempts"],
                 "retries": c["retries"], "timeouts": c["timeouts"],
                 "wall_time": c["wall_time"], "error": c["error"],
                 "cache_key": c["cache_key"]}
                for c in cells]
            counts: Dict[str, int] = {}
            for cell in out["cells"]:
                counts[cell["state"]] = counts.get(cell["state"], 0) + 1
            out["cell_counts"] = counts
        return out

    # -- cells -------------------------------------------------------------

    def update_cell(self, job_id: str, label: str, **fields: Any) -> None:
        allowed = {"state", "source", "attempts", "retries", "timeouts",
                   "wall_time", "error"}
        unknown = set(fields) - allowed
        assert not unknown, unknown
        sets = ", ".join(f"{name} = ?" for name in fields)
        with self._connect() as conn:
            conn.execute(
                f"UPDATE cells SET {sets} WHERE job_id = ? AND label = ?",
                tuple(fields.values()) + (job_id, label))

    def cells_in_state(self, job_id: str, state: str) -> List[str]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT label FROM cells WHERE job_id = ? AND state = ? "
                "ORDER BY rowid", (job_id, state)).fetchall()
        return [row["label"] for row in rows]

    def results_for_job(self, job_id: str,
                        labels: Optional[Iterable[str]] = None
                        ) -> Dict[str, Dict[str, Any]]:
        """label -> {result record, digest, execution metadata}.

        Only terminal cells appear; a cell whose run record is missing
        (failed/cancelled) carries ``result: None``.
        """
        wanted = set(labels) if labels is not None else None
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT c.*, r.digest AS digest, "
                "r.result_json AS result_json "
                "FROM cells c LEFT JOIN runs r "
                "ON c.cache_key = r.cache_key "
                "WHERE c.job_id = ? ORDER BY c.rowid", (job_id,)).fetchall()
        out: Dict[str, Dict[str, Any]] = {}
        for row in rows:
            if wanted is not None and row["label"] not in wanted:
                continue
            done = row["state"] == "done"
            out[row["label"]] = {
                "state": row["state"],
                "source": row["source"],
                "attempts": row["attempts"],
                "retries": row["retries"],
                "timeouts": row["timeouts"],
                "wall_time": row["wall_time"],
                "error": row["error"],
                "digest": row["digest"] if done else None,
                "result": (json.loads(row["result_json"])
                           if done and row["result_json"] else None),
            }
        return out

    # -- restart recovery --------------------------------------------------

    def recover(self) -> List[Dict[str, Any]]:
        """Re-queue jobs a previous process left unfinished.

        ``running`` jobs go back to ``queued`` and their ``running``
        cells back to ``pending`` (results already persisted keep their
        cells ``done``, so recovered jobs only re-run what was actually
        in flight). Returns the jobs now queued, oldest first.
        """
        with self._connect() as conn:
            conn.execute(
                "UPDATE cells SET state = 'pending' WHERE state = 'running' "
                "AND job_id IN (SELECT id FROM jobs WHERE state IN "
                "('queued', 'running'))")
            conn.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL "
                "WHERE state = 'running'")
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued' "
                "ORDER BY seq").fetchall()
        return [self._job_dict(row, None) for row in rows]
