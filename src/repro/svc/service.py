"""The sweep service: queue + fleet + repository + cache, orchestrated.

:class:`SweepService` is the hub every other ``repro.svc`` module plugs
into. A submission flows through it as::

    POST /sweeps ──> SweepSpec ──> RunRepository.create_job (queued)
                                        │
                 JobQueue (priority+FIFO, durable via the repository)
                                        │
                scheduler thread: for each cell of the job
                    repository hit? ──────────────> cell done (repo)
                    ResultCache hit? ─> store+done  (cache)
                    else ─> WorkerFleet.dispatch ─> run ─> store+done
                                        │
                    crash/timeout ─> re-queue (retry budget) or failed

Progress is published on a :class:`repro.obs.bus.EventBus` (``svc.*``
events, wall-clock milliseconds since service start) feeding a global
ring buffer, per-job event logs (the ``/events`` NDJSON endpoint), and
a :class:`repro.obs.metrics.MetricsRegistry` (queue depth, cells/sec,
cache hit rate, worker restarts — the ``/metrics`` endpoint).

Execution semantics are inherited from the parallel engine: per-cell
timeout and retry budgets (``SweepSpec.timeout`` / ``retries``),
crashes re-queued, worker exceptions terminal (a deterministic model
error will not heal on retry). Timeouts *are* retried here — unlike
the one-shot CLI default — because wall-clock deadlines on a shared
box are not deterministic (see ``execute_tasks(retry_timeouts=)``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.common.errors import ReproError
from repro.harness.parallel import ResultCache
from repro.obs.bus import EventBus, RingBufferLog
from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry
from repro.svc.repository import RunRepository
from repro.svc.scheduler import JobQueue, check_transition
from repro.svc.spec import CellTask, SweepSpec
from repro.svc.workers import WorkerFleet

#: Events kept per job for the ``/events`` endpoint.
MAX_JOB_EVENTS = 10_000


class ServiceError(ReproError):
    """A request the service cannot honour (unknown job, bad state...)."""


class SweepService:
    """A persistent sweep job server over the parallel engine."""

    def __init__(self, db_path: object,
                 workers: int = 2,
                 cache: Optional[ResultCache] = None,
                 drain_timeout: float = 10.0) -> None:
        self.repository = RunRepository(db_path)
        self.queue = JobQueue()
        self.cache = cache
        self.drain_timeout = drain_timeout
        self._t0 = time.monotonic()
        self.bus = EventBus(clock=self._clock, strict=True)
        self.metrics = MetricsRegistry()
        self.log = RingBufferLog(max_events=100_000)
        self.bus.subscribe(self.log)
        self.bus.subscribe(self.metrics)
        self.bus.subscribe(self._job_event_sink)
        self.fleet = WorkerFleet(workers, emit=self._emit)
        self._job_events: Dict[str, List[Event]] = {}
        self._events_lock = threading.Lock()
        self._cancel_requested: set = set()
        self._cancel_lock = threading.Lock()
        self._stop = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        # Guards _current_job: written by the scheduler thread, read by
        # health() on API threads.
        self._state_lock = threading.Lock()
        self._current_job: Optional[str] = None

    # -- observability plumbing -------------------------------------------

    def _clock(self) -> int:
        return int((time.monotonic() - self._t0) * 1000)

    def _emit(self, kind: str, **fields: Any) -> None:
        fields.setdefault("ts", round(time.time(), 3))
        self.bus.record(kind, **fields)

    def _job_event_sink(self, event: Event) -> None:
        job_id = event.fields.get("job")
        if job_id is None:
            return
        with self._events_lock:
            events = self._job_events.setdefault(job_id, [])
            if len(events) < MAX_JOB_EVENTS:
                events.append(event)

    def job_events(self, job_id: str, since: int = 0) -> List[Event]:
        """The job's recorded events from index ``since`` onward."""
        with self._events_lock:
            return list(self._job_events.get(job_id, [])[since:])

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Recover unfinished jobs, start the fleet and scheduler."""
        recovered = self.repository.recover()
        self.queue.restore(recovered)
        self.metrics.gauge("svc.queue.depth").set(self.queue.depth())
        self.fleet.start()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="svc-scheduler", daemon=True)
        self._scheduler.start()

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service; with ``drain``, let in-flight cells finish.

        Queued jobs stay queued in the repository, and the interrupted
        job (if any) is normalized back to ``queued`` with its finished
        cells kept — a restarted service resumes exactly where this one
        stopped.
        """
        timeout = self.drain_timeout if timeout is None else timeout
        self._emit("svc.drain", busy=self.fleet.busy_count())
        self._stop.set()
        self.queue.close()
        if self._scheduler is not None:
            self._scheduler.join(timeout=timeout + 5.0)
        if drain:
            for message in self.fleet.drain(timeout=timeout):
                if message.kind == "done":
                    self._store_late_result(message.task, message.result)
        else:
            self.fleet.stop()
        self.repository.recover()  # normalize interrupted state to queued

    def _store_late_result(self, task: CellTask, result) -> None:
        """Persist a result that arrived while draining."""
        self.repository.store_run(task.cache_key, result)
        if self.cache is not None:
            self.cache.store(task.cache_key, result)
        self.repository.update_cell(task.job_id, task.label,
                                    state="done", source="executed")

    # -- client surface ----------------------------------------------------

    def submit(self, spec_data: Dict[str, Any],
               priority: int = 0) -> Dict[str, Any]:
        """Validate, persist, and enqueue one sweep; returns the job."""
        spec = (spec_data if isinstance(spec_data, SweepSpec)
                else SweepSpec.from_dict(spec_data))
        job = self.repository.create_job(spec, priority=priority,
                                         cache_keys=spec.cache_keys())
        self.queue.push(job["id"], priority=priority)
        self.metrics.counter("svc.jobs.submitted").add()
        self.metrics.gauge("svc.queue.depth").set(self.queue.depth())
        self._emit("svc.job.submitted", job=job["id"],
                   cells=len(job["cells"]), priority=priority)
        return job

    def job(self, job_id: str) -> Dict[str, Any]:
        job = self.repository.get_job(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id}")
        return job

    def jobs(self, state: Optional[str] = None,
             limit: int = 50) -> List[Dict[str, Any]]:
        return self.repository.list_jobs(state=state, limit=limit)

    def results(self, job_id: str,
                labels: Optional[Iterable[str]] = None
                ) -> Dict[str, Dict[str, Any]]:
        self.job(job_id)  # raises on unknown id
        return self.repository.results_for_job(job_id, labels=labels)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued or running job; terminal jobs are an error."""
        job = self.job(job_id)
        if job["state"] in ("done", "failed", "cancelled"):
            raise ServiceError(
                f"job {job_id} is already {job['state']}")
        with self._cancel_lock:
            self._cancel_requested.add(job_id)
        if self.queue.remove(job_id):
            # Still queued: finalize here; the scheduler never sees it.
            check_transition("queued", "cancelled")
            self._finalize_cancel(job_id)
        self.metrics.gauge("svc.queue.depth").set(self.queue.depth())
        return self.job(job_id)

    def _finalize_cancel(self, job_id: str) -> None:
        for label in self.repository.cells_in_state(job_id, "pending"):
            self.repository.update_cell(job_id, label, state="cancelled")
        for label in self.repository.cells_in_state(job_id, "running"):
            self.repository.update_cell(job_id, label, state="cancelled")
        self.repository.set_job_state(job_id, "cancelled")
        self.metrics.counter("svc.jobs.cancelled").add()
        self._emit("svc.job.cancelled", job=job_id)
        with self._cancel_lock:
            self._cancel_requested.discard(job_id)

    def _cancelled(self, job_id: str) -> bool:
        with self._cancel_lock:
            return job_id in self._cancel_requested

    # -- health / metrics --------------------------------------------------

    def health(self) -> Dict[str, Any]:
        with self._state_lock:
            current = self._current_job
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._t0, 3),
            "workers_alive": self.fleet.alive_count(),
            "queue_depth": self.queue.depth(),
            "current_job": current,
            "runs_stored": self.repository.run_count(),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        uptime = max(time.monotonic() - self._t0, 1e-9)
        executed = snapshot.get("svc.cells.executed", 0)
        cache_hits = (snapshot.get("svc.cells.cache_hits", 0)
                      + snapshot.get("svc.cells.repo_hits", 0))
        resolved = executed + cache_hits
        snapshot["svc.uptime_seconds"] = round(uptime, 3)
        snapshot["svc.cells.per_second"] = round(resolved / uptime, 6)
        snapshot["svc.cache.hit_rate"] = (
            round(cache_hits / resolved, 6) if resolved else 0.0)
        snapshot["svc.workers.alive"] = self.fleet.alive_count()
        snapshot["svc.workers.restarts"] = self.fleet.restart_count()
        snapshot["svc.queue.depth"] = self.queue.depth()
        return snapshot

    # -- the scheduler loop ------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            job_id = self.queue.pop(timeout=0.2)
            self.metrics.gauge("svc.queue.depth").set(self.queue.depth())
            if job_id is None:
                continue
            if self._cancelled(job_id):
                self._finalize_cancel(job_id)
                continue
            with self._state_lock:
                self._current_job = job_id
            try:
                self._run_job(job_id)
            except Exception as exc:  # defensive: keep the loop alive
                self.repository.set_job_state(job_id, "failed",
                                              error=repr(exc))
                self.metrics.counter("svc.jobs.failed").add()
                self._emit("svc.job.failed", job=job_id, failed=-1)
            finally:
                with self._state_lock:
                    self._current_job = None

    def _run_job(self, job_id: str) -> None:
        job = self.repository.get_job(job_id)
        if job is None or job["state"] != "queued":
            return
        check_transition("queued", "running")
        self.repository.set_job_state(job_id, "running")
        self._emit("svc.job.started", job=job_id)
        spec = SweepSpec.from_dict(job["spec"])
        keys = {cell["label"]: cell["cache_key"] for cell in job["cells"]}

        # Resolve what we can without running anything: repository first
        # (cross-submission dedupe), then the on-disk cache. Cells a
        # previous incarnation already finished (restart recovery) are
        # skipped outright.
        pending: List[str] = []
        for cell in job["cells"]:
            if cell["state"] != "pending":
                continue
            label = cell["label"]
            if not self._resolve_without_execution(job_id, label,
                                                   keys[label]):
                pending.append(label)

        attempts: Dict[str, int] = {}
        timeouts: Dict[str, int] = {}
        inflight: set = set()
        interrupted = False

        while pending or inflight:
            if self._cancelled(job_id):
                for task in self.fleet.terminate_job(job_id):
                    inflight.discard(task.label)
                self._finalize_cancel(job_id)
                return
            if self._stop.is_set():
                interrupted = True
                if not inflight:
                    break
            else:
                while pending and self.fleet.idle_count() > 0:
                    label = pending.pop(0)
                    task = CellTask(job_id=job_id, label=label,
                                    spec=spec, cache_key=keys[label])
                    worker_id = self.fleet.dispatch(task,
                                                    timeout=spec.timeout)
                    if worker_id is None:
                        pending.insert(0, label)
                        break
                    attempts[label] = attempts.get(label, 0) + 1
                    inflight.add(label)
                    self.repository.update_cell(
                        job_id, label, state="running",
                        attempts=attempts[label],
                        retries=attempts[label] - 1,
                        timeouts=timeouts.get(label, 0))
                    self._emit("svc.cell.dispatch", job=job_id,
                               label=label, worker=worker_id)
            for message in self.fleet.poll(wait=0.05):
                label = message.task.label
                if message.task.job_id != job_id:
                    continue  # a cancelled predecessor's stray result
                inflight.discard(label)
                if message.kind == "done":
                    self._record_done(message.task, message.result,
                                      source="executed",
                                      wall_time=message.wall_time,
                                      attempts=attempts.get(label, 1),
                                      timeouts=timeouts.get(label, 0))
                elif message.kind == "error":
                    self._record_failed(job_id, label, message.error)
                elif message.kind in ("crashed", "timeout"):
                    if message.kind == "timeout":
                        timeouts[label] = timeouts.get(label, 0) + 1
                        self.metrics.counter("svc.worker.timeouts").add()
                    if attempts.get(label, 0) <= spec.retries:
                        pending.append(label)
                        self.metrics.counter("svc.cells.requeued").add()
                        self._emit("svc.cell.requeued", job=job_id,
                                   label=label, cause=message.kind,
                                   attempts=attempts.get(label, 0))
                    else:
                        reason = (
                            f"worker {message.kind} after "
                            f"{attempts.get(label, 0)} attempt(s)"
                            + (f" (exit code {message.exitcode})"
                               if message.exitcode is not None else ""))
                        self._record_failed(job_id, label, reason)

        if interrupted:
            return  # shutdown(): recover() will re-queue this job
        ledger = self.repository.get_job(job_id)
        failed = ledger["cell_counts"].get("failed", 0)
        if failed:
            check_transition("running", "failed")
            self.repository.set_job_state(
                job_id, "failed", error=f"{failed} cell(s) failed")
            self.metrics.counter("svc.jobs.failed").add()
            self._emit("svc.job.failed", job=job_id, failed=failed)
        else:
            check_transition("running", "done")
            self.repository.set_job_state(job_id, "done")
            self.metrics.counter("svc.jobs.done").add()
            self._emit(
                "svc.job.done", job=job_id,
                executed=sum(1 for c in ledger["cells"]
                             if c["source"] == "executed"),
                cache_hits=sum(1 for c in ledger["cells"]
                               if c["source"] == "cache"),
                repo_hits=sum(1 for c in ledger["cells"]
                              if c["source"] == "repository"))

    # -- cell resolution ---------------------------------------------------

    def _resolve_without_execution(self, job_id: str, label: str,
                                   cache_key: str) -> bool:
        """Serve a cell from the repository or cache; True if satisfied."""
        record = self.repository.load_run(cache_key)
        if record is not None:
            if self.cache is not None and self.cache.load(cache_key) is None:
                self.cache.store(cache_key, record)
            self.repository.update_cell(job_id, label, state="done",
                                        source="repository")
            self.metrics.counter("svc.cells.repo_hits").add()
            self._emit("svc.cell.done", job=job_id, label=label,
                       source="repository", wall_time=0.0, attempts=0)
            return True
        if self.cache is not None:
            result = self.cache.load(cache_key)
            if result is not None:
                self.repository.store_run(cache_key, result)
                self.repository.update_cell(job_id, label, state="done",
                                            source="cache")
                self.metrics.counter("svc.cells.cache_hits").add()
                self._emit("svc.cell.done", job=job_id, label=label,
                           source="cache", wall_time=0.0, attempts=0)
                return True
        return False

    def _record_done(self, task: CellTask, result, source: str,
                     wall_time: float, attempts: int,
                     timeouts: int) -> None:
        self.repository.store_run(task.cache_key, result)
        if self.cache is not None:
            self.cache.store(task.cache_key, result)
        self.repository.update_cell(
            task.job_id, task.label, state="done", source=source,
            attempts=attempts, retries=max(attempts - 1, 0),
            timeouts=timeouts, wall_time=wall_time)
        self.metrics.counter("svc.cells.executed").add()
        self._emit("svc.cell.done", job=task.job_id, label=task.label,
                   source=source, wall_time=round(wall_time, 6),
                   attempts=attempts)

    def _record_failed(self, job_id: str, label: str,
                       reason: Optional[str]) -> None:
        reason = reason or "unknown failure"
        self.repository.update_cell(job_id, label, state="failed",
                                    error=reason)
        self.metrics.counter("svc.cells.failed").add()
        self._emit("svc.cell.failed", job=job_id, label=label,
                   reason=reason.strip().splitlines()[-1])
