"""Sweep specifications: the JSON-safe unit of submission.

A :class:`SweepSpec` names a variant grid the same way the ``repro
sweep`` CLI does — a workload, a variant family (``designs`` /
``sizes`` / ``figure4``), and the knobs that family takes — but as a
value object that round-trips through JSON. It is the contract shared
by every layer of the service: the HTTP API validates one per ``POST
/sweeps``, the repository persists it with the job, and fleet workers
rebuild the exact cell to run from ``(spec, label)`` alone, so a cell
travels between processes as two small strings rather than a pickled
closure.

The variant grid a spec expands to is *identical* to what ``repro
sweep`` builds for the same arguments, and the content-address of each
cell (:meth:`SweepSpec.cache_keys`) is the very same
:meth:`~repro.harness.parallel.ResultCache.key` the CLI path uses —
that shared key is what makes service results byte-identical to, and
dedupe against, direct ``run_sweep`` invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.config import (SignatureKind, SystemConfig,
                                 figure4_variants)
from repro.common.errors import ReproError
from repro.common.rng import DEFAULT_SEED
from repro.harness.parallel import ResultCache, workload_fingerprint
from repro.harness.runner import DEFAULT_CYCLE_LIMIT
from repro.harness.sweep import (Variant, signature_design_variants,
                                 signature_size_variants)
from repro.workloads.base import Workload

#: Variant families a spec can request (mirrors ``repro sweep --mode``).
SWEEP_MODES: Tuple[str, ...] = ("designs", "sizes", "figure4")

#: Baseline label per mode (``None`` — sizes — means no speedup column).
MODE_BASELINES: Dict[str, Optional[str]] = {
    "designs": "Perfect", "sizes": None, "figure4": "Lock"}


class SpecError(ReproError):
    """A submitted sweep specification is invalid (HTTP 400)."""


def _workload_classes() -> Dict[str, type]:
    from repro.harness import experiments as E
    return E.WORKLOAD_CLASSES


@dataclass(frozen=True)
class SweepSpec:
    """One sweep submission: workload + variant family + execution knobs.

    Frozen and fully JSON-safe; two specs with equal fields expand to
    identical cells with identical cache keys.
    """

    workload: str
    mode: str = "designs"
    threads: int = 8
    units: int = 2
    seed: int = DEFAULT_SEED
    bits: int = 2048                      # designs mode
    kind: str = "bs"                      # sizes mode: signature design
    sizes: Tuple[int, ...] = (64, 256, 2048)
    granularity: int = 1024               # sizes mode: CBS macroblock bytes
    cycle_limit: int = DEFAULT_CYCLE_LIMIT
    verify: bool = False
    #: Per-cell wall-clock timeout in seconds (None: no deadline).
    timeout: Optional[float] = None
    #: Worker relaunches after a crash or timeout.
    retries: int = 1

    def __post_init__(self) -> None:
        if self.workload not in _workload_classes():
            raise SpecError(
                f"unknown workload {self.workload!r}; choose from "
                f"{sorted(_workload_classes())}")
        if self.mode not in SWEEP_MODES:
            raise SpecError(f"unknown mode {self.mode!r}; choose from "
                            f"{list(SWEEP_MODES)}")
        if self.threads < 1 or self.units < 1:
            raise SpecError("threads and units must be >= 1")
        if self.mode == "sizes":
            try:
                kind = SignatureKind(self.kind)
            except ValueError:
                raise SpecError(f"unknown signature kind {self.kind!r}")
            if kind is SignatureKind.PERFECT:
                raise SpecError("sizes mode needs an inexact signature")
            if not self.sizes:
                raise SpecError("sizes mode needs at least one size")
        if self.retries < 0:
            raise SpecError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise SpecError(f"timeout must be > 0, got {self.timeout}")

    # -- expansion ---------------------------------------------------------

    def variants(self) -> List[Variant]:
        """The ``(label, config)`` grid this spec names."""
        base = SystemConfig.default()
        if self.mode == "designs":
            return signature_design_variants(self.bits, base=base)
        if self.mode == "sizes":
            return signature_size_variants(
                SignatureKind(self.kind), sizes=list(self.sizes),
                base=base, granularity=self.granularity)
        return list(figure4_variants(base))

    @property
    def baseline_label(self) -> Optional[str]:
        return MODE_BASELINES[self.mode]

    def labels(self) -> List[str]:
        return [label for label, _cfg in self.variants()]

    def make_workload(self) -> Workload:
        cls = _workload_classes()[self.workload]
        return cls(num_threads=self.threads, units_per_thread=self.units,
                   seed=self.seed)

    def workload_factory(self) -> Callable[[], Workload]:
        return self.make_workload

    def cache_keys(self, cache: Optional[ResultCache] = None
                   ) -> Dict[str, str]:
        """label -> content-address, exactly as the CLI sweep computes it.

        The key binds the code version, config, workload fingerprint,
        seed, label, cycle limit and verify mode — so a repository or
        cache entry written by either path satisfies the other.
        """
        cache = cache or ResultCache("/nonexistent")
        fingerprint = workload_fingerprint(self.make_workload())
        return {label: cache.key(cfg, fingerprint, self.seed, label,
                                 self.cycle_limit, verify=self.verify)
                for label, cfg in self.variants()}

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload, "mode": self.mode,
            "threads": self.threads, "units": self.units,
            "seed": self.seed, "bits": self.bits, "kind": self.kind,
            "sizes": list(self.sizes), "granularity": self.granularity,
            "cycle_limit": self.cycle_limit, "verify": self.verify,
            "timeout": self.timeout, "retries": self.retries,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SweepSpec":
        """Build and validate a spec from an untrusted JSON payload."""
        if not isinstance(data, dict):
            raise SpecError("sweep spec must be a JSON object")
        if "workload" not in data:
            raise SpecError("sweep spec needs a 'workload' field")
        known = {"workload", "mode", "threads", "units", "seed", "bits",
                 "kind", "sizes", "granularity", "cycle_limit", "verify",
                 "timeout", "retries"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown spec field(s): {unknown}")
        kwargs = dict(data)
        try:
            if "sizes" in kwargs:
                kwargs["sizes"] = tuple(int(s) for s in kwargs["sizes"])
            for key in ("threads", "units", "seed", "bits", "granularity",
                        "cycle_limit", "retries"):
                if key in kwargs:
                    kwargs[key] = int(kwargs[key])
            if kwargs.get("timeout") is not None:
                kwargs["timeout"] = float(kwargs["timeout"])
            kwargs["verify"] = bool(kwargs.get("verify", False))
            return SweepSpec(**kwargs)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"malformed sweep spec: {exc}")


@dataclass(frozen=True)
class CellTask:
    """One cell of one job, as dispatched to a fleet worker.

    Everything a worker needs travels in the task: the spec (to rebuild
    config + workload deterministically) and the label selecting the
    cell. ``cache_key`` rides along so the worker's *parent* can store
    the result without recomputing it.
    """

    job_id: str
    label: str
    spec: SweepSpec
    cache_key: str

    def run(self):
        """Execute this cell; returns the :class:`RunResult`.

        Runs inside a fleet worker process. Mirrors the single-task path
        in :mod:`repro.harness.parallel` (including dropping the live
        ``verify_report`` before the result crosses a process boundary).
        """
        from repro.harness.runner import run_workload
        for label, cfg in self.spec.variants():
            if label == self.label:
                break
        else:
            raise SpecError(f"label {self.label!r} not in spec grid")
        result = run_workload(cfg, self.spec.make_workload(),
                              seed=self.spec.seed,
                              cycle_limit=self.spec.cycle_limit,
                              config_label=self.label,
                              verify=self.spec.verify)
        result.verify_report = None
        return result
