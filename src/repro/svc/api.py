"""REST API over :class:`~repro.svc.service.SweepService` (stdlib only).

Routes (all JSON unless noted)::

    GET    /healthz                liveness + fleet/queue summary
    GET    /metrics                counters, gauges, derived rates
    POST   /sweeps                 submit a SweepSpec; 201 + job record
    GET    /sweeps                 list jobs (?state=, ?limit=)
    GET    /sweeps/{id}            job status + per-cell ledger
    GET    /sweeps/{id}/results    results (?label= repeatable,
                                   ?fields= comma-projected record keys,
                                   ?include=digests omits full records)
    GET    /sweeps/{id}/events     NDJSON progress events; ?follow=1
                                   streams live until the job is
                                   terminal (close-delimited)
    DELETE /sweeps/{id}            cancel (queued or running)

``POST /sweeps`` accepts either a bare spec object or
``{"spec": {...}, "priority": N}``. Errors are JSON too:
``{"error": "..."}`` with 400 (bad spec), 404 (unknown job), 409
(illegal cancel), 405, or 500.

Built on :class:`http.server.ThreadingHTTPServer` — one OS thread per
in-flight request, which is plenty for a control-plane API whose heavy
lifting happens in the worker fleet, and keeps the service entirely
inside the standard library.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple
from urllib.parse import parse_qs, urlparse

from repro.svc.service import ServiceError, SweepService
from repro.svc.spec import SpecError

#: Poll interval while following a job's event stream.
FOLLOW_POLL_SECONDS = 0.1


class SweepServer(ThreadingHTTPServer):
    """The HTTP server, carrying the service for its handler threads."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: SweepService) -> None:
        super().__init__(address, SweepRequestHandler)
        self.service = service


class SweepRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the service; see the module docstring."""

    server: SweepServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> SweepService:
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:
        pass  # request logging rides the svc.* event stream instead

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"request body is not JSON: {exc}")

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

    # -- methods -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path, query = self._route()
        try:
            if path == "/healthz":
                self._send_json(self.service.health())
            elif path == "/metrics":
                self._send_json(self.service.metrics_snapshot())
            elif path == "/sweeps":
                state = query.get("state", [None])[0]
                limit = int(query.get("limit", ["50"])[0])
                self._send_json(
                    {"jobs": self.service.jobs(state=state, limit=limit)})
            elif path.startswith("/sweeps/"):
                self._get_sweep(path, query)
            else:
                self._send_error_json(404, f"no such route: {path}")
        except ServiceError as exc:
            self._send_error_json(404, str(exc))
        except (ValueError, SpecError) as exc:
            self._send_error_json(400, str(exc))

    def _get_sweep(self, path: str, query: Dict[str, Any]) -> None:
        parts = path.split("/")  # ['', 'sweeps', id, (sub)]
        job_id = parts[2]
        sub = parts[3] if len(parts) > 3 else None
        if sub is None:
            self._send_json(self.service.job(job_id))
        elif sub == "results":
            labels = query.get("label") or None
            results = self.service.results(job_id, labels=labels)
            fields = query.get("fields", [None])[0]
            if query.get("include", [None])[0] == "digests":
                for entry in results.values():
                    entry["result"] = None
            elif fields:
                wanted = [f.strip() for f in fields.split(",") if f.strip()]
                for entry in results.values():
                    if entry["result"] is not None:
                        entry["result"] = {key: entry["result"].get(key)
                                           for key in wanted}
            self._send_json({"job": job_id, "results": results})
        elif sub == "events":
            follow = query.get("follow", ["0"])[0] in ("1", "true")
            self._stream_events(job_id, follow)
        else:
            self._send_error_json(404, f"no such route: {path}")

    def _stream_events(self, job_id: str, follow: bool) -> None:
        job = self.service.job(job_id)  # 404s before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        # Close-delimited stream: no Content-Length, explicit close.
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        index = 0
        while True:
            for event in self.service.job_events(job_id, since=index):
                line = json.dumps(event.to_dict()) + "\n"
                self.wfile.write(line.encode("utf-8"))
                index += 1
            self.wfile.flush()
            if not follow:
                return
            job = self.service.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                # Flush anything emitted between the last drain and the
                # terminal-state read, then finish the stream.
                for event in self.service.job_events(job_id, since=index):
                    line = json.dumps(event.to_dict()) + "\n"
                    self.wfile.write(line.encode("utf-8"))
                    index += 1
                self.wfile.flush()
                return
            time.sleep(FOLLOW_POLL_SECONDS)

    def do_POST(self) -> None:  # noqa: N802
        path, _query = self._route()
        if path != "/sweeps":
            self._send_error_json(404 if path.startswith("/sweeps")
                                  else 405, f"cannot POST {path}")
            return
        try:
            body = self._read_body()
            priority = 0
            spec_data = body
            if isinstance(body, dict) and "spec" in body:
                spec_data = body["spec"]
                priority = int(body.get("priority", 0))
            job = self.service.submit(spec_data, priority=priority)
        except SpecError as exc:
            self._send_error_json(400, str(exc))
        except (TypeError, ValueError) as exc:
            self._send_error_json(400, f"malformed submission: {exc}")
        else:
            self._send_json(job, status=201)

    def do_DELETE(self) -> None:  # noqa: N802
        path, _query = self._route()
        parts = path.split("/")
        if len(parts) != 3 or parts[1] != "sweeps":
            self._send_error_json(405, f"cannot DELETE {path}")
            return
        try:
            job = self.service.cancel(parts[2])
        except ServiceError as exc:
            status = 409 if "already" in str(exc) else 404
            self._send_error_json(status, str(exc))
        else:
            self._send_json(job)


def serve(service: SweepService, host: str = "127.0.0.1",
          port: int = 8642) -> SweepServer:
    """Bind a :class:`SweepServer`; the caller drives ``serve_forever``.

    ``port=0`` picks a free port (tests); the bound address is on
    ``server.server_address``.
    """
    return SweepServer((host, port), service)
