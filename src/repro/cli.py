"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates any of the paper's tables/figures from a shell, without writing
a script::

    python -m repro table1
    python -m repro table2 --scale quick
    python -m repro fig3
    python -m repro fig4 --scale quick --workloads Cholesky Mp3d
    python -m repro table3 --scale quick --jobs 4
    python -m repro victimization --scale quick
    python -m repro table4
    python -m repro run BerkeleyDB --threads 16 --units 2 --signature bs \\
        --bits 2048
    python -m repro run SharedCounter --threads 8 --verify
    python -m repro sweep Mp3d --mode sizes --sizes 64 2048 --jobs 4
    python -m repro bench --check
    python -m repro bench --suite fig4_cell --label after-tuning
    python -m repro trace SharedCounter --threads 4 --out counter.trace.json
    python -m repro lint
    python -m repro lint --self --format json
    python -m repro mc --fabric directory --state-cap 5000
    python -m repro mc --fabric snooping --mutate eager-e-grant \\
        --dump counterexample.json

The global ``--json`` flag switches every command from rendered tables to
structured JSON records (``RunResult``/``SweepResult`` serializations or
experiment row dicts) for downstream tooling. ``sweep`` keeps an on-disk
result cache (``~/.cache/repro/sweeps`` or ``$REPRO_CACHE_DIR``): repeat
an invocation and only missing cells execute. ``trace`` runs one workload
with the observability bus attached and writes a Chrome Trace Event JSON
(open it in Perfetto or ``chrome://tracing``); ``sweep --trace-dir DIR``
does the same per variant.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from repro.common.config import SignatureKind, SyncMode, SystemConfig
from repro.harness import experiments as E
from repro.harness.parallel import (ResultCache, SweepExecutionError,
                                    run_parallel_sweep)
from repro.harness.runner import run_workload
from repro.svc.spec import SWEEP_MODES, SpecError, SweepSpec


def _scale(name: str) -> E.ExperimentScale:
    return E.QUICK if name == "quick" else E.FULL


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=["quick", "full"],
                        default="quick",
                        help="experiment size (default: quick)")


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_nonneg_int, default=1,
                        help="parallel worker processes (0 = one per CPU; "
                             "default: 1, serial)")


def _emit_json(payload) -> int:
    """Print one JSON document (dataclass rows are serialized as dicts)."""
    def default(obj):
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return dataclasses.asdict(obj)
        raise TypeError(
            f"not JSON serializable: {type(obj).__name__}")
    print(json.dumps(payload, indent=2, default=default))
    return 0


def _cmd_table1(args) -> int:
    if args.json:
        return _emit_json([{"parameter": k, "setting": v}
                           for k, v in E.table1_rows()])
    print(E.render_table1())
    return 0


def _cmd_table2(args) -> int:
    rows = E.table2(_scale(args.scale), seed=args.seed)
    if args.json:
        return _emit_json(rows)
    print(E.render_table2(rows))
    return 0


def _cmd_fig3(args) -> int:
    points = E.figure3(seed=args.seed)
    attribution = E.figure3_attribution(seed=args.seed)
    if args.json:
        return _emit_json({"points": points, "attribution": attribution})
    print(E.render_figure3(points))
    print()
    print(E.render_figure3_attribution(attribution))
    return 0


def _cmd_fig4(args) -> int:
    cells = E.figure4(_scale(args.scale), seed=args.seed,
                      workloads=args.workloads, jobs=args.jobs)
    if args.json:
        return _emit_json(cells)
    print(E.render_figure4(cells))
    return 0


def _cmd_table3(args) -> int:
    rows = E.table3(_scale(args.scale), seed=args.seed, jobs=args.jobs)
    if args.json:
        return _emit_json(rows)
    print(E.render_table3(rows))
    return 0


def _cmd_victimization(args) -> int:
    rows = E.victimization(_scale(args.scale), seed=args.seed)
    if args.json:
        return _emit_json(rows)
    print(E.render_victimization(rows))
    return 0


def _cmd_table4(args) -> int:
    if args.json:
        return _emit_json(E.TABLE4_MATRIX)
    print(E.render_table4())
    return 0


def _cmd_run(args) -> int:
    if args.workload not in E.WORKLOAD_CLASSES:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{sorted(E.WORKLOAD_CLASSES)}", file=sys.stderr)
        return 2
    cfg = SystemConfig.default()
    if args.locks:
        cfg = cfg.with_sync(SyncMode.LOCKS)
    else:
        cfg = cfg.with_signature(SignatureKind(args.signature),
                                 bits=args.bits)
    workload = E.WORKLOAD_CLASSES[args.workload](
        num_threads=args.threads, units_per_thread=args.units,
        seed=args.seed)
    # run_workload labels the run itself ("locks" for the lock baseline,
    # the signature name otherwise), so output is uniform across modes.
    result = run_workload(cfg, workload, seed=args.seed, verify=args.verify)
    if args.json:
        return _emit_json(result.to_dict())
    print(f"workload   : {workload.describe()}")
    print(f"config     : {result.config_label}")
    print(f"cycles     : {result.cycles:,}")
    print(f"units      : {result.units}")
    print(f"commits    : {result.commits}")
    print(f"aborts     : {result.aborts}")
    print(f"stalls     : {result.stalls}")
    print(f"fp conflict: {result.false_positive_pct:.1f}%")
    if args.verify:
        report = result.verify_report
        if report is not None and report.disabled_reason:
            print(f"verify     : disabled ({report.disabled_reason})")
        else:
            print(f"verify     : {len(result.verify_checks_run)} checker(s), "
                  f"{len(result.verify_violations)} violation(s)")
        for violation in result.verify_violations:
            print(f"  [{violation['rule']}] {violation['message']}")
        if result.verify_violations:
            return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.verify.lint import lint_paths, render_findings

    paths = args.paths
    if args.self:
        from repro.verify.selflint import selflint_paths
        findings = selflint_paths(paths or None)
        if not paths:
            import repro
            paths = [str(__import__("pathlib").Path(
                repro.__file__).parent)]
    else:
        if not paths:
            # Default target: the bundled workload definitions, wherever
            # the package is installed.
            import repro.workloads
            paths = [str(__import__("pathlib").Path(
                repro.workloads.__file__).parent)]
        findings = lint_paths(paths)
    # Findings always exit nonzero, whatever the output format.
    if args.format == "json" or args.json:
        _emit_json([dataclasses.asdict(f) for f in findings])
        return 1 if findings else 0
    if findings:
        print(render_findings(findings))
        print(f"{len(findings)} finding(s) in {len(paths)} path(s)")
        return 1
    print(f"clean: no findings in {', '.join(paths)}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import (analyze_paths, render_sarif, render_text,
                                rules_catalog)

    if args.protocol:
        return _cmd_analyze_protocol(args)
    if args.coverage or args.dump_table:
        print("analyze: --coverage/--dump-table require --protocol",
              file=sys.stderr)
        return 2

    paths = args.paths
    if not paths:
        import repro
        paths = [str(__import__("pathlib").Path(repro.__file__).parent)]
    findings = analyze_paths(paths)

    if args.update_baseline:
        return _write_baseline(args, findings)

    findings, new, status = _apply_baseline_arg(args, findings)
    if status:
        return status

    if args.format == "sarif":
        print(render_sarif(findings, rules_catalog()))
    elif args.format == "json" or args.json:
        _emit_json([f.to_dict() for f in findings])
    else:
        print(render_text(findings))
    return 1 if new else 0


def _write_baseline(args, findings) -> int:
    """``--update-baseline``: rewrite the findings baseline, exit 2 on
    an unwritable target (a traceback here used to mask typos in CI
    paths)."""
    from repro.analysis import default_baseline_path, save_baseline

    target = args.baseline or default_baseline_path() or \
        "ANALYSIS_BASELINE.json"
    try:
        save_baseline(target, findings)
    except OSError as exc:
        print(f"analyze: cannot write baseline {target!r}: {exc}",
              file=sys.stderr)
        return 2
    print(f"analyze: baseline written to {target} "
          f"({len(findings)} finding(s))")
    return 0


def _apply_baseline_arg(args, findings):
    """(marked findings, new findings, error status) for --baseline."""
    from repro.analysis import (apply_baseline, default_baseline_path,
                                load_baseline)
    from repro.analysis.baseline import BaselineError

    baseline_path = default_baseline_path(args.baseline)
    if baseline_path is None:
        return findings, findings, 0
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return findings, findings, 2
    findings, new = apply_baseline(findings, baseline)
    return findings, new, 0


def _cmd_analyze_protocol(args) -> int:
    """``repro analyze --protocol``: transition-table conformance.

    Extracts each fabric's transition table, checks it against the
    declarative spec (PC001-PC004), and optionally dumps the tables
    (``--dump-table DIR``) or fuses them with bounded model-checker
    reachability (``--coverage FABRIC``). Paths default to the
    ``repro.coherence`` package — the extractor resolves ``super()``
    delegation, so the fabrics' shared base must be in scope.
    """
    from repro.analysis import render_sarif, render_text, rules_catalog
    from repro.analysis.engine import build_project
    from repro.analysis.protocol import (check_extraction, extract_tables,
                                         tables_json)
    from repro.analysis.protomodel import render_tables

    paths = args.paths
    if not paths:
        import repro.coherence
        paths = [str(__import__("pathlib").Path(
            repro.coherence.__file__).parent)]
    extractions = extract_tables(build_project(paths))
    if not extractions:
        print("analyze: no coherence fabric classes found under "
              f"{', '.join(paths)}", file=sys.stderr)
        return 2
    tables = [e.table for e in extractions]

    if args.dump_table:
        os.makedirs(args.dump_table, exist_ok=True)
        for kind, payload in sorted(tables_json(extractions).items()):
            target = os.path.join(args.dump_table, f"{kind}.json")
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"analyze: wrote {target}")

    findings = []
    for extraction in extractions:
        findings.extend(check_extraction(extraction))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.update_baseline:
        return _write_baseline(args, findings)
    findings, new, status = _apply_baseline_arg(args, findings)
    if status:
        return status

    reports = []
    if args.coverage:
        report, status = _protocol_coverage(args, extractions)
        if status:
            return status
        reports.append(report)

    if args.format == "sarif":
        print(render_sarif(findings, rules_catalog()))
    elif args.format == "json" or args.json:
        _emit_json({
            "tables": tables_json(extractions),
            "findings": [f.to_dict() for f in findings],
            "coverage": [r.to_dict() for r in reports],
        })
    else:
        print(render_tables(tables))
        if findings:
            print(render_text(findings))
        else:
            print("protocol: no conformance findings")
        for report in reports:
            print(report.render())
    failed = bool(new) or any(not r.clean for r in reports)
    return 1 if failed else 0


def _protocol_coverage(args, extractions):
    """Run the bounded exploration behind ``--coverage FABRIC``."""
    from repro.mc import (DEFAULT_STATE_CAP, ModelConfig,
                          TransitionCoverage, check, compare_coverage)

    by_kind = {e.kind: e.table for e in extractions}
    if args.coverage not in by_kind:
        print(f"analyze: no extracted table for fabric "
              f"{args.coverage!r} (found: {', '.join(sorted(by_kind))})",
              file=sys.stderr)
        return None, 2
    cap = (args.state_cap if args.state_cap is not None
           else DEFAULT_STATE_CAP)
    coverage = TransitionCoverage(args.coverage)
    result = check(ModelConfig(fabric=args.coverage), state_cap=cap,
                   observer=coverage)
    if not result.clean:
        # Coverage of a violating fabric is meaningless; surface the
        # model-checking failure instead.
        print(f"analyze: model check failed: {result.summary()}",
              file=sys.stderr)
        return None, 2
    return compare_coverage(args.coverage, by_kind[args.coverage].keys(),
                            coverage), 0


def _cmd_mc(args) -> int:
    from repro.common.config import ConfigError
    from repro.mc import DEFAULT_STATE_CAP, ModelConfig, check
    from repro.verify.faults import MUTATIONS

    cap = (args.state_cap if args.state_cap is not None
           else DEFAULT_STATE_CAP)
    try:
        mcfg = ModelConfig(
            fabric=args.fabric, cores=args.cores, blocks=args.blocks,
            contexts_per_core=args.contexts, chips=args.chips,
            signature=SignatureKind(args.signature),
            signature_bits=args.bits, mutation=args.mutate)
        result = check(mcfg, state_cap=cap)
    except ConfigError as exc:
        print(f"mc: {exc}", file=sys.stderr)
        return 2
    if args.dump and result.counterexample is not None:
        result.counterexample.dump(args.dump)
    if args.json:
        _emit_json(result.to_dict())
        return 0 if result.clean else 1
    print(result.summary())
    if result.counterexample is not None:
        print()
        print(result.counterexample.render())
        if args.dump:
            print(f"\ncounterexample written to {args.dump}")
    if not result.clean and args.mutate:
        print(f"(mutation {args.mutate!r}: "
              f"{MUTATIONS[args.mutate]})")
    return 0 if result.clean else 1


def _cmd_bench(args) -> int:
    from repro import perf

    names = args.suite or list(perf.SUITE)
    if args.report:
        records = perf.load_records(args.out_dir, names)
        if not records:
            print(f"no BENCH_*.json records in {args.out_dir!r}; "
                  "run `repro bench` first", file=sys.stderr)
            return 2
        if args.json:
            return _emit_json({name: record.to_dict()
                               for name, record in records.items()})
        print(perf.render_trajectory(records))
        return 0
    outcome = perf.run_suite(names=names, scale=args.scale,
                             label=args.label, out_dir=args.out_dir,
                             write=not args.no_write, check=args.check)
    if args.json:
        payload = {
            "measurements": {name: m.to_dict()
                             for name, m in outcome.measurements.items()},
            "regressions": {name: dataclasses.asdict(r)
                            for name, r in outcome.regressions.items()},
            "written": outcome.written,
            "exit_code": outcome.exit_code if args.check else 0,
        }
        _emit_json(payload)
        return outcome.exit_code if args.check else 0
    for name in names:
        m = outcome.measurements[name]
        print(f"{name:<18} {m.wall_seconds:8.3f}s  "
              f"cycles/s={m.cycles_per_second:>13,.0f}  "
              f"aborts/s={m.aborts_per_second:>9,.0f}  "
              f"cells/min={m.cells_per_minute:>8,.1f}  "
              f"events/s={m.events_per_second:>11,.0f}")
    for path in outcome.written:
        print(f"wrote {path}")
    if args.check:
        for report in outcome.regressions.values():
            for message in report.messages:
                print(message)
        return outcome.exit_code
    return 0


def _spec_from_args(args) -> "SweepSpec":
    """Build the service-grade :class:`SweepSpec` from sweep-style args.

    ``repro sweep`` and ``repro submit`` share this, so a sweep run
    locally and the same sweep submitted to a service are guaranteed to
    describe (and content-address) identical cells.
    """
    return SweepSpec(workload=args.workload, mode=args.mode,
                     threads=args.threads, units=args.units,
                     seed=args.seed, bits=args.bits, kind=args.kind,
                     sizes=tuple(args.sizes),
                     granularity=args.granularity,
                     timeout=getattr(args, "timeout", None),
                     retries=getattr(args, "retries", 1))


def _cmd_sweep(args) -> int:
    try:
        spec = _spec_from_args(args)
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    variants = spec.variants()
    baseline = spec.baseline_label
    factory = spec.workload_factory()

    no_cache = args.no_cache or args.trace_dir is not None
    cache = None if no_cache else ResultCache(args.cache_dir)
    # Always the engine (even jobs=1, no cache): identical results to the
    # serial path, but the run carries execution metadata to report.
    try:
        sweep = run_parallel_sweep(variants, factory, seed=args.seed,
                                   baseline_label=baseline, jobs=args.jobs,
                                   cache=cache, timeout=args.timeout,
                                   retries=args.retries,
                                   trace_dir=args.trace_dir)
    except SweepExecutionError as exc:
        print(f"sweep failed: {len(exc.failures)} of {len(variants)} "
              f"cell(s), {len(exc.completed)} completed", file=sys.stderr)
        for label, reason in exc.failures.items():
            print(f"  {label}: {reason}", file=sys.stderr)
        return 1
    if args.json:
        return _emit_json(sweep.to_dict())
    title = f"Sweep: {args.workload} ({args.mode})"
    print(sweep.table(title=title))
    if sweep.meta is not None:
        cache_info = sweep.meta["cache"]
        print(f"jobs={sweep.meta['jobs']}  "
              f"wall={sweep.meta['wall_time']:.2f}s  "
              f"cache: {cache_info['hits']} hit(s), "
              f"{cache_info['misses']} miss(es)"
              + ("" if cache_info["enabled"] else " (disabled)"))
    if args.trace_dir is not None:
        print(f"trace artifacts: {args.trace_dir}/<variant>.trace.json")
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.svc.api import serve
    from repro.svc.service import SweepService

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    service = SweepService(args.db, workers=args.workers, cache=cache,
                           drain_timeout=args.drain_timeout)
    service.start()
    server = serve(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"sweep service listening on http://{host}:{port}  "
          f"(db={args.db}, workers={args.workers}, "
          f"cache={'off' if cache is None else cache.root})", flush=True)

    def _request_stop(signum, frame):
        # serve_forever blocks this thread; shutdown() must come from
        # another one. Draining happens below, after the listener stops.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        print("listener closed; draining workers...", flush=True)
        service.shutdown(drain=True)
        print("drained.", flush=True)
    return 0


def _cmd_submit(args) -> int:
    from repro.svc.client import ClientError, ServiceClient

    try:
        spec = _spec_from_args(args)
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    try:
        job = client.submit(spec.to_dict(), priority=args.priority)
        job_id = job["id"]
        if not args.json:
            print(f"submitted {job_id}: {len(job['cells'])} cell(s), "
                  f"state {job['state']}")
        if args.follow:
            for event in client.events(job_id, follow=True):
                print(json.dumps(event))
            job = client.job(job_id)
        elif args.wait:
            job = client.wait(job_id, timeout=args.wait_timeout)
    except ClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        return _emit_json(job)
    if args.wait or args.follow:
        counts = job.get("cell_counts", {})
        summary = ", ".join(f"{state}={n}"
                            for state, n in sorted(counts.items()) if n)
        print(f"job {job['id']}: {job['state']} ({summary})")
        if job.get("error"):
            print(f"error: {job['error']}", file=sys.stderr)
        return 0 if job["state"] == "done" else 1
    print(f"poll with: python -m repro jobs {job['id']}")
    return 0


def _cmd_jobs(args) -> int:
    from repro.svc.client import ClientError, ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.job_id is None:
            jobs = client.jobs(state=args.state, limit=args.limit)
            if args.json:
                return _emit_json(jobs)
            if not jobs:
                print("no jobs")
                return 0
            for job in jobs:
                counts = job.get("cell_counts", {})
                cells = ", ".join(f"{state}={n}" for state, n
                                  in sorted(counts.items()) if n)
                print(f"{job['id']}  {job['state']:<9}  "
                      f"{job['spec']['workload']}/{job['spec']['mode']}  "
                      f"[{cells}]")
            return 0
        if args.cancel:
            job = client.cancel(args.job_id)
            if args.json:
                return _emit_json(job)
            print(f"job {job['id']}: {job['state']}")
            return 0
        if args.results:
            results = client.results(args.job_id)
            if args.json:
                return _emit_json(results)
            for label in sorted(results):
                entry = results[label]
                digest = (entry["digest"] or "")[:12]
                print(f"{label:<12} {entry['state']:<9} "
                      f"{entry['source'] or '-':<10} {digest}")
            return 0
        job = client.job(args.job_id)
        if args.json:
            return _emit_json(job)
        print(f"job    : {job['id']}")
        print(f"state  : {job['state']}")
        print(f"spec   : {job['spec']['workload']} mode={job['spec']['mode']}"
              f" threads={job['spec']['threads']}"
              f" units={job['spec']['units']}")
        for cell in job.get("cells", []):
            print(f"  {cell['label']:<12} {cell['state']:<9} "
                  f"{cell['source'] or '-'}")
        if job.get("error"):
            print(f"error  : {job['error']}")
        return 0
    except ClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        payload = {"root": str(cache.root),
                   "entries": cache.entry_count(),
                   "bytes": cache.size_bytes()}
        if args.json:
            return _emit_json(payload)
        print(f"root    : {payload['root']}")
        print(f"entries : {payload['entries']}")
        print(f"size    : {payload['bytes']:,} bytes")
        return 0
    # prune
    if args.max_entries is None:
        print("cache prune requires --max-entries N", file=sys.stderr)
        return 2
    before = cache.entry_count()
    removed = cache.prune(max_entries=args.max_entries)
    if args.json:
        return _emit_json({"root": str(cache.root), "before": before,
                           "removed": removed,
                           "entries": cache.entry_count()})
    print(f"pruned {removed} of {before} entries "
          f"(cap {args.max_entries}, root {cache.root})")
    return 0


#: Workloads runnable by ``repro trace``: the Table 2 benchmarks plus the
#: microbenchmarks (small enough to make readable traces).
def _trace_workloads():
    from repro.workloads import (BigFootprint, NestedUpdate, RepeatStores,
                                 SharedCounter)
    catalog = dict(E.WORKLOAD_CLASSES)
    for cls in (SharedCounter, NestedUpdate, BigFootprint, RepeatStores):
        catalog[cls.name] = cls
    return catalog


def _cmd_trace(args) -> int:
    from repro.obs.analysis import attribute_aborts, render_attribution
    from repro.obs.export import export_chrome_trace, export_jsonl

    catalog = _trace_workloads()
    if args.workload not in catalog:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{sorted(catalog)}", file=sys.stderr)
        return 2
    cfg = SystemConfig.small() if args.small else SystemConfig.default()
    if args.locks:
        cfg = cfg.with_sync(SyncMode.LOCKS)
    else:
        cfg = cfg.with_signature(SignatureKind(args.signature),
                                 bits=args.bits)
    workload = catalog[args.workload](
        num_threads=args.threads, units_per_thread=args.units,
        seed=args.seed)
    result = run_workload(cfg, workload, seed=args.seed, trace=True,
                          trace_max_events=args.max_events,
                          trace_kinds=args.kinds)
    events = result.events or []
    out = args.out or f"{workload.name}.trace.json"
    label = f"{workload.name} [{result.config_label}]"
    n = export_chrome_trace(events, out, label=label)
    if args.jsonl:
        export_jsonl(events, args.jsonl)
    attribution = attribute_aborts(events)
    if args.json:
        payload = result.to_dict()
        payload["trace"] = {"path": out, "events": len(events),
                            "trace_events": n,
                            "jsonl": args.jsonl,
                            "attribution": attribution.to_dict()}
        return _emit_json(payload)
    print(f"workload   : {workload.describe()}")
    print(f"config     : {result.config_label}")
    print(f"cycles     : {result.cycles:,}")
    print(f"events     : {len(events)} captured, {n} trace entries")
    print(f"trace      : {out}  (open in Perfetto / chrome://tracing)")
    if args.jsonl:
        print(f"jsonl      : {args.jsonl}")
    print()
    print(render_attribution(attribution))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LogTM-SE reproduction: regenerate the paper's "
                    "tables and figures.")
    parser.add_argument("--seed", type=int, default=0xC0FFEE)
    parser.add_argument("--json", action="store_true",
                        help="emit structured JSON records instead of "
                             "rendered tables")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: system parameters"
                   ).set_defaults(fn=_cmd_table1)
    p = sub.add_parser("table2", help="Table 2: benchmark characteristics")
    _add_scale(p)
    p.set_defaults(fn=_cmd_table2)
    sub.add_parser("fig3", help="Figure 3: signature designs"
                   ).set_defaults(fn=_cmd_fig3)
    p = sub.add_parser("fig4", help="Figure 4: speedup vs locks")
    _add_scale(p)
    _add_jobs(p)
    p.add_argument("--workloads", nargs="+", default=None,
                   choices=sorted(E.WORKLOAD_CLASSES))
    p.set_defaults(fn=_cmd_fig4)
    p = sub.add_parser("table3", help="Table 3: signature size impact")
    _add_scale(p)
    _add_jobs(p)
    p.set_defaults(fn=_cmd_table3)
    p = sub.add_parser("victimization", help="Result 4: victimization")
    _add_scale(p)
    p.set_defaults(fn=_cmd_victimization)
    sub.add_parser("table4", help="Table 4: virtualization comparison"
                   ).set_defaults(fn=_cmd_table4)

    p = sub.add_parser("run", help="run one workload on the Table 1 CMP")
    p.add_argument("workload", help="workload name (e.g. BerkeleyDB)")
    p.add_argument("--threads", type=int, default=32)
    p.add_argument("--units", type=int, default=2)
    p.add_argument("--signature", default="perfect",
                   choices=[k.value for k in SignatureKind])
    p.add_argument("--bits", type=int, default=2048)
    p.add_argument("--locks", action="store_true",
                   help="run the lock baseline instead of transactions")
    p.add_argument("--verify", action="store_true",
                   help="attach the correctness checkers (signature "
                        "oracle, undo-log oracle, isolation shadow, "
                        "serializability); exit 1 on any violation")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "lint",
        help="static analysis of workload definitions (rules "
             "VR001-VR005), or of the simulator itself (--self)")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: the "
                        "bundled repro.workloads package, or the repro "
                        "package itself with --self)")
    p.add_argument("--self", action="store_true", dest="self",
                   help="run the determinism self-lint (rules "
                        "SR001-SR003) over the simulator's own sources")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format (json also available via the "
                        "global --json flag)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="whole-project static analysis: the lint rules plus the "
             "concurrency passes (lockset RC001/RC004, section "
             "dataflow RC002, lock-order RC003)")
    p.add_argument("paths", nargs="*",
                   help="files or directories to analyze (default: the "
                        "installed repro package)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="output format (sarif emits a SARIF 2.1.0 log)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="findings baseline to compare against "
                        "(default: ./ANALYSIS_BASELINE.json when "
                        "present); exit 1 only on findings not in it")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run's findings "
                        "and exit 0")
    p.add_argument("--protocol", action="store_true",
                   help="protocol-conformance mode: extract coherence "
                        "transition tables and check them against the "
                        "declarative spec (rules PC001-PC004; default "
                        "paths: the repro.coherence package)")
    p.add_argument("--dump-table", default=None, metavar="DIR",
                   help="with --protocol: write one <fabric>.json "
                        "extracted table per fabric into DIR")
    p.add_argument("--coverage", default=None, metavar="FABRIC",
                   choices=["directory", "snooping", "multichip"],
                   help="with --protocol: model-check FABRIC and "
                        "report extracted-vs-exercised transition "
                        "coverage (exit 1 on exercised-but-unextracted)")
    p.add_argument("--state-cap", type=int, default=None,
                   help="state bound for --coverage exploration "
                        "(default: the mc default)")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "mc",
        help="bounded exhaustive model check of a small protocol config")
    p.add_argument("--fabric", default="directory",
                   choices=["directory", "snooping", "multichip"])
    p.add_argument("--cores", type=int, default=2,
                   help="cores (per chip for multichip; default: 2)")
    p.add_argument("--blocks", type=int, default=2,
                   help="distinct memory blocks (default: 2)")
    p.add_argument("--contexts", type=int, default=1,
                   help="transactional contexts per core (default: 1)")
    p.add_argument("--chips", type=int, default=2,
                   help="chips (multichip fabric only; default: 2)")
    p.add_argument("--signature", default="perfect",
                   choices=[k.value for k in SignatureKind])
    p.add_argument("--bits", type=int, default=64,
                   help="signature bits for inexact designs "
                        "(default: 64)")
    p.add_argument("--state-cap", type=int, default=None,
                   help="bound on distinct states explored (default: "
                        "50,000)")
    p.add_argument("--mutate", default=None,
                   help="re-introduce a known protocol bug behind a "
                        "flag (see repro.verify.faults.MUTATIONS); the "
                        "checker must convict it")
    p.add_argument("--dump", default=None, metavar="PATH",
                   help="write the counterexample (if any) as JSON to "
                        "this path")
    p.set_defaults(fn=_cmd_mc)

    p = sub.add_parser(
        "bench",
        help="measure the pinned benchmark suite; track BENCH_*.json")
    p.add_argument("--suite", nargs="+", default=None,
                   choices=["fig4_cell", "fig3_signatures",
                            "table3_conflict", "engine_stress"],
                   help="cases to run (default: all four)")
    p.add_argument("--scale", choices=["quick", "full"], default="full",
                   help="pinned case size; the committed trajectory is "
                        "measured at full (default: full)")
    p.add_argument("--label", default="measured",
                   help="trajectory-entry label (re-measuring the tail "
                        "label replaces it; default: measured)")
    p.add_argument("--out-dir", default=".",
                   help="directory holding the BENCH_*.json records "
                        "(default: the current directory)")
    p.add_argument("--check", action="store_true",
                   help="compare against the committed trajectory: exit 1 "
                        "on >30%% slowdown, exit 2 on >2x or on a result-"
                        "digest mismatch")
    p.add_argument("--no-write", action="store_true",
                   help="measure (and --check) without updating the "
                        "BENCH_*.json files")
    p.add_argument("--report", action="store_true",
                   help="render the committed trajectory tables and exit "
                        "(no measurement)")
    p.set_defaults(fn=_cmd_bench)

    def _add_spec_args(p: argparse.ArgumentParser) -> None:
        """The variant-grid arguments shared by ``sweep`` and ``submit``."""
        p.add_argument("workload", help="workload name (e.g. Mp3d)")
        p.add_argument("--mode", choices=SWEEP_MODES, default="designs",
                       help="variant family: all signature designs at "
                            "--bits, one --kind across --sizes, or the six "
                            "Figure 4 configs (default: designs)")
        p.add_argument("--kind", default="bs",
                       choices=[k.value for k in SignatureKind
                                if k is not SignatureKind.PERFECT],
                       help="signature design for --mode sizes")
        p.add_argument("--sizes", type=int, nargs="+",
                       default=[64, 256, 2048],
                       help="signature bit sizes for --mode sizes")
        p.add_argument("--bits", type=int, default=2048,
                       help="signature bits for --mode designs")
        p.add_argument("--granularity", type=int, default=1024,
                       help="CBS macroblock bytes (sizes mode)")
        p.add_argument("--threads", type=int, default=8)
        p.add_argument("--units", type=int, default=2)
        p.add_argument("--timeout", type=float, default=None,
                       help="per-variant wall-clock timeout in seconds")
        p.add_argument("--retries", type=int, default=1,
                       help="relaunches after a worker crash (default: 1)")

    p = sub.add_parser(
        "sweep",
        help="run one workload across a config family (parallel, cached)")
    _add_spec_args(p)
    _add_jobs(p)
    p.add_argument("--no-cache", action="store_true",
                   help="always execute; do not read or write the cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/sweeps)")
    p.add_argument("--trace-dir", default=None,
                   help="write per-variant Chrome trace + JSONL artifacts "
                        "into this directory (disables the cache)")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the sweep service: HTTP job server over the engine")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--workers", type=int, default=2,
                   help="persistent worker processes (default: 2)")
    p.add_argument("--db", default="sweeps.db",
                   help="SQLite job/result repository path "
                        "(default: sweeps.db)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the shared on-disk result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro/sweeps)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to let in-flight cells finish on "
                        "SIGTERM/SIGINT (default: 30)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a sweep to a running service (see: repro serve)")
    _add_spec_args(p)
    p.add_argument("--url", default="http://127.0.0.1:8642",
                   help="service endpoint (default: "
                        "http://127.0.0.1:8642)")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs earlier (default: 0)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal; exit 1 unless "
                        "it finished 'done'")
    p.add_argument("--wait-timeout", type=float, default=600.0,
                   help="--wait limit in seconds (default: 600)")
    p.add_argument("--follow", action="store_true",
                   help="stream the job's NDJSON progress events until "
                        "it is terminal (implies waiting)")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "jobs",
        help="list/inspect/cancel jobs on a running service")
    p.add_argument("job_id", nargs="?", default=None,
                   help="job id to inspect (omit to list jobs)")
    p.add_argument("--url", default="http://127.0.0.1:8642",
                   help="service endpoint (default: "
                        "http://127.0.0.1:8642)")
    p.add_argument("--state", default=None,
                   choices=["queued", "running", "done", "failed",
                            "cancelled"],
                   help="filter the listing by state")
    p.add_argument("--limit", type=int, default=50,
                   help="listing size (default: 50)")
    p.add_argument("--results", action="store_true",
                   help="show the job's per-cell results (digests)")
    p.add_argument("--cancel", action="store_true",
                   help="cancel the job")
    p.set_defaults(fn=_cmd_jobs)

    p = sub.add_parser(
        "cache",
        help="inspect or prune the on-disk sweep result cache")
    p.add_argument("action", choices=["stats", "prune"])
    p.add_argument("--max-entries", type=int, default=None,
                   help="prune: evict least-recently-used entries beyond "
                        "this cap")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/sweeps)")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "trace",
        help="run one workload with tracing on; write a Chrome trace")
    p.add_argument("workload",
                   help="workload name (benchmark or microbench, e.g. "
                        "SharedCounter)")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--units", type=int, default=2)
    p.add_argument("--signature", default="perfect",
                   choices=[k.value for k in SignatureKind])
    p.add_argument("--bits", type=int, default=2048)
    p.add_argument("--locks", action="store_true",
                   help="trace the lock baseline instead of transactions")
    p.add_argument("--small", action="store_true", default=True,
                   help="use the small 4-core config (default)")
    p.add_argument("--full-machine", dest="small", action="store_false",
                   help="use the full Table 1 CMP instead of --small")
    p.add_argument("--out", default=None,
                   help="Chrome trace output path (default: "
                        "<workload>.trace.json)")
    p.add_argument("--jsonl", default=None,
                   help="also write raw events as JSON Lines to this path")
    p.add_argument("--kinds", nargs="+", default=None,
                   help="restrict captured events to these kinds or "
                        "namespaces (e.g. tm coh.nack)")
    p.add_argument("--max-events", type=int, default=1_000_000,
                   help="ring-buffer capacity (default: 1,000,000)")
    p.set_defaults(fn=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
