"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates any of the paper's tables/figures from a shell, without writing
a script::

    python -m repro table1
    python -m repro table2 --scale quick
    python -m repro fig3
    python -m repro fig4 --scale quick --workloads Cholesky Mp3d
    python -m repro table3 --scale quick
    python -m repro victimization --scale quick
    python -m repro table4
    python -m repro run BerkeleyDB --threads 16 --units 2 --signature bs \\
        --bits 2048
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.config import SignatureKind, SyncMode, SystemConfig
from repro.harness import experiments as E
from repro.harness.runner import run_workload


def _scale(name: str) -> E.ExperimentScale:
    return E.QUICK if name == "quick" else E.FULL


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=["quick", "full"],
                        default="quick",
                        help="experiment size (default: quick)")


def _cmd_table1(args) -> int:
    print(E.render_table1())
    return 0


def _cmd_table2(args) -> int:
    print(E.render_table2(E.table2(_scale(args.scale), seed=args.seed)))
    return 0


def _cmd_fig3(args) -> int:
    print(E.render_figure3(E.figure3(seed=args.seed)))
    return 0


def _cmd_fig4(args) -> int:
    cells = E.figure4(_scale(args.scale), seed=args.seed,
                      workloads=args.workloads)
    print(E.render_figure4(cells))
    return 0


def _cmd_table3(args) -> int:
    print(E.render_table3(E.table3(_scale(args.scale), seed=args.seed)))
    return 0


def _cmd_victimization(args) -> int:
    print(E.render_victimization(
        E.victimization(_scale(args.scale), seed=args.seed)))
    return 0


def _cmd_table4(args) -> int:
    print(E.render_table4())
    return 0


def _cmd_run(args) -> int:
    if args.workload not in E.WORKLOAD_CLASSES:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{sorted(E.WORKLOAD_CLASSES)}", file=sys.stderr)
        return 2
    cfg = SystemConfig.default()
    if args.locks:
        cfg = cfg.with_sync(SyncMode.LOCKS)
    else:
        cfg = cfg.with_signature(SignatureKind(args.signature),
                                 bits=args.bits)
    workload = E.WORKLOAD_CLASSES[args.workload](
        num_threads=args.threads, units_per_thread=args.units,
        seed=args.seed)
    result = run_workload(cfg, workload, seed=args.seed)
    print(f"workload   : {workload.describe()}")
    print(f"config     : {'locks' if args.locks else result.config_label}")
    print(f"cycles     : {result.cycles:,}")
    print(f"units      : {result.units}")
    print(f"commits    : {result.commits}")
    print(f"aborts     : {result.aborts}")
    print(f"stalls     : {result.stalls}")
    print(f"fp conflict: {result.false_positive_pct:.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LogTM-SE reproduction: regenerate the paper's "
                    "tables and figures.")
    parser.add_argument("--seed", type=int, default=0xC0FFEE)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: system parameters"
                   ).set_defaults(fn=_cmd_table1)
    p = sub.add_parser("table2", help="Table 2: benchmark characteristics")
    _add_scale(p)
    p.set_defaults(fn=_cmd_table2)
    sub.add_parser("fig3", help="Figure 3: signature designs"
                   ).set_defaults(fn=_cmd_fig3)
    p = sub.add_parser("fig4", help="Figure 4: speedup vs locks")
    _add_scale(p)
    p.add_argument("--workloads", nargs="+", default=None,
                   choices=sorted(E.WORKLOAD_CLASSES))
    p.set_defaults(fn=_cmd_fig4)
    p = sub.add_parser("table3", help="Table 3: signature size impact")
    _add_scale(p)
    p.set_defaults(fn=_cmd_table3)
    p = sub.add_parser("victimization", help="Result 4: victimization")
    _add_scale(p)
    p.set_defaults(fn=_cmd_victimization)
    sub.add_parser("table4", help="Table 4: virtualization comparison"
                   ).set_defaults(fn=_cmd_table4)

    p = sub.add_parser("run", help="run one workload on the Table 1 CMP")
    p.add_argument("workload", help="workload name (e.g. BerkeleyDB)")
    p.add_argument("--threads", type=int, default=32)
    p.add_argument("--units", type=int, default=2)
    p.add_argument("--signature", default="perfect",
                   choices=[k.value for k in SignatureKind])
    p.add_argument("--bits", type=int, default=2048)
    p.add_argument("--locks", action="store_true",
                   help="run the lock baseline instead of transactions")
    p.set_defaults(fn=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
