"""The event bus and its in-memory sink.

:class:`EventBus` is the fan-out point between emitters (every model
component that calls ``stats.emit(...)``) and consumers (ring-buffer logs,
metrics, streaming exporters). It is attached to a system through
:meth:`repro.harness.system.System.attach_bus`; the registry's ``emit`` is
one attribute check when nothing is attached, so instrumentation is
zero-cost in ordinary (untraced) runs.

:class:`RingBufferLog` is the standard sink: a bounded deque of events with
query helpers. :class:`TraceRecorder` is the legacy standalone flavor (its
own clock, same query surface) kept for the pre-obs
``repro.harness.trace`` API.
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections import deque
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Set)

from repro.obs.events import Event, namespace_of, validate_kind

#: A subscriber: any callable taking one :class:`Event`.
Subscriber = Callable[[Event], None]


class EventBus:
    """Dispatches typed events to subscribers.

    ``clock`` supplies the virtual timestamp (usually ``lambda:
    system.sim.now``). Subscribers may restrict themselves to exact kinds
    and/or namespaces; with no restriction they receive everything.
    ``strict=True`` validates every emitted kind against the documented
    taxonomy — useful in tests to catch typo'd instrumentation.
    """

    def __init__(self, clock: Callable[[], int],
                 strict: bool = False) -> None:
        self._clock = clock
        self.strict = strict
        #: (subscriber, exact kinds or None, namespaces or None)
        self._subs: List[tuple] = []
        self.emitted = 0

    # -- subscription ------------------------------------------------------

    def subscribe(self, subscriber: Subscriber,
                  kinds: Optional[Iterable[str]] = None,
                  namespaces: Optional[Iterable[str]] = None) -> Subscriber:
        """Register a subscriber; returns it (handy for chaining)."""
        kind_set: Optional[Set[str]] = set(kinds) if kinds else None
        ns_set: Optional[Set[str]] = set(namespaces) if namespaces else None
        self._subs.append((subscriber, kind_set, ns_set))
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> bool:
        """Remove a subscriber; True if it was registered."""
        for i, (sub, _k, _n) in enumerate(self._subs):
            if sub is subscriber:
                del self._subs[i]
                return True
        return False

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    # -- emission ----------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        """Build an event at the current virtual time and dispatch it.

        This is the same signature as the legacy ``TraceRecorder.record``,
        so a bus can sit directly behind ``StatsRegistry.recorder``.
        """
        if self.strict:
            validate_kind(kind)
        self.publish(Event(self._clock(), kind, fields))

    def publish(self, event: Event) -> None:
        """Dispatch a pre-built event to every matching subscriber."""
        # Advisory counter, baselined in ANALYSIS_BASELINE.json: a lost
        # increment under concurrent publishes skews a debugging stat,
        # never a result; locking the publish fast path isn't worth it.
        self.emitted += 1
        for sub, kind_set, ns_set in self._subs:
            if kind_set is None and ns_set is None:
                sub(event)
            elif ((kind_set is not None and event.kind in kind_set)
                  or (ns_set is not None
                      and namespace_of(event.kind) in ns_set)):
                sub(event)


class RingBufferLog:
    """Bounded in-memory event log with query helpers.

    Subscribes to a bus (it is callable) or receives events directly via
    :meth:`append`. ``kinds`` filters what is kept: an entry matches an
    exact kind (``"tm.commit"``) or a whole namespace (``"tm"``).
    """

    def __init__(self, max_events: int = 100_000,
                 kinds: Optional[Iterable[str]] = None) -> None:
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self._events: Deque[Event] = deque(maxlen=max_events)
        self._kinds = set(kinds) if kinds is not None else None
        self.dropped = 0

    def _wanted(self, kind: str) -> bool:
        if self._kinds is None:
            return True
        return kind in self._kinds or namespace_of(kind) in self._kinds

    def __call__(self, event: Event) -> None:
        self.append(event)

    def append(self, event: Event) -> None:
        if not self._wanted(event.kind):
            return
        if len(self._events) == self._events.maxlen:
            # Advisory counter, baselined in ANALYSIS_BASELINE.json: the
            # deque append itself is GIL-atomic; an under-count of drops
            # under concurrent appends is acceptable for a debug stat.
            self.dropped += 1
        self._events.append(event)

    # -- queries -----------------------------------------------------------

    def events(self, kind: Optional[str] = None,
               thread: Optional[int] = None) -> List[Event]:
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if thread is not None and event.fields.get("thread") != thread:
                continue
            out.append(event)
        return out

    def __len__(self) -> int:
        return len(self._events)

    def counts(self) -> Dict[str, int]:
        return dict(_Counter(e.kind for e in self._events))

    def transactions(self, thread: int) -> List[Dict[str, Any]]:
        """Reconstruct one thread's outer transaction attempts.

        Returns one record per outer begin: start/end time and outcome
        ("commit" / "abort" / "open" if the trace ends mid-transaction).
        Only an *outer* abort closes the attempt: a partial (inner) abort
        carries ``outer=False`` and leaves the attempt open, exactly like
        an inner commit does. Events without an ``outer`` field (legacy
        recordings) are treated as outer aborts.
        """
        records: List[Dict[str, Any]] = []
        current: Optional[Dict[str, Any]] = None
        for event in self._events:
            if event.fields.get("thread") != thread:
                continue
            if event.kind == "tm.begin" and event.fields.get("depth") == 1:
                current = {"start": event.time, "end": None,
                           "outcome": "open", "stalls": 0}
                records.append(current)
            elif current is not None:
                if event.kind == "tm.stall":
                    current["stalls"] += 1
                elif event.kind == "tm.commit" and \
                        event.fields.get("outer"):
                    current.update(end=event.time, outcome="commit")
                    current = None
                elif event.kind == "tm.abort" and \
                        event.fields.get("outer", True):
                    current.update(end=event.time, outcome="abort")
                    current = None
        return records

    def render(self, limit: int = 50) -> str:
        """Human-readable tail of the log."""
        tail = list(self._events)[-limit:]
        return "\n".join(str(e) for e in tail)

    def summary_table(self, threads: Iterable[int]) -> str:
        from repro.harness.report import render_table
        rows = []
        for tid in threads:
            attempts = self.transactions(tid)
            commits = sum(1 for a in attempts if a["outcome"] == "commit")
            aborts = sum(1 for a in attempts if a["outcome"] == "abort")
            stalls = sum(a["stalls"] for a in attempts)
            durations = [a["end"] - a["start"] for a in attempts
                         if a["end"] is not None]
            mean_dur = sum(durations) / len(durations) if durations else 0.0
            rows.append((tid, len(attempts), commits, aborts, stalls,
                         mean_dur))
        return render_table(
            ["Thread", "Attempts", "Commits", "Aborts", "Stalls",
             "Mean cycles"],
            rows, title="Per-thread transaction summary")


class TraceRecorder(RingBufferLog):
    """Standalone recorder: a ring-buffer log with its own clock.

    This is the legacy ``repro.harness.trace.TraceRecorder`` surface
    (attachable directly to ``StatsRegistry.recorder``), now implemented on
    the obs layer. New code should prefer ``System.attach_bus()`` — a bus
    fans out to any number of sinks and carries the full cross-layer
    taxonomy; a recorder is one fixed ring buffer.
    """

    def __init__(self, clock: Callable[[], int], max_events: int = 100_000,
                 kinds: Optional[Iterable[str]] = None) -> None:
        super().__init__(max_events=max_events, kinds=kinds)
        self._clock = clock

    def record(self, kind: str, **fields: Any) -> None:
        self.append(Event(self._clock(), kind, fields))
