"""Typed observability events and the namespaced taxonomy.

Every component of the simulated machine reports what it does as
:class:`Event` records — a timestamp (virtual cycles), a dot-namespaced
``kind``, and a flat field dict. Kinds are organized by layer:

========== =================================================================
namespace  emitted by
========== =================================================================
``tm.*``   transaction lifecycle (manager, core access path)
``coh.*``  coherence fabric: directory / snooping requests, NACKs,
           victimization, sticky-state transitions
``net.*``  interconnect messages
``os.*``   OS model: scheduling, summary signatures, paging
``log.*``  undo log: appends and abort walks
``sim.*``  simulation kernel: process spawn/finish
``svc.*``  sweep service: job lifecycle, cell dispatch, worker fleet
           (wall-clock milliseconds, not virtual cycles — the service
           runs outside any simulation)
========== =================================================================

The taxonomy below is the contract between emitters and the analyzers in
:mod:`repro.obs.analysis` / exporters in :mod:`repro.obs.export`: a kind
listed here has a stable meaning and field set. Emitting an unlisted kind
is allowed (the bus is open — see ``EventBus(strict=True)`` to opt into
enforcement), but analyzers only understand the documented ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: The recognized kind namespaces (the segment before the first dot).
NAMESPACES: Tuple[str, ...] = ("tm", "coh", "net", "os", "log", "sim",
                               "svc")


@dataclass(frozen=True)
class Event:
    """One recorded event: virtual time, namespaced kind, payload fields."""

    time: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time}] {self.kind} {details}".rstrip()

    @property
    def namespace(self) -> str:
        return namespace_of(self.kind)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe record (inverse: :func:`event_from_dict`)."""
        return {"time": self.time, "kind": self.kind,
                "fields": dict(self.fields)}


#: Backwards-compatible name: the pre-obs trace layer called these
#: ``TraceEvent`` (see :mod:`repro.harness.trace`).
TraceEvent = Event


def event_from_dict(data: Dict[str, Any]) -> Event:
    """Rebuild an :class:`Event` from :meth:`Event.to_dict` output."""
    return Event(time=int(data["time"]), kind=str(data["kind"]),
                 fields=dict(data.get("fields", {})))


#: kind -> (description, documented fields). The field lists name what the
#: analyzers rely on; emitters may add more.
TAXONOMY: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    # -- transaction lifecycle ---------------------------------------------
    "tm.begin": ("transaction (or nest level) began",
                 ("thread", "depth", "open")),
    "tm.access": ("one memory reference completed (eager path)",
                  ("thread", "vaddr", "block", "write", "value", "tx",
                   "in_tx", "asid")),
    "tm.commit": ("innermost transaction committed",
                  ("thread", "outer")),
    "tm.abort": ("abort handler ran",
                 ("thread", "undone", "full", "outer", "cause", "fp", "via",
                  "category")),
    "tm.stall": ("NACKed access stalled (contention-manager trap)",
                 ("thread", "blockers", "fp", "via")),
    "tm.conflict": ("a conflict was detected against this thread's access",
                    ("thread", "source", "fp", "block", "blockers")),
    # -- coherence ----------------------------------------------------------
    "coh.request": ("coherence request reached the fabric",
                    ("block", "core", "thread", "write")),
    "coh.grant": ("request granted; L1 may install",
                  ("block", "core", "thread", "write", "state")),
    "coh.nack": ("request NACKed by one or more signatures",
                 ("block", "core", "thread", "blockers")),
    "coh.broadcast": ("lost-info broadcast rebuild (directory only)",
                      ("block",)),
    "coh.snoop": ("bus snoop broadcast (snooping fabric)",
                  ("block", "core", "write")),
    "coh.l1_victim": ("L1 replacement evicted a block",
                      ("block", "core", "transactional", "sticky")),
    "coh.l2_victim": ("L2 replacement dropped directory info",
                      ("block", "transactional")),
    "coh.sticky_clean": ("sticky forwarding obligation discharged",
                         ("block", "cores")),
    # -- interconnect -------------------------------------------------------
    "net.msg": ("one message traversed the grid",
                ("route", "src", "dst", "cls", "hops")),
    # -- OS model -----------------------------------------------------------
    "os.deschedule": ("thread removed from its hardware context",
                      ("thread", "in_tx")),
    "os.schedule": ("thread placed on a hardware context",
                    ("thread", "slot")),
    "os.summary_install": ("summary signature installed on a context",
                           ("slot", "asid", "exclude")),
    "os.page_move": ("paging daemon relocated a page",
                     ("vpage", "old_frame", "new_frame")),
    # -- undo log -----------------------------------------------------------
    "log.append": ("undo record appended",
                   ("thread", "vblock", "depth")),
    "log.unroll": ("abort handler walked one log frame",
                   ("thread", "records", "depth")),
    # -- simulation kernel --------------------------------------------------
    "sim.spawn": ("process registered with the simulator", ("process",)),
    "sim.process_done": ("process generator finished", ("process",)),
    # -- sweep service (wall-clock ms since service start) ------------------
    "svc.job.submitted": ("sweep job accepted into the queue",
                          ("job", "cells", "priority")),
    "svc.job.started": ("job left the queue; cells being resolved",
                        ("job",)),
    "svc.job.done": ("every cell terminal, none failed",
                     ("job", "executed", "cache_hits", "repo_hits")),
    "svc.job.failed": ("one or more cells failed", ("job", "failed")),
    "svc.job.cancelled": ("job cancelled (queued or mid-run)", ("job",)),
    "svc.cell.dispatch": ("cell handed to a fleet worker",
                          ("job", "label", "worker")),
    "svc.cell.done": ("cell result stored",
                      ("job", "label", "source", "wall_time", "attempts")),
    "svc.cell.failed": ("cell exhausted its retry budget",
                        ("job", "label", "reason")),
    "svc.cell.requeued": ("cell re-queued after a crash or timeout",
                          ("job", "label", "cause", "attempts")),
    "svc.worker.spawn": ("fleet worker process started", ("worker",)),
    "svc.worker.exit": ("fleet worker exited cleanly", ("worker",)),
    "svc.worker.crash": ("fleet worker died mid-cell; cell re-queued",
                         ("worker", "exitcode")),
    "svc.worker.timeout": ("fleet worker exceeded the cell deadline",
                           ("worker", "job", "label")),
    "svc.drain": ("graceful shutdown: waiting for in-flight cells",
                  ("busy",)),
}


def namespace_of(kind: str) -> str:
    """The namespace (first dot-segment) of an event kind."""
    return kind.split(".", 1)[0]


def validate_kind(kind: str) -> None:
    """Raise ``ValueError`` for a kind outside the documented taxonomy."""
    if kind not in TAXONOMY:
        known = sorted(TAXONOMY)
        raise ValueError(
            f"unknown event kind {kind!r}; documented kinds: {known}")
