"""Analyzers over observability event streams.

Three lenses on a recorded run:

* :func:`reconstruct` — per-transaction lifecycle records
  (:class:`TxAttempt`): when each outer attempt started, how it ended, how
  often it stalled, and (for aborts) why.
* :class:`ConflictGraph` — who-blocked-whom over NACK edges, built from
  ``tm.conflict`` events. Hot spots in the graph are the contended data.
* abort/stall **attribution** — :func:`classify_abort` maps an abort's
  recorded cause to one of :data:`CATEGORIES`; :class:`AbortAttribution`
  tallies a run either from events (:func:`attribute_aborts`) or, with no
  trace attached, from the ``tm.aborts.*`` counters
  (:meth:`AbortAttribution.from_counters`).

The attribution taxonomy mirrors the paper's discussion of conflict
sources: a *true conflict* is a data race the programmer wrote; a
*false positive* is signature aliasing (Section 3 of the paper — the cost
of imprecise read/write sets); *sticky* aborts arrive through stale sticky
directory states after victimization (Section 4); *capacity* aborts come
from lost-info broadcasts when the directory itself victimized the block;
*summary* aborts are hits on a descheduled transaction's summary signature
(Section 5). Everything non-conflicting (preemption, squash, explicit
user abort) is *other*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import Event

#: Attribution categories, in reporting order.
CATEGORIES: Tuple[str, ...] = ("true_conflict", "false_positive", "sticky",
                               "capacity", "summary", "other")

#: Abort causes that represent a conflict with another thread (everything
#: else — preemption, squash, explicit — classifies as "other").
_CONFLICT_CAUSES = frozenset({"conflict", "remote", "summary"})


def classify_abort(cause: Optional[str], fp: bool = False,
                   via: str = "targeted") -> str:
    """Map an abort's recorded (cause, fp, via) to an attribution category.

    Precedence: summary hits first (they are a distinct mechanism even when
    the underlying address would have aliased), then signature false
    positives (``fp`` means *every* blocker matched only by aliasing —
    regardless of the path the conflict arrived on), then the arrival path
    (sticky forwarding / lost-info broadcast), and only then true conflict.
    """
    if cause not in _CONFLICT_CAUSES:
        return "other"
    if cause == "summary":
        return "summary"
    if fp:
        return "false_positive"
    if via == "sticky":
        return "sticky"
    if via == "broadcast":
        return "capacity"
    return "true_conflict"


def dominant_via(vias: Iterable[str]) -> str:
    """Collapse several blockers' arrival paths to the one to report.

    A single sticky or broadcast edge is enough to taint the conflict with
    that mechanism; sticky outranks broadcast (it is the more specific
    decoupling artifact).
    """
    vias = set(vias)
    if "sticky" in vias:
        return "sticky"
    if "broadcast" in vias:
        return "broadcast"
    return "targeted"


# ---------------------------------------------------------------------------
# transaction lifecycle reconstruction
# ---------------------------------------------------------------------------

@dataclass
class TxAttempt:
    """One outer transaction attempt, reconstructed from ``tm.*`` events."""

    thread: int
    start: int
    end: Optional[int] = None
    outcome: str = "open"          # "commit" | "abort" | "open"
    stalls: int = 0
    conflicts: int = 0
    inner_aborts: int = 0
    cause: Optional[str] = None    # recorded abort cause, if aborted
    category: Optional[str] = None  # attribution category, if aborted

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {"thread": self.thread, "start": self.start, "end": self.end,
                "outcome": self.outcome, "stalls": self.stalls,
                "conflicts": self.conflicts,
                "inner_aborts": self.inner_aborts,
                "cause": self.cause, "category": self.category}


def reconstruct(events: Iterable[Event],
                thread: Optional[int] = None) -> List[TxAttempt]:
    """Rebuild outer transaction attempts from a ``tm.*`` event stream.

    Events for other namespaces are ignored; pass ``thread`` to restrict to
    one thread. Attempts still open when the stream ends keep
    ``outcome="open"``.
    """
    open_attempts: Dict[int, TxAttempt] = {}
    attempts: List[TxAttempt] = []
    for event in events:
        tid = event.fields.get("thread")
        if tid is None or (thread is not None and tid != thread):
            continue
        current = open_attempts.get(tid)
        if event.kind == "tm.begin" and event.fields.get("depth") == 1:
            current = TxAttempt(thread=tid, start=event.time)
            open_attempts[tid] = current
            attempts.append(current)
        elif current is None:
            continue
        elif event.kind == "tm.stall":
            current.stalls += 1
        elif event.kind == "tm.conflict":
            current.conflicts += 1
        elif event.kind == "tm.commit" and event.fields.get("outer"):
            current.end = event.time
            current.outcome = "commit"
            del open_attempts[tid]
        elif event.kind == "tm.abort":
            if event.fields.get("outer", True):
                current.end = event.time
                current.outcome = "abort"
                current.cause = event.fields.get("cause")
                current.category = event.fields.get("category") or \
                    classify_abort(event.fields.get("cause"),
                                   bool(event.fields.get("fp", False)),
                                   str(event.fields.get("via", "targeted")))
                del open_attempts[tid]
            else:
                current.inner_aborts += 1
    return attempts


# ---------------------------------------------------------------------------
# conflict graph
# ---------------------------------------------------------------------------

@dataclass
class ConflictEdge:
    """Aggregated NACK edge: ``src`` (blocker) held off ``dst`` (requester)."""

    src: int
    dst: int
    count: int = 0
    false_positives: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"src": self.src, "dst": self.dst, "count": self.count,
                "false_positives": self.false_positives}


class ConflictGraph:
    """Directed multigraph of conflicts, aggregated per (blocker, victim).

    Built from ``tm.conflict`` events, whose ``blockers`` field is a
    sequence of ``(thread, fp, via)`` triples (bare thread ids are also
    accepted). An edge src → dst means src's signature NACKed dst's
    request.
    """

    def __init__(self) -> None:
        self._edges: Dict[Tuple[int, int], ConflictEdge] = {}

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "ConflictGraph":
        graph = cls()
        for event in events:
            if event.kind != "tm.conflict":
                continue
            victim = event.fields.get("thread")
            if victim is None:
                continue
            for blocker in event.fields.get("blockers", ()):
                if isinstance(blocker, (tuple, list)):
                    src = int(blocker[0])
                    fp = bool(blocker[1]) if len(blocker) > 1 else False
                else:
                    src, fp = int(blocker), False
                graph.add(src, int(victim), fp=fp)
        return graph

    def add(self, src: int, dst: int, fp: bool = False) -> None:
        edge = self._edges.get((src, dst))
        if edge is None:
            edge = self._edges[(src, dst)] = ConflictEdge(src, dst)
        edge.count += 1
        if fp:
            edge.false_positives += 1

    def edges(self) -> List[ConflictEdge]:
        """All edges, heaviest first (ties broken by endpoint ids)."""
        return sorted(self._edges.values(),
                      key=lambda e: (-e.count, e.src, e.dst))

    @property
    def total_conflicts(self) -> int:
        return sum(e.count for e in self._edges.values())

    def nodes(self) -> List[int]:
        out = set()
        for src, dst in self._edges:
            out.add(src)
            out.add(dst)
        return sorted(out)

    def blocked_by(self, thread: int) -> Dict[int, int]:
        """victim → count for conflicts where ``thread`` was the blocker."""
        return {dst: e.count for (src, dst), e in sorted(self._edges.items())
                if src == thread}

    def to_dict(self) -> Dict[str, Any]:
        return {"nodes": self.nodes(),
                "edges": [e.to_dict() for e in self.edges()]}


# ---------------------------------------------------------------------------
# abort / stall attribution
# ---------------------------------------------------------------------------

@dataclass
class AbortAttribution:
    """Per-category tallies of one run's aborts (or stalls)."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {cat: 0 for cat in CATEGORIES})

    def add(self, category: str, n: int = 1) -> None:
        if category not in self.counts:
            category = "other"
        self.counts[category] += n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, category: str) -> float:
        total = self.total
        return self.counts.get(category, 0) / total if total else 0.0

    def to_dict(self) -> Dict[str, int]:
        return {cat: self.counts[cat] for cat in CATEGORIES}

    @classmethod
    def from_counters(cls, counters: Dict[str, int]) -> "AbortAttribution":
        """Rebuild attribution from ``tm.aborts.<category>`` counters.

        This is the traceless path: the manager keeps per-category counters
        even when no bus is attached, so ``RunResult.counters`` always
        carries the split.
        """
        attribution = cls()
        for cat in CATEGORIES:
            attribution.counts[cat] = int(
                counters.get(f"tm.aborts.{cat}", 0))
        return attribution

    def __str__(self) -> str:
        parts = [f"{cat}={self.counts[cat]}" for cat in CATEGORIES
                 if self.counts[cat]]
        return f"AbortAttribution({', '.join(parts) or 'empty'})"


def attribute_aborts(events: Iterable[Event]) -> AbortAttribution:
    """Tally outer aborts in an event stream per attribution category."""
    attribution = AbortAttribution()
    for event in events:
        if event.kind != "tm.abort" or not event.fields.get("outer", True):
            continue
        category = event.fields.get("category") or classify_abort(
            event.fields.get("cause"),
            bool(event.fields.get("fp", False)),
            str(event.fields.get("via", "targeted")))
        attribution.add(category)
    return attribution


def attribute_stalls(events: Iterable[Event]) -> AbortAttribution:
    """Tally ``tm.stall`` events per category (a stall is by definition a
    conflict that was resolved by waiting, so ``cause="conflict"``)."""
    attribution = AbortAttribution()
    for event in events:
        if event.kind != "tm.stall":
            continue
        attribution.add(classify_abort(
            "conflict", bool(event.fields.get("fp", False)),
            str(event.fields.get("via", "targeted"))))
    return attribution


def render_attribution(attribution: AbortAttribution,
                       title: str = "Abort attribution") -> str:
    """Small fixed-width table of the category split."""
    lines = [title, "-" * len(title)]
    total = attribution.total
    for cat in CATEGORIES:
        count = attribution.counts[cat]
        pct = 100.0 * count / total if total else 0.0
        lines.append(f"{cat:<16} {count:>8} {pct:>6.1f}%")
    lines.append(f"{'total':<16} {total:>8}")
    return "\n".join(lines)
