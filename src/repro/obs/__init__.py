"""Cross-layer observability: events, bus, metrics, analyzers, exporters.

The subsystem in one paragraph: model components emit typed, namespaced
:class:`Event` records through the :class:`EventBus` (attached via
``System.attach_bus()``; emission is one attribute check when nothing is
attached). Sinks subscribe to the bus — a :class:`RingBufferLog` buffers
them, a :class:`MetricsRegistry` counts them, a
:class:`~repro.obs.export.JsonlWriter` streams them to disk. After a run,
the analyzers in :mod:`repro.obs.analysis` reconstruct transaction
lifecycles, build conflict graphs, and attribute aborts to their mechanism
(true conflict / signature false positive / sticky / capacity / summary),
and the exporters in :mod:`repro.obs.export` produce JSONL and Chrome
Trace Event JSON (opens in Perfetto). See ``docs/observability.md``.

The legacy ``repro.harness.trace`` API (``TraceRecorder``/``TraceEvent``)
is a shim over this package.
"""

from repro.obs.analysis import (CATEGORIES, AbortAttribution, ConflictEdge,
                                ConflictGraph, TxAttempt, attribute_aborts,
                                attribute_stalls, classify_abort,
                                dominant_via, reconstruct,
                                render_attribution)
from repro.obs.bus import EventBus, RingBufferLog, TraceRecorder
from repro.obs.events import (NAMESPACES, TAXONOMY, Event, TraceEvent,
                              event_from_dict, namespace_of, validate_kind)
from repro.obs.export import (JsonlWriter, chrome_trace, export_chrome_trace,
                              export_jsonl, load_jsonl,
                              validate_chrome_trace)
from repro.obs.metrics import CycleTimer, Gauge, MetricsRegistry

__all__ = [
    "AbortAttribution",
    "CATEGORIES",
    "ConflictEdge",
    "ConflictGraph",
    "CycleTimer",
    "Event",
    "EventBus",
    "Gauge",
    "JsonlWriter",
    "MetricsRegistry",
    "NAMESPACES",
    "RingBufferLog",
    "TAXONOMY",
    "TraceEvent",
    "TraceRecorder",
    "TxAttempt",
    "attribute_aborts",
    "attribute_stalls",
    "chrome_trace",
    "classify_abort",
    "dominant_via",
    "event_from_dict",
    "export_chrome_trace",
    "export_jsonl",
    "load_jsonl",
    "namespace_of",
    "reconstruct",
    "render_attribution",
    "validate_chrome_trace",
]
