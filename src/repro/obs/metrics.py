"""Metrics registry: counters, gauges, histograms, and cycle timers.

:class:`repro.common.stats.StatsRegistry` is the model-side collection
point — simple named counters/histograms updated on the hot path. This
module is the *analysis-side* registry: it adds gauges (last-value
metrics), cycle timers (interval accounting against the virtual clock) and
a uniform snapshot, and can ingest a ``StatsRegistry`` so harness code has
one object to query. A :class:`MetricsRegistry` is also a bus subscriber:
attached to an :class:`repro.obs.bus.EventBus` it counts events per kind
(``events.tm.commit`` …), which the overhead notes in
``docs/observability.md`` rely on.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.common.stats import Counter, Histogram, StatsRegistry
from repro.obs.events import Event


class Gauge:
    """A last-value metric (outstanding messages, live log bytes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float = 1) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class CycleTimer:
    """Accumulates virtual-cycle intervals (stall time, log-walk time).

    ``start()``/``stop()`` bracket one interval against the registry clock;
    overlapping intervals (several threads stalled at once) are supported by
    keying on an arbitrary token (usually the thread id).
    """

    __slots__ = ("name", "_clock", "_open", "total", "intervals")

    def __init__(self, name: str, clock: Callable[[], int]) -> None:
        self.name = name
        self._clock = clock
        self._open: Dict[object, int] = {}
        self.total = 0
        self.intervals = 0

    def start(self, token: object = None) -> None:
        self._open[token] = self._clock()

    def stop(self, token: object = None) -> int:
        """Close the interval for ``token``; returns its length in cycles."""
        begin = self._open.pop(token, None)
        if begin is None:
            return 0
        elapsed = self._clock() - begin
        self.total += elapsed
        self.intervals += 1
        return elapsed

    @property
    def mean(self) -> float:
        return self.total / self.intervals if self.intervals else 0.0

    def reset(self) -> None:
        self._open.clear()
        self.total = 0
        self.intervals = 0

    def __repr__(self) -> str:
        return (f"CycleTimer({self.name}: total={self.total}, "
                f"n={self.intervals})")


class MetricsRegistry:
    """Counters + gauges + histograms + timers behind one namespace.

    Reuses the model-layer :class:`Counter`/:class:`Histogram` types so a
    snapshot mixes ingested model stats and analysis-side metrics without
    translation. Callable, so it can subscribe to a bus directly::

        metrics = MetricsRegistry(clock=lambda: system.sim.now)
        bus.subscribe(metrics)            # counts events per kind
        metrics.ingest_stats(system.stats)  # fold in model counters
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0)
        # Guards the four name->metric maps (create-on-first-use races
        # when the registry is shared between the scheduler thread and
        # API threads). Metric *values* are not covered: increments on
        # an already-created Counter/Gauge are tolerated as advisory.
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, CycleTimer] = {}

    # -- metric accessors (create on first use, like StatsRegistry) -------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
        return metric

    def timer(self, name: str) -> CycleTimer:
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = CycleTimer(name,
                                                         self._clock)
        return metric

    # -- bus subscription --------------------------------------------------

    def __call__(self, event: Event) -> None:
        """Bus subscriber: count every event under ``events.<kind>``."""
        self.counter(f"events.{event.kind}").add()

    # -- StatsRegistry bridge ---------------------------------------------

    def ingest_stats(self, stats: StatsRegistry) -> None:
        """Fold a model ``StatsRegistry``'s current values into this one.

        Counter values *accumulate* (so repeated ingestion across phases
        sums); histograms are merged sample-by-sample.
        """
        for name, value in stats.snapshot().items():
            self.counter(name).add(value)
        for name, hist in stats.histograms().items():
            mine = self.histogram(name)
            for sample, count in hist.items():
                for _ in range(count):
                    mine.record(sample)

    @classmethod
    def from_stats(cls, stats: StatsRegistry,
                   clock: Optional[Callable[[], int]] = None
                   ) -> "MetricsRegistry":
        registry = cls(clock=clock)
        registry.ingest_stats(stats)
        return registry

    # -- queries -----------------------------------------------------------

    def value(self, name: str) -> float:
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
        return 0

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counters, gauges, and timer totals."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            timers = list(self._timers.items())
        out: Dict[str, float] = {}
        for name, c in counters:
            out[name] = c.value
        for name, g in gauges:
            out[name] = g.value
        for name, t in timers:
            out[f"{name}.cycles"] = t.total
            out[f"{name}.intervals"] = t.intervals
        return dict(sorted(out.items()))

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def reset(self) -> None:
        with self._lock:
            metrics = (list(self._counters.values())
                       + list(self._gauges.values())
                       + list(self._histograms.values())
                       + list(self._timers.values()))
        for metric in metrics:
            metric.reset()
