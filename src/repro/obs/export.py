"""Exporters: JSONL event dumps and Chrome Trace Event JSON.

Two on-disk formats:

* **JSONL** — one :meth:`Event.to_dict` per line. Lossless, streamable,
  trivially greppable; :func:`load_jsonl` round-trips it back into events
  for the analyzers.
* **Chrome Trace Event format** — a ``{"traceEvents": [...]}`` document
  that opens directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``. Outer transaction attempts become complete ("X")
  slices on each thread's track, colored by outcome; everything else
  becomes instant ("i") marks. Timestamps are virtual cycles reported in
  the microsecond field — a cycle reads as 1us in the UI, which only
  rescales the axis label.

Both are wired into the harness: ``run_workload(..., trace=True)`` returns
the events on the result, ``run_sweep(..., trace_dir=...)`` writes one
trace pair per variant, and ``python -m repro trace`` does it from a shell.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.obs.analysis import reconstruct
from repro.obs.events import NAMESPACES, Event, event_from_dict

# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def export_jsonl(events: Iterable[Event], path: str) -> int:
    """Write events one-JSON-object-per-line; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_jsonl(path: str) -> List[Event]:
    """Inverse of :func:`export_jsonl` (blank lines are skipped)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


class JsonlWriter:
    """Streaming bus subscriber: writes each event as it is published.

    For runs too long to buffer in a ring. Use as a context manager or call
    :meth:`close` when done::

        with JsonlWriter("run.jsonl") as sink:
            bus.subscribe(sink)
            ... run ...
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self.written = 0

    def __call__(self, event: Event) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlWriter({self.path!r}) is closed")
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Chrome Trace Event format
# ---------------------------------------------------------------------------

#: Track (tid) offsets for events that carry no ``thread`` field: one lane
#: per namespace, placed well above any plausible thread id.
_NAMESPACE_LANE_BASE = 1000
_NAMESPACE_LANES: Dict[str, int] = {
    ns: _NAMESPACE_LANE_BASE + i for i, ns in enumerate(NAMESPACES)}

#: Perfetto color names keyed by attempt outcome.
_OUTCOME_COLOR = {"commit": "good", "abort": "terrible",
                  "open": "grey"}


def chrome_trace(events: Iterable[Event],
                 label: str = "repro") -> Dict[str, Any]:
    """Build a Chrome Trace Event document from an event stream.

    The stream is consumed twice conceptually (lifecycle reconstruction and
    instant marks), so it is materialized first; pass a list for free.
    """
    events = list(events)
    trace: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 0, "name": "process_name",
         "args": {"name": label}},
    ]
    named_lanes = set()

    def lane_for(event: Event) -> int:
        thread = event.fields.get("thread")
        if thread is not None:
            tid = int(thread)
            name = f"thread {tid}"
        else:
            tid = _NAMESPACE_LANES.get(event.namespace,
                                       _NAMESPACE_LANE_BASE + len(NAMESPACES))
            name = event.namespace
        if tid not in named_lanes:
            named_lanes.add(tid)
            trace.append({"ph": "M", "pid": 0, "tid": tid,
                          "name": "thread_name", "args": {"name": name}})
        return tid

    # One "X" (complete) slice per outer transaction attempt.
    last_time = events[-1].time if events else 0
    for attempt in reconstruct(events):
        end = attempt.end if attempt.end is not None else last_time
        args: Dict[str, Any] = {"outcome": attempt.outcome,
                                "stalls": attempt.stalls,
                                "conflicts": attempt.conflicts}
        if attempt.category:
            args["category"] = attempt.category
        tid = int(attempt.thread)
        if tid not in named_lanes:
            named_lanes.add(tid)
            trace.append({"ph": "M", "pid": 0, "tid": tid,
                          "name": "thread_name",
                          "args": {"name": f"thread {tid}"}})
        trace.append({"ph": "X", "pid": 0, "tid": tid, "ts": attempt.start,
                      "dur": max(end - attempt.start, 1), "name": "tx",
                      "cname": _OUTCOME_COLOR.get(attempt.outcome, "grey"),
                      "args": args})

    # Everything except begin/commit (already represented by the slices)
    # becomes an instant mark on its lane.
    for event in events:
        if event.kind in ("tm.begin", "tm.commit"):
            continue
        trace.append({"ph": "i", "pid": 0, "tid": lane_for(event),
                      "ts": event.time, "s": "t", "name": event.kind,
                      "args": dict(event.fields)})
    return {"traceEvents": trace, "displayTimeUnit": "ms",
            "otherData": {"label": label, "events": len(events)}}


def export_chrome_trace(events: Iterable[Event], path: str,
                        label: str = "repro") -> int:
    """Write :func:`chrome_trace` output to ``path``; returns the number of
    trace entries (metadata included)."""
    document = chrome_trace(events, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return len(document["traceEvents"])


def validate_chrome_trace(source: Union[str, Dict[str, Any]]) -> int:
    """Sanity-check a Chrome trace document (path or parsed dict).

    Verifies the document shape Perfetto requires — a ``traceEvents`` list
    whose entries carry a ``ph`` — and returns the entry count. Used by the
    CI trace-smoke step.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    else:
        document = source
    trace = document.get("traceEvents")
    if not isinstance(trace, list):
        raise ValueError("not a Chrome trace: missing traceEvents list")
    for entry in trace:
        if not isinstance(entry, dict) or "ph" not in entry:
            raise ValueError(f"malformed trace entry: {entry!r}")
        if entry["ph"] in ("X", "i") and "ts" not in entry:
            raise ValueError(f"timed entry without ts: {entry!r}")
    return len(trace)
