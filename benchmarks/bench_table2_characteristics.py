"""Table 2 — Benchmarks and Inputs.

Runs the five workloads with perfect signatures and measures what the
paper's Table 2 reports: units of work, committed transactions, and
read/write-set sizes (average and maximum, in 64-byte blocks).

Shape checks (paper values in EXPERIMENTS.md):
* Cholesky's footprint is exactly uniform (read 4 / write 2);
* Raytrace has by far the largest read-set maximum (its traversal tail);
* every workload's average sets are small (a handful of blocks) — the
  property that lets small signatures work at all (Result 3).
"""

from conftest import run_once

from repro.harness.experiments import render_table2, table2


def test_table2_benchmark_characteristics(benchmark, scale):
    rows = run_once(benchmark, table2, scale)
    print()
    print(render_table2(rows))
    by_name = {r.name: r for r in rows}
    if not scale.asserts_shapes:
        return  # quick scale exercises the path; shapes need full scale

    assert set(by_name) == {"BerkeleyDB", "Cholesky", "Radiosity",
                            "Raytrace", "Mp3d"}
    for row in rows:
        assert row.transactions >= row.units > 0

    chol = by_name["Cholesky"]
    assert (chol.read_avg, chol.read_max) == (4.0, 4)
    assert (chol.write_avg, chol.write_max) == (2.0, 2)

    ray = by_name["Raytrace"]
    assert ray.read_max == max(r.read_max for r in rows)
    assert ray.read_max >= 100, "the big-traversal tail must appear"
    assert ray.write_max <= 4, "Raytrace write sets stay tiny (max 3)"

    for row in rows:
        assert row.read_avg <= 12, "average read sets are small"
        assert row.write_avg <= 10, "average write sets are small"

    rad = by_name["Radiosity"]
    assert rad.write_max > 10 * rad.write_avg, "skewed write tail"
