"""Figure 4 — Speedup normalized to locks.

Runs all five workloads under the six configurations of the paper's
Figure 4 (Lock, Perfect, BS 2Kb, CBS 2Kb, DBS 2Kb, BS 64b) on the Table 1
machine, with pseudo-randomly perturbed runs for confidence intervals [2].

Shape checks (Results 1-3):
* LogTM-SE with perfect signatures performs comparably to locks or better
  on every benchmark;
* BerkeleyDB and Raytrace run 20-50% faster transactionally;
* the realistic 2Kb signatures (BS/CBS/DBS) track perfect signatures;
* the 64-bit BS signature stays comparable to locks everywhere.
"""

from collections import defaultdict

from conftest import run_once

from repro.harness.experiments import figure4, render_figure4
from repro.harness.report import render_bar


def test_figure4_speedup_vs_locks(benchmark, scale, jobs):
    cells = run_once(benchmark, figure4, scale, jobs=jobs)
    print()
    print(render_figure4(cells))
    speedup = defaultdict(dict)
    for c in cells:
        speedup[c.workload][c.variant] = c.speedup

    print()
    for workload, variants in speedup.items():
        for variant, value in variants.items():
            print(f"{workload:11s} {variant:8s} "
                  f"{render_bar(value, scale=2.0)} {value:.2f}")

    if not scale.asserts_shapes:
        return  # quick scale exercises the path; shapes need full scale

    # Result 1: perfect signatures >= locks (small tolerance for noise).
    for workload, variants in speedup.items():
        assert variants["Perfect"] >= 0.90, (
            f"{workload}: TM must be comparable to locks or better")

    # BerkeleyDB and Raytrace benefit clearly from transactions.
    assert speedup["BerkeleyDB"]["Perfect"] >= 1.15
    assert speedup["Raytrace"]["Perfect"] >= 1.15

    # Result 2: realistic 2Kb signatures track perfect signatures.
    for workload, variants in speedup.items():
        for label in ("BS_2Kb", "CBS_2Kb", "DBS_2Kb"):
            assert variants[label] >= variants["Perfect"] * 0.85, (
                f"{workload}/{label} must track perfect signatures")

    # Result 3: even 64-bit signatures stay comparable to locks.
    for workload, variants in speedup.items():
        assert variants["BS_64"] >= 0.85, (
            f"{workload}: BS_64 must remain comparable to locks")
        assert variants["BS_64"] <= variants["Perfect"] * 1.1 + 0.05
