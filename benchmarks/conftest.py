"""Shared benchmark configuration.

Scale control: set ``REPRO_BENCH_SCALE=quick`` for a fast smoke pass
(8 threads, few units) or ``full`` (default) for the paper's 32-context
machine with enough work for stable shapes.

Every benchmark prints the regenerated table/figure rows — run with
``pytest benchmarks/ --benchmark-only -s`` to see them inline; they are
also echoed into the benchmark's ``extra_info``.
"""

import os

import pytest

from repro.harness.experiments import FULL, QUICK, ExperimentScale


def bench_scale() -> ExperimentScale:
    if os.environ.get("REPRO_BENCH_SCALE", "full").lower() == "quick":
        return QUICK
    return FULL


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
