"""Shared benchmark configuration.

Scale control: set ``REPRO_BENCH_SCALE=quick`` for a fast smoke pass
(8 threads, few units) or ``full`` (default) for the paper's 32-context
machine with enough work for stable shapes. The names match the pinned
scales of the tracked suite (``repro bench``; see docs/performance.md).

Parallelism: grid experiments (Table 3, Figure 4) fan their cells out
over ``REPRO_BENCH_JOBS`` worker processes (default: one per CPU at FULL
scale, serial at quick scale — quick runs are too short to amortize
workers). Results are identical either way; see docs/harness.md.

Every benchmark prints the regenerated table/figure rows — run with
``pytest benchmarks/ --benchmark-only -s`` to see them inline; they are
also echoed into the benchmark's ``extra_info``.

Measurement goes through the same entry point as ``repro bench``: the
wall time of each run is normalized into a
:class:`repro.perf.schema.BenchMeasurement` and attached to the
pytest-benchmark ``extra_info`` under ``"perf"``, so exported
pytest-benchmark JSON and the tracked ``BENCH_*.json`` trajectory share
one schema (fields and rate derivations, see docs/performance.md).
"""

import os
import time

import pytest

from repro.harness.experiments import FULL, QUICK, ExperimentScale
from repro.perf.schema import BenchMeasurement


def bench_scale() -> ExperimentScale:
    if os.environ.get("REPRO_BENCH_SCALE", "full").lower() == "quick":
        return QUICK
    return FULL


def bench_scale_name() -> str:
    return "quick" if bench_scale() is QUICK else "full"


def bench_jobs() -> int:
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        return int(env)
    if bench_scale() is QUICK:
        return 1
    return os.cpu_count() or 1


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The wall measurement is also recorded as a ``repro.perf`` schema
    measurement in ``extra_info["perf"]`` — the same shape ``repro bench``
    writes — so downstream tooling reads one format for both harnesses.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    wall = time.perf_counter() - start
    measurement = BenchMeasurement.from_totals(
        label="pytest", wall_seconds=wall,
        extra={"scale": bench_scale_name(), "source": "pytest-benchmark"})
    benchmark.extra_info["perf"] = measurement.to_dict()
    return result
