"""Shared benchmark configuration.

Scale control: set ``REPRO_BENCH_SCALE=quick`` for a fast smoke pass
(8 threads, few units) or ``full`` (default) for the paper's 32-context
machine with enough work for stable shapes.

Parallelism: grid experiments (Table 3, Figure 4) fan their cells out
over ``REPRO_BENCH_JOBS`` worker processes (default: one per CPU at FULL
scale, serial at quick scale — quick runs are too short to amortize
workers). Results are identical either way; see docs/harness.md.

Every benchmark prints the regenerated table/figure rows — run with
``pytest benchmarks/ --benchmark-only -s`` to see them inline; they are
also echoed into the benchmark's ``extra_info``.
"""

import os

import pytest

from repro.harness.experiments import FULL, QUICK, ExperimentScale


def bench_scale() -> ExperimentScale:
    if os.environ.get("REPRO_BENCH_SCALE", "full").lower() == "quick":
        return QUICK
    return FULL


def bench_jobs() -> int:
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        return int(env)
    if bench_scale() is QUICK:
        return 1
    return os.cpu_count() or 1


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
